"""The Kizzle main driver (paper, Section III).

The daily loop: break the day's samples into clusters (distributed DBSCAN
over abstract token strings), label every cluster benign or as a known kit by
unpacking its prototype and winnowing it against the seeded corpus, and for
malicious clusters whose samples are not already covered by a deployed
signature, compile a new structural signature from the packed samples.

The loop is an explicit **stage graph** (:mod:`repro.core.stages`)::

    shed -> prepare -> cluster -> label -> compile -> finalize

executed through a pluggable **execution backend** (:mod:`repro.exec`):
serial inline, real process-pool fan-out, or the distsim cluster simulator
(the default, reproducing the paper's 50-machine timing model).  Backends
never change results — labels, signatures and FP/FN are byte-identical
across all three (``tests/test_backends.py``).

Two execution modes share the graph *shape* and substitute stage
implementations:

* the **cold path** (default) treats every day as independent, exactly as
  the seed reproduction did: ``shed`` is a pass-through intake, ``prepare``
  tokenizes from scratch, ``label`` always unpacks and winnows.
* the **warm path** (``config.incremental.enabled``) reuses day N-1's work
  on day N.  Samples already matched by a deployed signature — or exact
  repeats of already-labeled content — are *shed* before tokenization
  (paper: "most of the stream is the same grayware every day"); each shed
  group leaves behind one tokenized *sentinel* sample carrying the group's
  weight, so the clustering stage sees the same density geometry the cold
  path would (a sentinel of weight ``w`` is indistinguishable from the ``w``
  exact duplicates DBSCAN already collapses).  Survivors are tokenized once
  per unique content through a shared
  :class:`~repro.core.prepared.PreparedCache` and clustered together with
  the sentinels; clusters whose prototype lands within epsilon of one of
  yesterday's prototypes inherit that cluster's label without re-unpacking
  or re-winnowing (:mod:`repro.clustering.carryforward`).  Novel clusters —
  and carried kit clusters whose samples a deployed signature no longer
  covers — go through the full label/compile machinery, so kit updates
  still produce new signatures the same way the cold path produces them.

The ``label`` and ``compile`` stages are *itemized* over the day's clusters
and run depth-first per cluster: compiling cluster ``i`` feeds its unpacked
prototype back into the corpus, and labeling cluster ``i+1`` winnows
against that updated corpus — the same-day feedback the monolithic loop
had, preserved by construction (see :class:`~repro.core.stages.StageGraph`).
"""

from __future__ import annotations

import datetime
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.clustering.carryforward import CarryForwardIndex
from repro.clustering.partition import Cluster, ClusteredSample, \
    DistributedClusterer
from repro.core.config import KizzleConfig
from repro.core.prepared import PreparedCache
from repro.core.results import ClusterReport, DailyResult, ShedRecord
from repro.core.stages import Stage, StageGraph
from repro.exec.backend import create_backend
from repro.labeling.corpus import KnownKitCorpus
from repro.labeling.labeler import ClusterLabel, ClusterLabeler
from repro.scanner.engine import ScanEngine, SignatureDatabase
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures.compiler import SignatureCompiler
from repro.unpack.registry import UnpackerRegistry, default_registry


@dataclass
class _SentinelGroup:
    """One shed group's surviving representative (pre-tokenization)."""

    name: str
    content: str
    weight: int = 1


class Kizzle:
    """The signature compiler.

    Parameters
    ----------
    config:
        Pipeline settings; defaults to the paper's parameters.
    corpus:
        The seeded corpus of known unpacked kit samples.  An empty corpus is
        allowed (every cluster will be labeled benign) but pointless; use
        :meth:`seed_known_kit` to populate it.
    registry:
        Unpacker registry; defaults to the four per-kit unpackers.
    """

    def __init__(self, config: Optional[KizzleConfig] = None,
                 corpus: Optional[KnownKitCorpus] = None,
                 registry: Optional[UnpackerRegistry] = None) -> None:
        self.config = config or KizzleConfig()
        self.corpus = corpus or KnownKitCorpus(
            k=self.config.winnow_k, window=self.config.winnow_window,
            thresholds=dict(self.config.label_thresholds))
        self.registry = registry or default_registry()
        self.labeler = ClusterLabeler(self.corpus, self.registry)
        self.database = SignatureDatabase()
        self.backend = create_backend(self.config.resolved_backend())
        self.clusterer = DistributedClusterer(
            epsilon=self.config.epsilon,
            min_points=self.config.min_points,
            seed=self.config.seed,
            engine_config=self.config.distance,
            backend=self.backend,
            machines=self.config.machines)
        incremental = self.config.incremental
        self.prepared = PreparedCache(
            max_entries=incremental.prepared_cache_entries)
        # On the warm path the compiler reads tokens from the shared cache,
        # so compiling a signature from already-clustered members costs no
        # extra lexing; the cold path keeps the plain lexer.
        self.compiler = SignatureCompiler(
            self.config.signature,
            tokenizer=self.prepared.raw_tokens if incremental.enabled
            else None)
        self.carry = CarryForwardIndex(
            epsilon=self.config.epsilon,
            engine=self.clusterer.engine,
            ttl_days=incremental.anchor_ttl_days,
            max_anchors=incremental.max_anchors)
        #: content digest -> (kit-or-None, date recorded) for content
        #: labeled on a previous day; drives the exact-repeat shedding
        #: branch.  Entries expire after ``anchor_ttl_days`` — label
        #: inheritance is advisory, so a verdict that reached the ledger
        #: through a carried label must not outlive the anchors it came
        #: from.
        self._known_contents: Dict[bytes, Tuple[Optional[str],
                                                datetime.date]] = {}
        self._carry_comparisons_charged = 0
        #: Shared scan-verdict memo (see ScanEngine): the shedding stage and
        #: the same-day evaluation scans resolve each content once.
        self._scan_memo: Dict = {}
        self.graph = self._build_day_graph()

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    def seed_known_kit(self, kit: str, unpacked_samples: Iterable[str]) -> None:
        """Seed the corpus with known unpacked samples of a kit."""
        self.corpus.add_many(kit, unpacked_samples)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the backend's pooled resources (idempotent).

        The partition-parallel backends keep a persistent worker pool alive
        across days; a long-lived embedding application should close the
        pipeline when done (or use it as a context manager).  Processing
        after ``close`` is safe — the pool is re-created on demand.
        """
        self.backend.close()

    def __enter__(self) -> "Kizzle":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the stage graph
    # ------------------------------------------------------------------
    def _build_day_graph(self) -> StageGraph:
        """The daily pipeline as a stage graph.

        Warm and cold share the graph shape; the warm path substitutes the
        ``shed``, ``prepare``, ``label`` and ``finalize`` implementations.
        """
        incremental = self.config.incremental
        warm = incremental.enabled
        shedding = warm and incremental.shed_known
        carrying = warm and incremental.carry_forward
        return StageGraph([
            Stage("shed",
                  self._stage_shed if shedding else self._stage_intake,
                  requires=("samples", "date"),
                  provides=("survivors", "sentinels", "shed_records",
                            "shed_kits", "scanned_bytes")),
            Stage("prepare",
                  self._stage_prepare_warm if warm
                  else self._stage_prepare_cold,
                  requires=("survivors", "sentinels"),
                  provides=("prepared", "sentinel_ids")),
            Stage("cluster", self._stage_cluster,
                  requires=("samples", "date", "survivors", "prepared",
                            "sentinel_ids", "shed_records"),
                  provides=("clusters", "timing", "result")),
            Stage("label",
                  self._stage_label_warm if carrying
                  else self._stage_label_cold,
                  requires=("result", "sentinel_ids"),
                  over="clusters"),
            Stage("compile", self._stage_compile,
                  requires=("result", "date"),
                  over="clusters"),
            Stage("finalize",
                  self._stage_finalize_warm if warm
                  else self._stage_finalize_cold,
                  requires=("date", "result", "timing", "prepared",
                            "sentinel_ids", "shed_kits", "scanned_bytes")),
        ])

    def day_graph(self) -> StageGraph:
        """The pipeline's stage graph (for introspection and docs)."""
        return self.graph

    # ------------------------------------------------------------------
    # the daily loop
    # ------------------------------------------------------------------
    def process_day(self, samples: Sequence[Tuple[str, str]],
                    date: datetime.date) -> DailyResult:
        """Process one day of samples.

        ``samples`` is a sequence of ``(sample_id, content)`` pairs.  The
        returned :class:`DailyResult` lists the clusters, their labels and
        any newly generated signatures; new signatures are also added to the
        deployed :attr:`database` with ``created=date``.
        """
        warm = self.config.incremental.enabled
        prepared_before = self.prepared.stats() if warm else None
        context: Dict[str, Any] = {"samples": samples, "date": date}
        walls = self.graph.run(context)
        result: DailyResult = context["result"]
        result.timing.wall_stage_seconds.update(walls)
        if warm:
            prepared_after = self.prepared.stats()
            result.prepared_stats = {
                name: value - prepared_before.get(name, 0)
                for name, value in prepared_after.items()}
        return result

    # -- shed: set known samples aside before tokenization ---------------
    def _stage_intake(self, context: Dict[str, Any]) -> None:
        """Pass-through shed substitute: every sample survives (cold path,
        or warm with shedding disabled)."""
        context["survivors"] = list(context["samples"])
        context["sentinels"] = OrderedDict()
        context["shed_records"] = []
        context["shed_kits"] = set()
        context["scanned_bytes"] = 0

    def _stage_shed(self, context: Dict[str, Any]) -> None:
        """Known-sample shedding (before any tokenization).

        Every shed group — keyed by the first deployed signature that
        matched, or by exact content for repeats of already-labeled
        material — leaves one sentinel carrying the group's weight, so the
        clustering stage keeps the cold path's density geometry.
        """
        incremental = self.config.incremental
        date = context["date"]
        engine = ScanEngine(self.database, mode=incremental.scan_mode,
                            prepared=self.prepared, memo=self._scan_memo)
        shed: List[ShedRecord] = []
        shed_kits: Set[str] = set()
        scanned_bytes = 0
        survivors: List[Tuple[str, str]] = []
        sentinels: "OrderedDict[object, _SentinelGroup]" = OrderedDict()
        any_deployed = len(self.database) > 0
        for sample_id, content in context["samples"]:
            digest = PreparedCache.content_key(content)
            known = self._recall_content(digest, date)
            if known is not None:
                kit = known[0]
                shed.append(ShedRecord(sample_id=sample_id,
                                       reason="known-content", kit=kit))
                if kit is not None:
                    shed_kits.add(kit)
                scanned_bytes += len(content)
                self._note_sentinel(sentinels, ("content", digest),
                                    sample_id, content)
                continue
            if any_deployed:
                scanned_bytes += len(content)
                verdict = engine.scan(sample_id, content, as_of=date)
                if verdict.detected:
                    matched = verdict.matched_signatures[0]
                    kit = matched.kit
                    shed.append(ShedRecord(sample_id=sample_id,
                                           reason="signature", kit=kit))
                    shed_kits.add(kit)
                    self._remember_content(digest, kit, date)
                    self._note_sentinel(sentinels,
                                        ("sig", matched.signature_id),
                                        sample_id, content)
                    continue
            survivors.append((sample_id, content))
        context["survivors"] = survivors
        context["sentinels"] = sentinels
        context["shed_records"] = shed
        context["shed_kits"] = shed_kits
        context["scanned_bytes"] = scanned_bytes

    @staticmethod
    def _note_sentinel(sentinels: "OrderedDict[object, _SentinelGroup]",
                       key: object, sample_id: str, content: str) -> None:
        """Record one shed sample in its group's sentinel.

        The first sample of a group names the sentinel; later samples only
        bump its weight.  Tokenization waits for the prepare stage.
        """
        group = sentinels.get(key)
        if group is None:
            sentinels[key] = _SentinelGroup(
                name=f"sentinel-{len(sentinels)}-{sample_id}",
                content=content)
        else:
            group.weight += 1

    # -- prepare: tokenize survivors and sentinels ------------------------
    def _stage_prepare_cold(self, context: Dict[str, Any]) -> None:
        """Stage raw samples for clustering — the cold path deliberately
        bypasses the preparation cache so every day remains an independent
        cold start.  Tokenization is deferred to the cluster stage's
        per-partition map (``ensure_tokens`` is deterministic, so *where*
        the lexer runs never changes results), which lets a partition-
        parallel backend spread a cold day's dominant cost — lexing — over
        its worker pool instead of paying it serially here."""
        context["prepared"] = [
            ClusteredSample(sample_id=sample_id, content=content)
            for sample_id, content in context["survivors"]]
        context["sentinel_ids"] = set()

    def _stage_prepare_warm(self, context: Dict[str, Any]) -> None:
        """Tokenize through the shared cache: the lexer runs at most once
        per unique content, and sentinels carry their group weights."""
        survivors = [
            ClusteredSample(sample_id=sample_id, content=content,
                            tokens=self.prepared.abstract_tokens(content))
            for sample_id, content in context["survivors"]]
        sentinel_samples = [
            ClusteredSample(sample_id=group.name, content=group.content,
                            tokens=self.prepared.abstract_tokens(
                                group.content),
                            weight=group.weight)
            for group in context["sentinels"].values()]
        context["prepared"] = survivors + sentinel_samples
        context["sentinel_ids"] = {sample.sample_id
                                   for sample in sentinel_samples}

    # -- cluster: partition + DBSCAN + merge through the backend ----------
    def _stage_cluster(self, context: Dict[str, Any]
                       ) -> Optional[Dict[str, float]]:
        """Cluster survivors and sentinels together.  Sentinel weights feed
        the DBSCAN density requirement and prototype selection, so the
        result matches clustering the full batch.

        The partition-level map dispatches through the backend (persistent
        worker pool when one is supplied and the batch is large enough,
        inline otherwise); when it ran on the pool, the pool's measured
        wall clock is surfaced as the ``cluster.map`` sub-wall.
        """
        prepared = context["prepared"]
        clusters, timing = self.clusterer.run(
            prepared, partitions=self.config.partitions)
        sentinel_ids = context["sentinel_ids"]
        result = DailyResult(date=context["date"], timing=timing,
                             sample_count=len(context["samples"]),
                             shed=context["shed_records"])
        result.backend = self.backend.name
        clustered_real = {sample.sample_id
                          for cluster in clusters
                          for sample in cluster.samples
                          if sample.sample_id not in sentinel_ids}
        result.noise_count = len(context["survivors"]) - len(clustered_real)
        context["clusters"] = clusters
        context["timing"] = timing
        context["result"] = result
        if timing.map_workers > 1:
            return {"map": timing.map_wall_seconds}
        return None

    # -- label: inherit from yesterday's anchors, or unpack and winnow ----
    def _stage_label_cold(self, context: Dict[str, Any], cluster: Cluster,
                          carry: Any) -> Tuple[ClusterLabel, bool]:
        return self.labeler.label_cluster(cluster), False

    def _stage_label_warm(self, context: Dict[str, Any], cluster: Cluster,
                          carry: Any) -> Tuple[ClusterLabel, bool]:
        anchor = self.carry.match(cluster.prototype.tokens)
        if anchor is not None:
            result: DailyResult = context["result"]
            result.carried_cluster_count += 1
            result.absorbed_count += sum(
                sample.weight for sample in cluster.samples
                if sample.sample_id not in context["sentinel_ids"])
            return ClusterLabel(
                kit=anchor.kit, overlap=anchor.overlap,
                best_family=anchor.best_family, unpacked="",
                layers=anchor.layers), True
        return self.labeler.label_cluster(cluster), False

    # -- compile: generate signatures for uncovered malicious clusters ----
    def _stage_compile(self, context: Dict[str, Any], cluster: Cluster,
                       carry: Tuple[ClusterLabel, bool]) -> ClusterReport:
        label, carried = carry
        report = self._report_for(cluster, label, context["date"],
                                  carried=carried)
        result: DailyResult = context["result"]
        result.clusters.append(report)
        if report.signature is not None:
            result.new_signatures.append(report.signature)
        return report

    # -- finalize: bookkeeping and backend stage accounting ---------------
    def _stage_finalize_cold(self, context: Dict[str, Any]) -> None:
        """The cold path carries no state across days — nothing to roll."""

    def _stage_finalize_warm(self, context: Dict[str, Any]) -> None:
        """Roll the day's state forward and account the warm-only stages.

        Every labeled real content enters the exact-repeat shedding ledger,
        the carry-forward anchors advance, and the shed/carry work is
        simulated on the backend's machine pool so the virtual daily
        wall-clock stays honest: every byte the shedding stage *scanned* is
        charged (survivors that failed the scan cost real work too — the
        warm path only gets credit for work it truly sheds), and anchor
        probes are charged at banded-DP cost.
        """
        incremental = self.config.incremental
        date = context["date"]
        result: DailyResult = context["result"]
        timing = context["timing"]
        sentinel_ids = context["sentinel_ids"]
        for report in result.clusters:
            for sample in report.cluster.samples:
                if sample.sample_id in sentinel_ids:
                    continue
                self._remember_content(
                    PreparedCache.content_key(sample.content),
                    report.label.kit, date)
        if incremental.carry_forward:
            if context["shed_kits"]:
                self.carry.refresh_kits(sorted(context["shed_kits"]), date)
            self.carry.update(result.clusters, date)

        prepared = context["prepared"]
        average_length = 1.0
        if prepared:
            average_length = sum(len(sample.tokens)
                                 for sample in prepared) / len(prepared)
        self.backend.simulate_stage(timing, "shed",
                                    float(context["scanned_bytes"]))
        probes = self.carry.comparisons - self._carry_comparisons_charged
        self._carry_comparisons_charged = self.carry.comparisons
        self.backend.simulate_stage(
            timing, "carry_forward",
            probes * max(1.0, self.config.epsilon * average_length)
            * average_length)

    # ------------------------------------------------------------------
    # labeling/compilation helpers
    # ------------------------------------------------------------------
    def _report_for(self, cluster: Cluster, label: ClusterLabel,
                    date: datetime.date, carried: bool) -> ClusterReport:
        """Build the report for one cluster, compiling a signature when the
        cluster is malicious and not already covered.

        A carried kit cluster that turns out *not* to be covered (the kit
        changed under the anchor) is re-labeled for real first — the corpus
        feedback needs a genuine unpacked prototype, and the re-label also
        revalidates the inherited verdict before a signature ships.
        """
        if label.kit is None:
            return ClusterReport(cluster=cluster, label=label)
        contents = cluster.contents()
        if self.config.reuse_existing_signatures and \
                self._already_covered(contents, label.kit, date):
            return ClusterReport(cluster=cluster, label=label)
        if carried:
            label = self.labeler.label_cluster(cluster)
            if label.kit is None:
                return ClusterReport(cluster=cluster, label=label)
        report = ClusterReport(cluster=cluster, label=label)
        signature = self.compiler.compile_cluster(contents, label.kit, date)
        if signature is not None:
            report.signature = signature
            self.database.add(signature)
            self.corpus.add(label.kit, label.unpacked, collected=date)
        return report

    def _remember_content(self, digest: bytes, kit: Optional[str],
                          date: datetime.date) -> None:
        # Pop before reassigning so a re-recorded digest moves to the end
        # of the dict: the size bound below drops from the front, and
        # without the move it would evict exactly the contents that repeat
        # every day.
        self._known_contents.pop(digest, None)
        self._known_contents[digest] = (kit, date)
        if len(self._known_contents) > 4 * \
                self.config.incremental.prepared_cache_entries:
            # Crude bound: drop the least recently touched half.
            for key in list(self._known_contents)[
                    :len(self._known_contents) // 2]:
                del self._known_contents[key]

    def _recall_content(self, digest: bytes, date: datetime.date
                        ) -> Optional[Tuple[Optional[str], datetime.date]]:
        """The ledger entry for a digest, unless it has expired.

        Entries older than ``anchor_ttl_days`` are dropped: a verdict that
        entered the ledger through an inherited label must not outlive the
        anchor generation that produced it.
        """
        entry = self._known_contents.get(digest)
        if entry is None:
            return None
        horizon = date - datetime.timedelta(
            days=self.config.incremental.anchor_ttl_days)
        if entry[1] < horizon:
            del self._known_contents[digest]
            return None
        # Refresh the entry's position (not its date) so the eviction bound
        # in _remember_content treats daily-repeating content as hot.
        self._known_contents[digest] = self._known_contents.pop(digest)
        return entry

    # ------------------------------------------------------------------
    # signature management
    # ------------------------------------------------------------------
    def _already_covered(self, contents: Sequence[str], kit: str,
                         date: datetime.date) -> bool:
        existing = self.database.signatures_for(kit=kit, as_of=date)
        if not existing:
            return False
        if self.config.incremental.enabled:
            engine = ScanEngine(self.database,
                                mode=self.config.incremental.scan_mode,
                                prepared=self.prepared)
            # Newest first: on a stable day the latest signature is the one
            # that matches, so the ``any`` below exits on its first probe.
            ordered = list(reversed(existing))
            for content in contents:
                normalized = engine.normal_form(content)
                if not any(signature.matches(normalized)
                           for signature in ordered
                           if signature.could_match(normalized)):
                    return False
            return True
        for content in contents:
            normalized = normalize_for_scan(content)
            if not any(signature.matches(normalized) for signature in existing):
                return False
        return True

    # ------------------------------------------------------------------
    # scanning with the generated signatures
    # ------------------------------------------------------------------
    def scan_engine(self) -> ScanEngine:
        """A scan engine over the signatures generated so far.

        On the warm path the engine shares the pipeline's preparation cache
        and scan mode, so evaluating a day's detections does not re-tokenize
        content the pipeline already prepared.
        """
        if self.config.incremental.enabled:
            return ScanEngine(self.database,
                              mode=self.config.incremental.scan_mode,
                              prepared=self.prepared, memo=self._scan_memo)
        return ScanEngine(self.database)

    def detects(self, content: str,
                as_of: Optional[datetime.date] = None) -> bool:
        """Whether any deployed signature matches the sample."""
        engine = self.scan_engine()
        normalized = engine.normal_form(content)
        return bool(engine.matching_signatures(
            normalized, self.database.signatures_for(as_of=as_of)))
