"""The Kizzle main driver (paper, Section III).

The daily loop: break the day's samples into clusters (distributed DBSCAN
over abstract token strings), label every cluster benign or as a known kit by
unpacking its prototype and winnowing it against the seeded corpus, and for
malicious clusters whose samples are not already covered by a deployed
signature, compile a new structural signature from the packed samples.
"""

from __future__ import annotations

import datetime
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.clustering.partition import Cluster, ClusteredSample, \
    DistributedClusterer
from repro.core.config import KizzleConfig
from repro.core.results import ClusterReport, DailyResult
from repro.distsim.mapreduce import SimCluster
from repro.labeling.corpus import KnownKitCorpus
from repro.labeling.labeler import ClusterLabeler
from repro.scanner.engine import ScanEngine, SignatureDatabase
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures.compiler import SignatureCompiler
from repro.signatures.signature import Signature
from repro.unpack.registry import UnpackerRegistry, default_registry


class Kizzle:
    """The signature compiler.

    Parameters
    ----------
    config:
        Pipeline settings; defaults to the paper's parameters.
    corpus:
        The seeded corpus of known unpacked kit samples.  An empty corpus is
        allowed (every cluster will be labeled benign) but pointless; use
        :meth:`seed_known_kit` to populate it.
    registry:
        Unpacker registry; defaults to the four per-kit unpackers.
    """

    def __init__(self, config: Optional[KizzleConfig] = None,
                 corpus: Optional[KnownKitCorpus] = None,
                 registry: Optional[UnpackerRegistry] = None) -> None:
        self.config = config or KizzleConfig()
        self.corpus = corpus or KnownKitCorpus(
            k=self.config.winnow_k, window=self.config.winnow_window,
            thresholds=dict(self.config.label_thresholds))
        self.registry = registry or default_registry()
        self.labeler = ClusterLabeler(self.corpus, self.registry)
        self.compiler = SignatureCompiler(self.config.signature)
        self.database = SignatureDatabase()
        self.clusterer = DistributedClusterer(
            epsilon=self.config.epsilon,
            min_points=self.config.min_points,
            sim_cluster=SimCluster(machine_count=self.config.machines),
            seed=self.config.seed,
            engine_config=self.config.distance)

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    def seed_known_kit(self, kit: str, unpacked_samples: Iterable[str]) -> None:
        """Seed the corpus with known unpacked samples of a kit."""
        self.corpus.add_many(kit, unpacked_samples)

    # ------------------------------------------------------------------
    # the daily loop
    # ------------------------------------------------------------------
    def process_day(self, samples: Sequence[Tuple[str, str]],
                    date: datetime.date) -> DailyResult:
        """Process one day of samples.

        ``samples`` is a sequence of ``(sample_id, content)`` pairs.  The
        returned :class:`DailyResult` lists the clusters, their labels and
        any newly generated signatures; new signatures are also added to the
        deployed :attr:`database` with ``created=date``.
        """
        prepared = [ClusteredSample.from_content(sample_id, content)
                    for sample_id, content in samples]
        clusters, timing = self.clusterer.run(
            prepared, partitions=self.config.partitions)

        result = DailyResult(date=date, timing=timing,
                             sample_count=len(prepared))
        clustered_ids = {sample.sample_id
                         for cluster in clusters for sample in cluster.samples}
        result.noise_count = len(prepared) - len(clustered_ids)

        for cluster in clusters:
            label = self.labeler.label_cluster(cluster)
            report = ClusterReport(cluster=cluster, label=label)
            if label.kit is not None:
                signature = self._signature_for(cluster, label.kit, date)
                if signature is not None:
                    report.signature = signature
                    result.new_signatures.append(signature)
                    self.database.add(signature)
                    # Feed the freshly unpacked prototype back into the
                    # corpus so the kit can be tracked as it drifts.
                    self.corpus.add(label.kit, label.unpacked, collected=date)
            result.clusters.append(report)
        return result

    # ------------------------------------------------------------------
    # signature management
    # ------------------------------------------------------------------
    def _signature_for(self, cluster: Cluster, kit: str,
                       date: datetime.date) -> Optional[Signature]:
        """Compile a signature for a malicious cluster, unless an existing
        deployed signature for the kit already covers its samples."""
        contents = cluster.contents()
        if self.config.reuse_existing_signatures and self._already_covered(
                contents, kit, date):
            return None
        return self.compiler.compile_cluster(contents, kit, date)

    def _already_covered(self, contents: Sequence[str], kit: str,
                         date: datetime.date) -> bool:
        existing = self.database.signatures_for(kit=kit, as_of=date)
        if not existing:
            return False
        for content in contents:
            normalized = normalize_for_scan(content)
            if not any(signature.matches(normalized) for signature in existing):
                return False
        return True

    # ------------------------------------------------------------------
    # scanning with the generated signatures
    # ------------------------------------------------------------------
    def scan_engine(self) -> ScanEngine:
        """A scan engine over the signatures generated so far."""
        return ScanEngine(self.database)

    def detects(self, content: str,
                as_of: Optional[datetime.date] = None) -> bool:
        """Whether any deployed signature matches the sample."""
        normalized = normalize_for_scan(content)
        return any(signature.matches(normalized)
                   for signature in self.database.signatures_for(as_of=as_of))
