"""The Kizzle main driver (paper, Section III).

The daily loop: break the day's samples into clusters (distributed DBSCAN
over abstract token strings), label every cluster benign or as a known kit by
unpacking its prototype and winnowing it against the seeded corpus, and for
malicious clusters whose samples are not already covered by a deployed
signature, compile a new structural signature from the packed samples.

Two execution paths share that loop:

* the **cold path** (default) treats every day as independent, exactly as
  the seed reproduction did;
* the **warm path** (``config.incremental.enabled``) reuses day N-1's work
  on day N.  Samples already matched by a deployed signature — or exact
  repeats of already-labeled content — are *shed* before tokenization
  (paper: "most of the stream is the same grayware every day"); each shed
  group leaves behind one tokenized *sentinel* sample carrying the group's
  weight, so the clustering stage sees the same density geometry the cold
  path would (a sentinel of weight ``w`` is indistinguishable from the ``w``
  exact duplicates DBSCAN already collapses).  Survivors are tokenized once
  per unique content through a shared
  :class:`~repro.core.prepared.PreparedCache` and clustered together with
  the sentinels; clusters whose prototype lands within epsilon of one of
  yesterday's prototypes inherit that cluster's label without re-unpacking
  or re-winnowing (:mod:`repro.clustering.carryforward`).  Novel clusters —
  and carried kit clusters whose samples a deployed signature no longer
  covers — go through the full label/compile machinery, so kit updates
  still produce new signatures the same way the cold path produces them.
"""

from __future__ import annotations

import datetime
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.clustering.carryforward import CarryForwardIndex
from repro.clustering.partition import Cluster, ClusteredSample, \
    DistributedClusterer
from repro.core.config import KizzleConfig
from repro.core.prepared import PreparedCache
from repro.core.results import ClusterReport, DailyResult, ShedRecord
from repro.distsim.mapreduce import SimCluster
from repro.labeling.corpus import KnownKitCorpus
from repro.labeling.labeler import ClusterLabel, ClusterLabeler
from repro.scanner.engine import ScanEngine, SignatureDatabase
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures.compiler import SignatureCompiler
from repro.signatures.signature import Signature
from repro.unpack.registry import UnpackerRegistry, default_registry


class Kizzle:
    """The signature compiler.

    Parameters
    ----------
    config:
        Pipeline settings; defaults to the paper's parameters.
    corpus:
        The seeded corpus of known unpacked kit samples.  An empty corpus is
        allowed (every cluster will be labeled benign) but pointless; use
        :meth:`seed_known_kit` to populate it.
    registry:
        Unpacker registry; defaults to the four per-kit unpackers.
    """

    def __init__(self, config: Optional[KizzleConfig] = None,
                 corpus: Optional[KnownKitCorpus] = None,
                 registry: Optional[UnpackerRegistry] = None) -> None:
        self.config = config or KizzleConfig()
        self.corpus = corpus or KnownKitCorpus(
            k=self.config.winnow_k, window=self.config.winnow_window,
            thresholds=dict(self.config.label_thresholds))
        self.registry = registry or default_registry()
        self.labeler = ClusterLabeler(self.corpus, self.registry)
        self.database = SignatureDatabase()
        self.clusterer = DistributedClusterer(
            epsilon=self.config.epsilon,
            min_points=self.config.min_points,
            sim_cluster=SimCluster(machine_count=self.config.machines),
            seed=self.config.seed,
            engine_config=self.config.distance)
        incremental = self.config.incremental
        self.prepared = PreparedCache(
            max_entries=incremental.prepared_cache_entries)
        # On the warm path the compiler reads tokens from the shared cache,
        # so compiling a signature from already-clustered members costs no
        # extra lexing; the cold path keeps the plain lexer.
        self.compiler = SignatureCompiler(
            self.config.signature,
            tokenizer=self.prepared.raw_tokens if incremental.enabled
            else None)
        self.carry = CarryForwardIndex(
            epsilon=self.config.epsilon,
            engine=self.clusterer.engine,
            ttl_days=incremental.anchor_ttl_days,
            max_anchors=incremental.max_anchors)
        #: content digest -> (kit-or-None, date recorded) for content
        #: labeled on a previous day; drives the exact-repeat shedding
        #: branch.  Entries expire after ``anchor_ttl_days`` — label
        #: inheritance is advisory, so a verdict that reached the ledger
        #: through a carried label must not outlive the anchors it came
        #: from.
        self._known_contents: Dict[bytes, Tuple[Optional[str],
                                                datetime.date]] = {}
        self._carry_comparisons_charged = 0
        #: Shared scan-verdict memo (see ScanEngine): the shedding stage and
        #: the same-day evaluation scans resolve each content once.
        self._scan_memo: Dict = {}

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    def seed_known_kit(self, kit: str, unpacked_samples: Iterable[str]) -> None:
        """Seed the corpus with known unpacked samples of a kit."""
        self.corpus.add_many(kit, unpacked_samples)

    # ------------------------------------------------------------------
    # the daily loop
    # ------------------------------------------------------------------
    def process_day(self, samples: Sequence[Tuple[str, str]],
                    date: datetime.date) -> DailyResult:
        """Process one day of samples.

        ``samples`` is a sequence of ``(sample_id, content)`` pairs.  The
        returned :class:`DailyResult` lists the clusters, their labels and
        any newly generated signatures; new signatures are also added to the
        deployed :attr:`database` with ``created=date``.
        """
        if self.config.incremental.enabled:
            return self._process_day_warm(samples, date)
        return self._process_day_cold(samples, date)

    # -- cold path: every day from scratch ------------------------------
    def _process_day_cold(self, samples: Sequence[Tuple[str, str]],
                          date: datetime.date) -> DailyResult:
        stage_start = time.perf_counter()
        prepared = [ClusteredSample.from_content(sample_id, content)
                    for sample_id, content in samples]
        prepare_seconds = time.perf_counter() - stage_start

        stage_start = time.perf_counter()
        clusters, timing = self.clusterer.run(
            prepared, partitions=self.config.partitions)
        cluster_seconds = time.perf_counter() - stage_start

        result = DailyResult(date=date, timing=timing,
                             sample_count=len(prepared))
        clustered_ids = {sample.sample_id
                         for cluster in clusters for sample in cluster.samples}
        result.noise_count = len(prepared) - len(clustered_ids)

        stage_start = time.perf_counter()
        for cluster in clusters:
            label = self.labeler.label_cluster(cluster)
            report = ClusterReport(cluster=cluster, label=label)
            if label.kit is not None:
                signature = self._signature_for(cluster, label.kit, date)
                if signature is not None:
                    report.signature = signature
                    result.new_signatures.append(signature)
                    self.database.add(signature)
                    # Feed the freshly unpacked prototype back into the
                    # corpus so the kit can be tracked as it drifts.
                    self.corpus.add(label.kit, label.unpacked, collected=date)
            result.clusters.append(report)
        label_seconds = time.perf_counter() - stage_start
        timing.wall_stage_seconds.update({
            "prepare": prepare_seconds,
            "cluster": cluster_seconds,
            "label_and_compile": label_seconds,
        })
        return result

    # -- warm path: shed to sentinels, cluster, inherit labels -----------
    def _process_day_warm(self, samples: Sequence[Tuple[str, str]],
                          date: datetime.date) -> DailyResult:
        incremental = self.config.incremental
        engine = ScanEngine(self.database, mode=incremental.scan_mode,
                            prepared=self.prepared, memo=self._scan_memo)

        # Stage 1: known-sample shedding (before any tokenization).  Every
        # shed group — keyed by the first deployed signature that matched,
        # or by exact content for repeats of already-labeled material —
        # leaves one tokenized sentinel carrying the group's weight, so the
        # clustering stage keeps the cold path's density geometry.
        stage_start = time.perf_counter()
        shed: List[ShedRecord] = []
        shed_kits: Set[str] = set()
        scanned_bytes = 0
        survivors: List[ClusteredSample] = []
        sentinels: Dict[object, ClusteredSample] = {}
        any_deployed = incremental.shed_known and len(self.database) > 0
        for sample_id, content in samples:
            if not incremental.shed_known:
                survivors.append(ClusteredSample(
                    sample_id=sample_id, content=content,
                    tokens=self.prepared.abstract_tokens(content)))
                continue
            digest = PreparedCache.content_key(content)
            known = self._recall_content(digest, date)
            if known is not None:
                kit = known[0]
                shed.append(ShedRecord(sample_id=sample_id,
                                       reason="known-content", kit=kit))
                if kit is not None:
                    shed_kits.add(kit)
                scanned_bytes += len(content)
                self._add_sentinel(sentinels, ("content", digest),
                                   sample_id, content)
                continue
            if any_deployed:
                scanned_bytes += len(content)
                verdict = engine.scan(sample_id, content, as_of=date)
                if verdict.detected:
                    matched = verdict.matched_signatures[0]
                    kit = matched.kit
                    shed.append(ShedRecord(sample_id=sample_id,
                                           reason="signature", kit=kit))
                    shed_kits.add(kit)
                    self._remember_content(digest, kit, date)
                    self._add_sentinel(sentinels,
                                       ("sig", matched.signature_id),
                                       sample_id, content)
                    continue
            survivors.append(ClusteredSample(
                sample_id=sample_id, content=content,
                tokens=self.prepared.abstract_tokens(content)))
        shed_seconds = time.perf_counter() - stage_start

        # Stage 2: cluster survivors and sentinels together.  Sentinel
        # weights feed the DBSCAN density requirement and prototype
        # selection, so the result matches clustering the full batch.
        stage_start = time.perf_counter()
        prepared = survivors + list(sentinels.values())
        clusters, timing = self.clusterer.run(
            prepared, partitions=self.config.partitions)
        cluster_seconds = time.perf_counter() - stage_start

        sentinel_ids = {sample.sample_id for sample in sentinels.values()}
        result = DailyResult(date=date, timing=timing,
                             sample_count=len(samples), shed=shed)
        clustered_real = {sample.sample_id
                          for cluster in clusters
                          for sample in cluster.samples
                          if sample.sample_id not in sentinel_ids}
        result.noise_count = len(survivors) - len(clustered_real)

        # Stage 3: label (inheriting from yesterday's anchors when the
        # prototype carried over) and compile.
        stage_start = time.perf_counter()
        for cluster in clusters:
            carried_label: Optional[ClusterLabel] = None
            if incremental.carry_forward:
                anchor = self.carry.match(cluster.prototype.tokens)
                if anchor is not None:
                    carried_label = ClusterLabel(
                        kit=anchor.kit, overlap=anchor.overlap,
                        best_family=anchor.best_family, unpacked="",
                        layers=anchor.layers)
            if carried_label is not None:
                result.carried_cluster_count += 1
                result.absorbed_count += sum(
                    sample.weight for sample in cluster.samples
                    if sample.sample_id not in sentinel_ids)
                report = self._report_for(cluster, carried_label, date,
                                          carried=True)
            else:
                label = self.labeler.label_cluster(cluster)
                report = self._report_for(cluster, label, date, carried=False)
            result.clusters.append(report)
            if report.signature is not None:
                result.new_signatures.append(report.signature)
        label_seconds = time.perf_counter() - stage_start

        # Remember every labeled real content for the exact-repeat shedding
        # branch, and roll the anchors forward.
        for report in result.clusters:
            for sample in report.cluster.samples:
                if sample.sample_id in sentinel_ids:
                    continue
                self._remember_content(
                    PreparedCache.content_key(sample.content),
                    report.label.kit, date)
        if incremental.carry_forward:
            if shed_kits:
                self.carry.refresh_kits(sorted(shed_kits), date)
            self.carry.update(result.clusters, date)

        # Charge the incremental stages against the simulated pool so the
        # virtual daily wall-clock stays honest: every byte the shedding
        # stage *scanned* is charged (survivors that failed the scan cost
        # real work too — the warm path only gets credit for work it truly
        # sheds), and anchor probes are charged at banded-DP cost.
        average_length = 1.0
        if prepared:
            average_length = sum(len(sample.tokens)
                                 for sample in prepared) / len(prepared)
        spec = self.clusterer.sim_cluster.machine_spec
        timing.charge_stage("shed", float(scanned_bytes),
                            machine_count=self.config.machines, spec=spec)
        probes = self.carry.comparisons - self._carry_comparisons_charged
        self._carry_comparisons_charged = self.carry.comparisons
        timing.charge_stage(
            "carry_forward",
            probes * max(1.0, self.config.epsilon * average_length)
            * average_length,
            machine_count=self.config.machines, spec=spec)
        timing.wall_stage_seconds.update({
            "shed": shed_seconds,
            "cluster": cluster_seconds,
            "label_and_compile": label_seconds,
        })
        return result

    def _add_sentinel(self, sentinels: Dict[object, ClusteredSample],
                      key: object, sample_id: str, content: str) -> None:
        """Record one shed sample in its group's sentinel.

        The first sample of a group is tokenized (through the preparation
        cache) and becomes the sentinel; later samples only bump its weight.
        """
        sentinel = sentinels.get(key)
        if sentinel is None:
            sentinels[key] = ClusteredSample(
                sample_id=f"sentinel-{len(sentinels)}-{sample_id}",
                content=content,
                tokens=self.prepared.abstract_tokens(content))
        else:
            sentinel.weight += 1

    def _report_for(self, cluster: Cluster, label: ClusterLabel,
                    date: datetime.date, carried: bool) -> ClusterReport:
        """Build the report for one cluster, compiling a signature when the
        cluster is malicious and not already covered.

        A carried kit cluster that turns out *not* to be covered (the kit
        changed under the anchor) is re-labeled for real first — the corpus
        feedback needs a genuine unpacked prototype, and the re-label also
        revalidates the inherited verdict before a signature ships.
        """
        if label.kit is None:
            return ClusterReport(cluster=cluster, label=label)
        contents = cluster.contents()
        if self.config.reuse_existing_signatures and \
                self._already_covered(contents, label.kit, date):
            return ClusterReport(cluster=cluster, label=label)
        if carried:
            label = self.labeler.label_cluster(cluster)
            if label.kit is None:
                return ClusterReport(cluster=cluster, label=label)
        report = ClusterReport(cluster=cluster, label=label)
        signature = self.compiler.compile_cluster(contents, label.kit, date)
        if signature is not None:
            report.signature = signature
            self.database.add(signature)
            self.corpus.add(label.kit, label.unpacked, collected=date)
        return report

    def _remember_content(self, digest: bytes, kit: Optional[str],
                          date: datetime.date) -> None:
        # Pop before reassigning so a re-recorded digest moves to the end
        # of the dict: the size bound below drops from the front, and
        # without the move it would evict exactly the contents that repeat
        # every day.
        self._known_contents.pop(digest, None)
        self._known_contents[digest] = (kit, date)
        if len(self._known_contents) > 4 * \
                self.config.incremental.prepared_cache_entries:
            # Crude bound: drop the least recently touched half.
            for key in list(self._known_contents)[
                    :len(self._known_contents) // 2]:
                del self._known_contents[key]

    def _recall_content(self, digest: bytes, date: datetime.date
                        ) -> Optional[Tuple[Optional[str], datetime.date]]:
        """The ledger entry for a digest, unless it has expired.

        Entries older than ``anchor_ttl_days`` are dropped: a verdict that
        entered the ledger through an inherited label must not outlive the
        anchor generation that produced it.
        """
        entry = self._known_contents.get(digest)
        if entry is None:
            return None
        horizon = date - datetime.timedelta(
            days=self.config.incremental.anchor_ttl_days)
        if entry[1] < horizon:
            del self._known_contents[digest]
            return None
        # Refresh the entry's position (not its date) so the eviction bound
        # in _remember_content treats daily-repeating content as hot.
        self._known_contents[digest] = self._known_contents.pop(digest)
        return entry

    # ------------------------------------------------------------------
    # signature management
    # ------------------------------------------------------------------
    def _signature_for(self, cluster: Cluster, kit: str,
                       date: datetime.date) -> Optional[Signature]:
        """Compile a signature for a malicious cluster, unless an existing
        deployed signature for the kit already covers its samples."""
        contents = cluster.contents()
        if self.config.reuse_existing_signatures and self._already_covered(
                contents, kit, date):
            return None
        return self.compiler.compile_cluster(contents, kit, date)

    def _already_covered(self, contents: Sequence[str], kit: str,
                         date: datetime.date) -> bool:
        existing = self.database.signatures_for(kit=kit, as_of=date)
        if not existing:
            return False
        if self.config.incremental.enabled:
            engine = ScanEngine(self.database,
                                mode=self.config.incremental.scan_mode,
                                prepared=self.prepared)
            # Newest first: on a stable day the latest signature is the one
            # that matches, so the ``any`` below exits on its first probe.
            ordered = list(reversed(existing))
            for content in contents:
                normalized = engine.normal_form(content)
                if not any(signature.matches(normalized)
                           for signature in ordered
                           if signature.could_match(normalized)):
                    return False
            return True
        for content in contents:
            normalized = normalize_for_scan(content)
            if not any(signature.matches(normalized) for signature in existing):
                return False
        return True

    # ------------------------------------------------------------------
    # scanning with the generated signatures
    # ------------------------------------------------------------------
    def scan_engine(self) -> ScanEngine:
        """A scan engine over the signatures generated so far.

        On the warm path the engine shares the pipeline's preparation cache
        and scan mode, so evaluating a day's detections does not re-tokenize
        content the pipeline already prepared.
        """
        if self.config.incremental.enabled:
            return ScanEngine(self.database,
                              mode=self.config.incremental.scan_mode,
                              prepared=self.prepared, memo=self._scan_memo)
        return ScanEngine(self.database)

    def detects(self, content: str,
                as_of: Optional[datetime.date] = None) -> bool:
        """Whether any deployed signature matches the sample."""
        engine = self.scan_engine()
        normalized = engine.normal_form(content)
        return bool(engine.matching_signatures(
            normalized, self.database.signatures_for(as_of=as_of)))
