"""Kizzle configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.distance.engine import DistanceEngineConfig
from repro.exec.backend import BackendConfig
from repro.labeling.corpus import DEFAULT_THRESHOLDS
from repro.signatures.compiler import SignatureConfig
from repro.winnowing.fingerprint import DEFAULT_K, DEFAULT_WINDOW


@dataclass
class IncrementalConfig:
    """Knobs of the incremental (day-over-day warm) pipeline.

    Attributes
    ----------
    enabled:
        Master switch.  Off (the default) reproduces the original cold-start
        behaviour byte for byte: every day re-tokenizes, re-clusters and
        re-labels from scratch.
    shed_known:
        Set aside, before tokenization, samples that are exact-content
        repeats of already-labeled material or that are matched by an
        already-deployed signature (the paper's "most of the stream is the
        same grayware every day").  Shed samples are counted per kit in the
        daily result; an unmatched sample is never shed.
    carry_forward:
        Inject yesterday's cluster prototypes as pre-labeled anchors:
        samples within ``epsilon`` of an anchor are absorbed into the
        anchor's cluster (inheriting its label without re-unpacking or
        re-winnowing) and only the residual novel material enters DBSCAN.
    scan_mode:
        ``"exact"`` scans with the lexer-based normal form; ``"fast"``
        (the warm default when enabled) scans with
        :func:`~repro.scanner.normalizer.fast_normalize` plus the
        literal-anchor prefilter.  Fast mode is verdict-equivalent on the
        synthetic stream (asserted by tests); exact mode is the fallback
        for content the fast normalizer was not designed for.
    anchor_ttl_days:
        Days a carry-forward anchor survives without absorbing anything
        before it is dropped (stale prototypes stop paying rent).
    max_anchors:
        Upper bound on carried anchors; the least recently refreshed are
        dropped first.
    prepared_cache_entries:
        Bound of the per-content preparation cache
        (:class:`~repro.core.prepared.PreparedCache`).
    """

    enabled: bool = False
    shed_known: bool = True
    carry_forward: bool = True
    scan_mode: str = "fast"
    anchor_ttl_days: int = 7
    max_anchors: int = 256
    prepared_cache_entries: int = 8192

    def __post_init__(self) -> None:
        if self.scan_mode not in ("exact", "fast"):
            raise ValueError("scan_mode must be 'exact' or 'fast'")
        if self.anchor_ttl_days < 1:
            raise ValueError("anchor_ttl_days must be at least 1")
        if self.max_anchors < 1:
            raise ValueError("max_anchors must be at least 1")
        if self.prepared_cache_entries < 1:
            raise ValueError("prepared_cache_entries must be positive")


@dataclass
class KizzleConfig:
    """All tuning knobs of the pipeline in one place (paper, Section V
    "Tuning the ML" discusses exactly these).

    Attributes
    ----------
    epsilon:
        DBSCAN normalized edit-distance threshold (paper: 0.10).
    min_points:
        Minimum cluster density; clusters smaller than this are noise, which
        is also the mechanism behind the paper's residual false negatives
        ("changes ... not numerous enough ... to warrant a separate cluster").
    machines:
        Simulated machine count for the clustering stage (paper: 50).
    partitions:
        Number of partitions for the map phase; defaults to ``machines``.
    winnow_k / winnow_window:
        Winnowing fingerprint parameters for labeling.
    label_thresholds:
        Per-family winnow overlap thresholds.
    signature:
        Signature generation settings (window cap, minimum length).
    distance:
        Distance-engine settings: process-pool width (``workers``; 0 means
        auto-detect), the three prefilter toggles
        (``length_filter`` / ``bag_filter`` / ``qgram_filter``) and the
        bounded pair-cache size.  These only change cost, never clustering
        results.
    reuse_existing_signatures:
        When true, a new signature is only generated for a malicious cluster
        if no already-deployed signature for the same kit matches the
        cluster's samples — this is what makes the Figure 12 "steps" appear
        only when the kit actually changes.
    incremental:
        Day-over-day warm-path settings (shedding, carry-forward, fast
        scanning); disabled by default.  See :class:`IncrementalConfig`.
    backend:
        Execution-backend selection (``serial`` / ``process`` / ``distsim``)
        and its substrate knobs.  Unset fields inherit the pipeline-level
        values (``machines``, ``distance.workers``, ``seed``) via
        :meth:`resolved_backend`.  Backends never change results — only
        where work runs and what the timing report looks like.
    """

    epsilon: float = 0.10
    min_points: int = 3
    machines: int = 50
    partitions: Optional[int] = None
    winnow_k: int = DEFAULT_K
    winnow_window: int = DEFAULT_WINDOW
    label_thresholds: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_THRESHOLDS))
    signature: SignatureConfig = field(default_factory=SignatureConfig)
    distance: DistanceEngineConfig = field(
        default_factory=DistanceEngineConfig)
    reuse_existing_signatures: bool = True
    incremental: IncrementalConfig = field(default_factory=IncrementalConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError("epsilon must be in (0, 1]")
        if self.min_points < 1:
            raise ValueError("min_points must be at least 1")
        if self.machines < 1:
            raise ValueError("machines must be at least 1")

    def resolved_backend(self) -> BackendConfig:
        """The backend configuration with inherited fields filled in."""
        return self.backend.resolved(machines=self.machines,
                                     workers=self.distance.workers,
                                     seed=self.seed)
