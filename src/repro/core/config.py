"""Kizzle configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.distance.engine import DistanceEngineConfig
from repro.labeling.corpus import DEFAULT_THRESHOLDS
from repro.signatures.compiler import SignatureConfig
from repro.winnowing.fingerprint import DEFAULT_K, DEFAULT_WINDOW


@dataclass
class KizzleConfig:
    """All tuning knobs of the pipeline in one place (paper, Section V
    "Tuning the ML" discusses exactly these).

    Attributes
    ----------
    epsilon:
        DBSCAN normalized edit-distance threshold (paper: 0.10).
    min_points:
        Minimum cluster density; clusters smaller than this are noise, which
        is also the mechanism behind the paper's residual false negatives
        ("changes ... not numerous enough ... to warrant a separate cluster").
    machines:
        Simulated machine count for the clustering stage (paper: 50).
    partitions:
        Number of partitions for the map phase; defaults to ``machines``.
    winnow_k / winnow_window:
        Winnowing fingerprint parameters for labeling.
    label_thresholds:
        Per-family winnow overlap thresholds.
    signature:
        Signature generation settings (window cap, minimum length).
    distance:
        Distance-engine settings: process-pool width (``workers``; 0 means
        auto-detect), the three prefilter toggles
        (``length_filter`` / ``bag_filter`` / ``qgram_filter``) and the
        bounded pair-cache size.  These only change cost, never clustering
        results.
    reuse_existing_signatures:
        When true, a new signature is only generated for a malicious cluster
        if no already-deployed signature for the same kit matches the
        cluster's samples — this is what makes the Figure 12 "steps" appear
        only when the kit actually changes.
    """

    epsilon: float = 0.10
    min_points: int = 3
    machines: int = 50
    partitions: Optional[int] = None
    winnow_k: int = DEFAULT_K
    winnow_window: int = DEFAULT_WINDOW
    label_thresholds: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_THRESHOLDS))
    signature: SignatureConfig = field(default_factory=SignatureConfig)
    distance: DistanceEngineConfig = field(
        default_factory=DistanceEngineConfig)
    reuse_existing_signatures: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError("epsilon must be in (0, 1]")
        if self.min_points < 1:
            raise ValueError("min_points must be at least 1")
        if self.machines < 1:
            raise ValueError("machines must be at least 1")
