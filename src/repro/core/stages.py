"""The stage graph: explicit dataflow for the daily pipeline.

``Kizzle.process_day`` used to be a monolith with a forked warm copy; it is
now a linear graph of first-class :class:`Stage` objects with declared
inputs (``requires``) and outputs (``provides``) over a shared context
dictionary.  The warm path is *stage substitution* — the same graph shape
with different implementations plugged into the ``shed``/``prepare``/
``label`` slots — instead of a duplicated driver.

Two stage flavours exist:

* **context stages** (``over is None``): ``fn(context)`` runs once, reading
  its declared inputs from the context and writing its declared outputs
  back;
* **itemized stages** (``over="key"``): ``fn(context, item, carry)`` runs
  once per element of ``context[key]``.  Consecutive itemized stages over
  the same key form a *chain* executed depth-first per item — item ``i``
  flows through the whole chain before item ``i+1`` starts.  This is
  load-bearing for the label → compile stages: compiling cluster ``i``
  feeds the corpus that labeling cluster ``i+1`` winnows against, so a
  barrier between the stages would change labels.  ``carry`` threads each
  item's intermediate value down the chain (``None`` at the first stage).

The graph records wall-clock seconds per stage on every run
(:attr:`StageGraph.last_walls`), which the pipeline surfaces through
``DailyResult.timing.wall_stage_seconds`` — itemized stages in a chain are
timed individually, so label and compile costs stay attributable even
though they interleave.  A context stage may additionally return a mapping
of sub-stage walls (``{"map": seconds}``), recorded as dotted entries
(``cluster.map``) alongside its own wall — this is how the cluster stage
attributes the partition-parallel map's pool time inside its total without
the graph knowing anything about execution backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, \
    Tuple


class StageGraphError(ValueError):
    """A structurally invalid graph or a stage contract violation."""


@dataclass
class Stage:
    """One named unit of pipeline work with a declared dataflow contract.

    Attributes
    ----------
    name:
        Unique stage name; the key under which wall time is recorded.
    fn:
        ``fn(context)`` for context stages — optionally returning a
        ``{sub_name: seconds}`` mapping recorded as ``name.sub_name`` wall
        entries; ``fn(context, item, carry)`` returning the next ``carry``
        for itemized stages.
    requires / provides:
        Context keys the stage reads / writes.  Validated on every run:
        a stage whose requirements are not provided by the initial context
        or an earlier stage fails fast, as does a stage that finishes
        without having written what it promised.
    over:
        Context key holding the item sequence for itemized stages.
    """

    name: str
    fn: Callable
    requires: Tuple[str, ...] = ()
    provides: Tuple[str, ...] = ()
    over: Optional[str] = None


@dataclass
class StageGraph:
    """An ordered stage pipeline with validated dataflow."""

    stages: Sequence[Stage]
    last_walls: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise StageGraphError(f"duplicate stage names in {names}")

    # ------------------------------------------------------------------
    def validate(self, initial: Iterable[str]) -> None:
        """Check that every stage's inputs are satisfiable in order."""
        available = set(initial)
        for stage in self.stages:
            needed = set(stage.requires)
            if stage.over is not None:
                needed.add(stage.over)
            missing = needed - available
            if missing:
                raise StageGraphError(
                    f"stage {stage.name!r} requires {sorted(missing)} "
                    f"which no earlier stage provides")
            available.update(stage.provides)

    # ------------------------------------------------------------------
    def run(self, context: Dict[str, Any]) -> Dict[str, float]:
        """Execute the graph over ``context``; returns wall seconds per stage.

        The context is mutated in place.  Itemized chains (consecutive
        stages sharing an ``over`` key) run depth-first per item.
        """
        self.validate(context.keys())
        walls: Dict[str, float] = {stage.name: 0.0 for stage in self.stages}
        index = 0
        stages = list(self.stages)
        while index < len(stages):
            stage = stages[index]
            if stage.over is None:
                started = time.perf_counter()
                sub_walls = stage.fn(context)
                walls[stage.name] += time.perf_counter() - started
                if isinstance(sub_walls, dict):
                    for sub_name, seconds in sub_walls.items():
                        key = f"{stage.name}.{sub_name}"
                        walls[key] = walls.get(key, 0.0) + float(seconds)
                self._check_provides(stage, context)
                index += 1
                continue
            chain = [stage]
            index += 1
            while index < len(stages) and stages[index].over == stage.over:
                chain.append(stages[index])
                index += 1
            for item in list(context[stage.over]):
                carry: Any = None
                for link in chain:
                    started = time.perf_counter()
                    carry = link.fn(context, item, carry)
                    walls[link.name] += time.perf_counter() - started
            for link in chain:
                self._check_provides(link, context)
        self.last_walls = walls
        return walls

    @staticmethod
    def _check_provides(stage: Stage, context: Dict[str, Any]) -> None:
        missing = [key for key in stage.provides if key not in context]
        if missing:
            raise StageGraphError(
                f"stage {stage.name!r} finished without providing {missing}")

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A compact multi-line rendering of the graph's dataflow.

        Used by the README example and ``examples/backend_comparison.py``;
        one line per stage::

            shed[samples, date -> survivors, ...]
        """
        lines: List[str] = []
        for stage in self.stages:
            flow = ""
            if stage.requires or stage.provides:
                flow = "[{} -> {}]".format(
                    ", ".join(stage.requires) or "-",
                    ", ".join(stage.provides) or "-")
            marker = f" (per {stage.over})" if stage.over else ""
            lines.append(f"{stage.name}{flow}{marker}")
        return "\n".join(lines)

    def names(self) -> List[str]:
        return [stage.name for stage in self.stages]
