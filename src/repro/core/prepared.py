"""Once-per-content preparation cache for the daily pipeline.

Profiling the month experiment shows the dominant cost is the Python lexer:
each sample used to be tokenized up to four times per day (abstract token
string for clustering, scanner normalization in the pipeline's coverage
check, and once more per scan engine in the evaluation harness).  The
:class:`PreparedCache` memoizes every derived form per unique content so the
lexer runs at most once per content per day regardless of how many stages
look at the same sample — and, for workloads where content repeats across
days (replays, steady-state grayware), at most once per content overall
within the cache bound.

All three derived forms are exact; the cache never changes results, only
cost.  Entries are evicted LRU once ``max_entries`` is exceeded, so a
month of daily batches cannot grow the cache without bound.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from repro.jstoken.normalizer import abstract_tokens_of, tokenize_sample
from repro.jstoken.tokens import Token
from repro.scanner.normalizer import fast_normalize, normalize_tokens


class _LRUTable:
    """A bounded LRU mapping content -> derived string/tuple."""

    __slots__ = ("maxsize", "_entries", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str, compute: Callable[[str], object]) -> object:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = compute(key)
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def put(self, key: str, value: object) -> None:
        """Install a value computed elsewhere (same LRU accounting as a
        computed miss, but no hit/miss counter movement: seeding is not a
        lookup)."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class PreparedCache:
    """Memoized per-content derived forms shared across pipeline stages.

    The lexer runs at most once per content (:meth:`raw_tokens`); the other
    forms — ``abstract_tokens`` for clustering, ``normalized`` for the exact
    scanner, ``fast_normalized`` for the warm scan path — are derived from
    the raw token list (or, for the fast form, from one C-level regex pass)
    and memoized separately so repeated consumers pay a dictionary lookup.
    """

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._raw = _LRUTable(max_entries)
        self._tokens = _LRUTable(max_entries)
        self._normalized = _LRUTable(max_entries)
        self._fast = _LRUTable(max_entries)

    # ------------------------------------------------------------------
    def raw_tokens(self, content: str) -> List[Token]:
        """The significant token list of ``content`` (the one lexer run)."""
        return self._raw.get(content, tokenize_sample)

    def abstract_tokens(self, content: str) -> Tuple[str, ...]:
        """The abstract token string of ``content`` (memoized)."""
        return self._tokens.get(
            content, lambda text: abstract_tokens_of(self.raw_tokens(text)))

    def normalized(self, content: str) -> str:
        """The exact scanner normal form of ``content`` (memoized)."""
        return self._normalized.get(
            content, lambda text: normalize_tokens(self.raw_tokens(text)))

    def fast_normalized(self, content: str) -> str:
        """The regex-based fast normal form of ``content`` (memoized)."""
        return self._fast.get(content, fast_normalize)

    def seed_abstract(self, content: str, tokens: Tuple[str, ...]) -> None:
        """Install an externally computed abstract token string.

        Cluster workers use this when a task ships with tokens attached:
        seeding means the *next* lease of the same partition can ship slim
        (token-stripped) and still resolve tokens from cache.  The caller
        vouches that ``tokens`` equals ``abstract_tokens(content)`` — on
        the cluster wire that holds because both sides derive tokens with
        the same pure function of content.
        """
        self._tokens.put(content, tuple(tokens))

    # ------------------------------------------------------------------
    @staticmethod
    def content_key(content: str) -> bytes:
        """A stable digest of raw content, for known-sample ledgers.

        128-bit blake2b: at paper-scale volumes (tens of millions of
        distinct contents per month) a 32-bit digest would collide with
        near-certainty and silently shed a novel sample as known content;
        at 128 bits the birthday bound is out of reach.
        """
        return hashlib.blake2b(
            content.encode("utf-8", "surrogatepass"),
            digest_size=16).digest()

    def stats(self) -> dict:
        """Hit/miss counters per table (``raw_misses`` is the one that
        matters: each miss there is one full lexer run)."""
        return {
            "raw_hits": self._raw.hits,
            "raw_misses": self._raw.misses,
            "tokens_hits": self._tokens.hits,
            "tokens_misses": self._tokens.misses,
            "normalized_hits": self._normalized.hits,
            "normalized_misses": self._normalized.misses,
            "fast_hits": self._fast.hits,
            "fast_misses": self._fast.misses,
        }

    def clear(self) -> None:
        self._raw.clear()
        self._tokens.clear()
        self._normalized.clear()
        self._fast.clear()
