"""Kizzle's core: configuration, the daily processing pipeline, and result
records.  This package is the paper's primary contribution; everything else
under :mod:`repro` is a substrate it builds on.
"""

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.prepared import PreparedCache
from repro.core.results import ClusterReport, DailyResult, ShedRecord
from repro.core.stages import Stage, StageGraph, StageGraphError
from repro.core.pipeline import Kizzle

__all__ = [
    "IncrementalConfig",
    "KizzleConfig",
    "PreparedCache",
    "ClusterReport",
    "DailyResult",
    "ShedRecord",
    "Stage",
    "StageGraph",
    "StageGraphError",
    "Kizzle",
]
