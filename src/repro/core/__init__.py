"""Kizzle's core: configuration, the daily processing pipeline, and result
records.  This package is the paper's primary contribution; everything else
under :mod:`repro` is a substrate it builds on.
"""

from repro.core.config import KizzleConfig
from repro.core.results import ClusterReport, DailyResult
from repro.core.pipeline import Kizzle

__all__ = [
    "KizzleConfig",
    "ClusterReport",
    "DailyResult",
    "Kizzle",
]
