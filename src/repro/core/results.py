"""Result records produced by the daily Kizzle run."""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clustering.partition import Cluster
from repro.distsim.mapreduce import MapReduceReport
from repro.labeling.labeler import ClusterLabel
from repro.signatures.signature import Signature


@dataclass
class ClusterReport:
    """One cluster with its label and (optional) generated signature."""

    cluster: Cluster
    label: ClusterLabel
    signature: Optional[Signature] = None

    @property
    def size(self) -> int:
        return self.cluster.size

    @property
    def kit(self) -> Optional[str]:
        return self.label.kit


@dataclass
class ShedRecord:
    """One sample set aside by the known-sample shedding stage."""

    sample_id: str
    #: ``"signature"`` (matched by a deployed signature), ``"known-content"``
    #: (exact repeat of already-labeled content).
    reason: str
    #: The kit the sample was attributed to; ``None`` for known-benign.
    kit: Optional[str] = None


@dataclass
class DailyResult:
    """Everything produced by one day of processing.

    The incremental warm path additionally reports which samples were shed
    before tokenization (:attr:`shed`), how many were absorbed into
    carried-forward clusters (:attr:`absorbed_count`) versus freshly
    clustered, and how many of the day's clusters inherited yesterday's
    label without re-unpacking (:attr:`carried_cluster_count`).  On the cold
    path all of these stay at their empty defaults.
    """

    date: datetime.date
    clusters: List[ClusterReport] = field(default_factory=list)
    new_signatures: List[Signature] = field(default_factory=list)
    timing: Optional[MapReduceReport] = None
    sample_count: int = 0
    noise_count: int = 0
    shed: List[ShedRecord] = field(default_factory=list)
    absorbed_count: int = 0
    carried_cluster_count: int = 0
    #: Which execution backend processed the day.
    backend: str = ""
    #: Per-day delta of the shared :class:`~repro.core.prepared.PreparedCache`
    #: hit/miss counters (``raw_misses`` = lexer runs this day).  Empty on
    #: cold runs, which bypass the cache by design.
    prepared_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def shed_count(self) -> int:
        return len(self.shed)

    @property
    def stage_walls(self) -> Dict[str, float]:
        """Measured wall-clock seconds per pipeline stage."""
        if self.timing is None:
            return {}
        return dict(self.timing.wall_stage_seconds)

    def shed_by_kit(self) -> Dict[str, int]:
        """Shed-sample counts keyed by kit (benign under ``"benign"``)."""
        counts: Dict[str, int] = {}
        for record in self.shed:
            key = record.kit if record.kit is not None else "benign"
            counts[key] = counts.get(key, 0) + 1
        return counts

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    @property
    def malicious_clusters(self) -> List[ClusterReport]:
        return [report for report in self.clusters if report.kit is not None]

    @property
    def benign_clusters(self) -> List[ClusterReport]:
        return [report for report in self.clusters if report.kit is None]

    def clusters_by_kit(self) -> Dict[str, List[ClusterReport]]:
        grouped: Dict[str, List[ClusterReport]] = {}
        for report in self.malicious_clusters:
            grouped.setdefault(report.kit, []).append(report)
        return grouped

    def summary(self) -> Dict[str, object]:
        """Compact summary used by the reporting layer."""
        summary = {
            "date": self.date.isoformat(),
            "samples": self.sample_count,
            "clusters": self.cluster_count,
            "malicious_clusters": len(self.malicious_clusters),
            "new_signatures": len(self.new_signatures),
            "noise_samples": self.noise_count,
            "processing_minutes": (self.timing.total_time / 60.0
                                   if self.timing else 0.0),
        }
        if self.shed or self.absorbed_count:
            summary["shed_samples"] = self.shed_count
            summary["absorbed_samples"] = self.absorbed_count
            summary["carried_clusters"] = self.carried_cluster_count
        if self.backend:
            summary["backend"] = self.backend
        for stage, seconds in self.stage_walls.items():
            summary[f"wall_{stage}_s"] = seconds
        if self.prepared_stats:
            summary["prepared_lexer_runs"] = \
                self.prepared_stats.get("raw_misses", 0)
            summary["prepared_hits"] = sum(
                count for name, count in self.prepared_stats.items()
                if name.endswith("_hits"))
            summary["prepared_misses"] = sum(
                count for name, count in self.prepared_stats.items()
                if name.endswith("_misses"))
        return summary
