"""Result records produced by the daily Kizzle run."""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clustering.partition import Cluster
from repro.distsim.mapreduce import MapReduceReport
from repro.labeling.labeler import ClusterLabel
from repro.signatures.signature import Signature


@dataclass
class ClusterReport:
    """One cluster with its label and (optional) generated signature."""

    cluster: Cluster
    label: ClusterLabel
    signature: Optional[Signature] = None

    @property
    def size(self) -> int:
        return self.cluster.size

    @property
    def kit(self) -> Optional[str]:
        return self.label.kit


@dataclass
class DailyResult:
    """Everything produced by one day of processing."""

    date: datetime.date
    clusters: List[ClusterReport] = field(default_factory=list)
    new_signatures: List[Signature] = field(default_factory=list)
    timing: Optional[MapReduceReport] = None
    sample_count: int = 0
    noise_count: int = 0

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    @property
    def malicious_clusters(self) -> List[ClusterReport]:
        return [report for report in self.clusters if report.kit is not None]

    @property
    def benign_clusters(self) -> List[ClusterReport]:
        return [report for report in self.clusters if report.kit is None]

    def clusters_by_kit(self) -> Dict[str, List[ClusterReport]]:
        grouped: Dict[str, List[ClusterReport]] = {}
        for report in self.malicious_clusters:
            grouped.setdefault(report.kit, []).append(report)
        return grouped

    def summary(self) -> Dict[str, object]:
        """Compact summary used by the reporting layer."""
        return {
            "date": self.date.isoformat(),
            "samples": self.sample_count,
            "clusters": self.cluster_count,
            "malicious_clusters": len(self.malicious_clusters),
            "new_signatures": len(self.new_signatures),
            "noise_samples": self.noise_count,
            "processing_minutes": (self.timing.total_time / 60.0
                                   if self.timing else 0.0),
        }
