"""A from-scratch JavaScript lexer.

The lexer is intentionally tolerant: exploit-kit samples are frequently
mangled, truncated by telemetry capture, or contain syntax that is only valid
inside an ``eval`` context.  Kizzle only needs a *consistent* tokenization,
not a validating parser, so unknown characters are skipped (optionally
recorded) rather than aborting the sample.

The tricky part of lexing JavaScript without a parser is deciding whether a
``/`` starts a regular-expression literal or is a division operator.  We use
the standard heuristic: a regex literal can only appear where an expression is
expected, i.e. after an operator, an opening bracket, a keyword such as
``return`` or ``typeof``, or at the start of the input.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.jstoken.tokens import KEYWORDS, PUNCTUATORS, Token, TokenClass


class LexerError(Exception):
    """Raised when the lexer encounters an unrecoverable situation.

    In practice only unterminated string/regex/comment constructs at end of
    input raise in strict mode; the default mode recovers.
    """

    def __init__(self, message: str, position: int, line: int) -> None:
        super().__init__(f"{message} at position {position} (line {line})")
        self.position = position
        self.line = line


_ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_ID_CONT = _ID_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")
_WHITESPACE = frozenset(" \t\v\f ﻿")
_LINE_TERMINATORS = frozenset("\n\r  ")

#: Keywords after which a ``/`` must start a regex literal, not division.
_REGEX_PRECEDING_KEYWORDS = frozenset(
    {
        "return", "typeof", "instanceof", "in", "of", "new", "delete",
        "void", "throw", "case", "do", "else", "yield",
    }
)


class Lexer:
    """Streaming JavaScript lexer.

    Parameters
    ----------
    source:
        The JavaScript source text.
    keep_comments:
        When true, comment tokens are emitted; otherwise they are dropped
        (the default, matching Kizzle's abstraction which ignores comments).
    strict:
        When true, unterminated constructs raise :class:`LexerError`.  The
        default (false) closes them at end of input, which is the right
        behaviour for truncated telemetry captures.
    """

    def __init__(self, source: str, keep_comments: bool = False,
                 strict: bool = False) -> None:
        self.source = source
        self.keep_comments = keep_comments
        self.strict = strict
        self._pos = 0
        self._line = 1
        self._length = len(source)
        self._last_significant: Optional[Token] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        """Yield tokens until the end of input."""
        while True:
            token = self._next_token()
            if token is None:
                return
            if token.cls is TokenClass.COMMENT and not self.keep_comments:
                continue
            yield token

    # ------------------------------------------------------------------
    # scanning helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= self._length:
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < self._length and self.source[self._pos] == "\n":
                self._line += 1
            self._pos += 1

    def _make(self, cls: TokenClass, start: int, start_line: int) -> Token:
        token = Token(cls=cls, value=self.source[start:self._pos],
                      position=start, line=start_line)
        if token.is_significant():
            self._last_significant = token
        return token

    # ------------------------------------------------------------------
    # token scanners
    # ------------------------------------------------------------------
    def _next_token(self) -> Optional[Token]:
        self._skip_whitespace()
        if self._pos >= self._length:
            return None

        char = self._peek()
        start = self._pos
        start_line = self._line

        if char == "/" and self._peek(1) == "/":
            return self._scan_line_comment(start, start_line)
        if char == "/" and self._peek(1) == "*":
            return self._scan_block_comment(start, start_line)
        if char in ("'", '"'):
            return self._scan_string(char, start, start_line)
        if char == "`":
            return self._scan_template(start, start_line)
        if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
            return self._scan_number(start, start_line)
        if char in _ID_START or ord(char) > 127:
            return self._scan_identifier(start, start_line)
        if char == "/" and self._regex_allowed():
            return self._scan_regex(start, start_line)
        return self._scan_punctuator(start, start_line)

    def _skip_whitespace(self) -> None:
        while self._pos < self._length:
            char = self.source[self._pos]
            if char in _WHITESPACE or char in _LINE_TERMINATORS:
                self._advance()
            else:
                return

    def _scan_line_comment(self, start: int, start_line: int) -> Token:
        while self._pos < self._length and self._peek() not in _LINE_TERMINATORS:
            self._advance()
        return self._make(TokenClass.COMMENT, start, start_line)

    def _scan_block_comment(self, start: int, start_line: int) -> Token:
        self._advance(2)
        while self._pos < self._length:
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return self._make(TokenClass.COMMENT, start, start_line)
            self._advance()
        if self.strict:
            raise LexerError("unterminated block comment", start, start_line)
        return self._make(TokenClass.COMMENT, start, start_line)

    def _scan_string(self, quote: str, start: int, start_line: int) -> Token:
        self._advance()  # opening quote
        while self._pos < self._length:
            char = self._peek()
            if char == "\\":
                self._advance(2)
                continue
            if char == quote:
                self._advance()
                return self._make(TokenClass.STRING, start, start_line)
            if char in _LINE_TERMINATORS:
                # Unterminated string on this line; malware frequently does
                # this inside document.write chunks.  Close it here.
                if self.strict:
                    raise LexerError("unterminated string literal",
                                     start, start_line)
                return self._make(TokenClass.STRING, start, start_line)
            self._advance()
        if self.strict:
            raise LexerError("unterminated string literal", start, start_line)
        return self._make(TokenClass.STRING, start, start_line)

    def _scan_template(self, start: int, start_line: int) -> Token:
        self._advance()  # backtick
        while self._pos < self._length:
            char = self._peek()
            if char == "\\":
                self._advance(2)
                continue
            if char == "`":
                self._advance()
                return self._make(TokenClass.TEMPLATE, start, start_line)
            self._advance()
        if self.strict:
            raise LexerError("unterminated template literal", start, start_line)
        return self._make(TokenClass.TEMPLATE, start, start_line)

    def _scan_number(self, start: int, start_line: int) -> Token:
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() in _HEX_DIGITS:
                self._advance()
            return self._make(TokenClass.NUMBER, start, start_line)
        if self._peek() == "0" and self._peek(1) in ("b", "B", "o", "O"):
            self._advance(2)
            while self._peek() in _DIGITS:
                self._advance()
            return self._make(TokenClass.NUMBER, start, start_line)
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == ".":
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E"):
            lookahead = 1
            if self._peek(1) in ("+", "-"):
                lookahead = 2
            if self._peek(lookahead) in _DIGITS:
                self._advance(lookahead)
                while self._peek() in _DIGITS:
                    self._advance()
        return self._make(TokenClass.NUMBER, start, start_line)

    def _scan_identifier(self, start: int, start_line: int) -> Token:
        while self._pos < self._length:
            char = self._peek()
            if char in _ID_CONT or ord(char) > 127:
                self._advance()
            else:
                break
        value = self.source[start:self._pos]
        cls = TokenClass.KEYWORD if value in KEYWORDS else TokenClass.IDENTIFIER
        return self._make(cls, start, start_line)

    def _scan_regex(self, start: int, start_line: int) -> Token:
        self._advance()  # leading slash
        in_class = False
        while self._pos < self._length:
            char = self._peek()
            if char == "\\":
                self._advance(2)
                continue
            if char == "[":
                in_class = True
            elif char == "]":
                in_class = False
            elif char == "/" and not in_class:
                self._advance()
                # regex flags
                while self._peek() in _ID_CONT:
                    self._advance()
                return self._make(TokenClass.REGEX, start, start_line)
            elif char in _LINE_TERMINATORS:
                # Not a regex after all (e.g. stray division); bail out as a
                # punctuator to stay robust.
                self._pos = start
                self._line = start_line
                return self._scan_punctuator(start, start_line)
            self._advance()
        if self.strict:
            raise LexerError("unterminated regex literal", start, start_line)
        return self._make(TokenClass.REGEX, start, start_line)

    def _scan_punctuator(self, start: int, start_line: int) -> Token:
        for punctuator in PUNCTUATORS:
            if self.source.startswith(punctuator, self._pos):
                self._advance(len(punctuator))
                return self._make(TokenClass.PUNCTUATION, start, start_line)
        # Unknown character (stray unicode, HTML fragment...).  Emit it as a
        # one-character punctuation token so the stream stays aligned.
        self._advance()
        return self._make(TokenClass.PUNCTUATION, start, start_line)

    # ------------------------------------------------------------------
    # regex / division disambiguation
    # ------------------------------------------------------------------
    def _regex_allowed(self) -> bool:
        last = self._last_significant
        if last is None:
            return True
        if last.cls is TokenClass.PUNCTUATION:
            return last.value not in (")", "]", "}", "++", "--")
        if last.cls is TokenClass.KEYWORD:
            return last.value in _REGEX_PRECEDING_KEYWORDS
        return False


def tokenize(source: str, keep_comments: bool = False,
             strict: bool = False) -> List[Token]:
    """Tokenize a JavaScript source string into a list of tokens.

    This is the convenience entry point used throughout the library.
    """
    return list(Lexer(source, keep_comments=keep_comments,
                      strict=strict).tokens())
