"""JavaScript tokenization substrate.

Kizzle abstracts every incoming JavaScript sample into a stream of abstract
tokens (Keyword, Identifier, Punctuation, String, ...) before clustering, so
that attacker-controlled noise such as randomized identifier names or string
payload contents does not dominate the distance computation (paper, Section
III-A and Figure 8).

This package provides:

* :class:`~repro.jstoken.tokens.Token` and
  :class:`~repro.jstoken.tokens.TokenClass` -- the token model.
* :class:`~repro.jstoken.lexer.Lexer` / :func:`~repro.jstoken.lexer.tokenize`
  -- a from-scratch JavaScript lexer that understands comments, string
  literals (single, double and template), numeric literals, regular
  expression literals, and the full ECMAScript punctuator set.
* :func:`~repro.jstoken.normalizer.abstract_token_string` -- converts a token
  stream into the abstract token-class string used as clustering input.
* :func:`~repro.jstoken.normalizer.strip_html` -- extracts inline script
  bodies from an HTML document, since a Kizzle "sample" is a complete HTML
  document including all inline script elements.
"""

from repro.jstoken.tokens import Token, TokenClass, KEYWORDS, PUNCTUATORS
from repro.jstoken.lexer import Lexer, LexerError, tokenize
from repro.jstoken.normalizer import (
    abstract_token_string,
    abstract_classes,
    concrete_values,
    strip_html,
    tokenize_sample,
)

__all__ = [
    "Token",
    "TokenClass",
    "KEYWORDS",
    "PUNCTUATORS",
    "Lexer",
    "LexerError",
    "tokenize",
    "abstract_token_string",
    "abstract_classes",
    "concrete_values",
    "strip_html",
    "tokenize_sample",
]
