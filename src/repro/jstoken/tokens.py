"""Token model for the JavaScript lexer.

The paper abstracts concrete JavaScript source into a small set of token
classes (Figure 8 shows Keyword / Identifier / Punctuation / String).  We keep
a slightly richer class set internally (numbers, regex literals, comments) and
collapse classes when producing the abstract token string used for
clustering; see :mod:`repro.jstoken.normalizer`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenClass(enum.Enum):
    """Abstract class of a lexical token."""

    KEYWORD = "Keyword"
    IDENTIFIER = "Identifier"
    PUNCTUATION = "Punctuation"
    STRING = "String"
    NUMBER = "Number"
    REGEX = "Regex"
    COMMENT = "Comment"
    TEMPLATE = "Template"
    EOF = "EOF"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    cls:
        The abstract :class:`TokenClass`.
    value:
        The concrete source text of the token (including quotes for string
        literals).
    position:
        Character offset of the first character of the token in the source.
    line:
        1-based line number of the token.
    """

    cls: TokenClass
    value: str
    position: int = 0
    line: int = 1

    @property
    def abstract(self) -> str:
        """Return the abstract class name used in token strings."""
        return self.cls.value

    def is_significant(self) -> bool:
        """Whether the token participates in clustering (comments do not)."""
        return self.cls not in (TokenClass.COMMENT, TokenClass.EOF)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.cls.value}({self.value!r})"


#: Reserved words of ECMAScript 5/6 plus literals that behave like keywords.
KEYWORDS = frozenset(
    {
        "break", "case", "catch", "class", "const", "continue", "debugger",
        "default", "delete", "do", "else", "enum", "export", "extends",
        "false", "finally", "for", "function", "if", "implements", "import",
        "in", "instanceof", "interface", "let", "new", "null", "package",
        "private", "protected", "public", "return", "static", "super",
        "switch", "this", "throw", "true", "try", "typeof", "var", "void",
        "while", "with", "yield",
    }
)

#: ECMAScript punctuators ordered longest-first so the lexer can greedily
#: match multi-character operators before their prefixes.
PUNCTUATORS = (
    ">>>=",
    "===", "!==", "**=", "<<=", ">>=", ">>>", "...",
    "=>", "==", "!=", "<=", ">=", "&&", "||", "??", "?.",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<", ">>", "**",
    "{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "%",
    "&", "|", "^", "!", "~", "?", ":", "=", ".", "/",
)
