"""Sample normalization: HTML script extraction and token abstraction.

Kizzle samples are complete HTML documents including inline script elements
(paper, Section III "Main driver").  Before clustering, each sample is reduced
to an *abstract token string*: the sequence of token class names, which strips
out attacker-randomized identifier names and string contents while preserving
structure (Figure 8).
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from repro.jstoken.lexer import tokenize
from repro.jstoken.tokens import Token, TokenClass

_SCRIPT_RE = re.compile(
    r"<script\b[^>]*>(.*?)</script\s*>",
    re.IGNORECASE | re.DOTALL,
)
_SRC_ATTR_RE = re.compile(r"\bsrc\s*=", re.IGNORECASE)
_TAG_OPEN_RE = re.compile(r"<script\b[^>]*>", re.IGNORECASE)


def strip_html(document: str) -> str:
    """Extract and concatenate all inline script bodies of an HTML document.

    If the document does not look like HTML (no ``<script>`` element), it is
    returned unchanged and treated as raw JavaScript.  External scripts
    (``<script src=...>``) contribute no body and are skipped.
    """
    if "<script" not in document.lower():
        return document
    bodies: List[str] = []
    for match in _SCRIPT_RE.finditer(document):
        opening_tag = _TAG_OPEN_RE.search(document, match.start(), match.end())
        if opening_tag is not None and _SRC_ATTR_RE.search(opening_tag.group(0)):
            # External script reference with an (unexpected) body; skip the
            # body only if it is empty, otherwise keep the inline content.
            if not match.group(1).strip():
                continue
        bodies.append(match.group(1))
    if not bodies:
        return ""
    return "\n".join(bodies)


def tokenize_sample(document: str) -> List[Token]:
    """Tokenize a sample (HTML document or raw JS) into significant tokens."""
    source = strip_html(document)
    return [token for token in tokenize(source) if token.is_significant()]


def abstract_classes(tokens: Sequence[Token],
                     collapse: bool = True) -> Tuple[str, ...]:
    """Map a token sequence to its abstract class-name sequence.

    Parameters
    ----------
    tokens:
        The concrete token sequence.
    collapse:
        When true (the default, matching the paper's Figure 8 classes),
        ``Number``, ``Regex`` and ``Template`` tokens are folded into the
        coarser classes the paper uses: numbers behave like strings for the
        purposes of structural comparison, templates like strings, and regex
        literals like strings.
    """
    names: List[str] = []
    for token in tokens:
        cls = token.cls
        if collapse and cls in (TokenClass.NUMBER, TokenClass.REGEX,
                                TokenClass.TEMPLATE):
            cls = TokenClass.STRING
        names.append(cls.value)
    return tuple(names)


def abstract_tokens_of(tokens: Sequence[Token],
                       collapse: bool = True) -> Tuple[str, ...]:
    """The abstract token string of an already-tokenized sample.

    Factored out of :func:`abstract_token_string` so callers holding a token
    list (e.g. the incremental pipeline's per-content cache) can derive the
    abstract string without re-lexing.
    """
    parts: List[str] = []
    for token in tokens:
        if token.cls in (TokenClass.KEYWORD, TokenClass.PUNCTUATION):
            parts.append(token.value)
        else:
            cls = token.cls
            if collapse and cls in (TokenClass.NUMBER, TokenClass.REGEX,
                                    TokenClass.TEMPLATE):
                cls = TokenClass.STRING
            parts.append(cls.value)
    return tuple(parts)


def abstract_token_string(document: str, collapse: bool = True) -> Tuple[str, ...]:
    """Tokenize a sample and return the abstract token string.

    Keywords and punctuation keep their concrete spelling (``var`` and ``(``
    carry structural information and cannot be attacker-randomized without
    changing semantics); identifiers, strings and numbers are abstracted to
    their class names.  This is the representation clustered by Kizzle.
    """
    return abstract_tokens_of(tokenize_sample(document), collapse=collapse)


def concrete_values(document: str) -> Tuple[str, ...]:
    """Return the concrete source text of each significant token of a sample.

    Used by the signature generator, which needs the concrete strings at each
    token offset to decide between emitting a literal and a generalizing
    regular expression (paper, Section III-C and Figure 9).
    """
    return tuple(token.value for token in tokenize_sample(document))
