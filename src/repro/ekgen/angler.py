"""The Angler exploit kit model.

The paper uses Angler to illustrate the window of vulnerability (Figure 6 and
Example 1): until August 13, 2014 the kit emitted an HTML snippet carrying a
Java exploit with a unique string that a commercial AV signature matched.  On
August 13 that string was folded into the obfuscated body (only written to
the document when a vulnerable Java version is present), which broke the AV
signature for roughly a week.

The simulated Angler packs its core as a hex string decoded with
``String.fromCharCode(parseInt(..., 16))`` and triggered through
``window["ev" + "al"]``.  The ``exploit_string_in_html`` packer parameter
controls whether the Java-exploit snippet (with the unique marker string) is
emitted as plain HTML or appended to the packed body.
"""

from __future__ import annotations

import random

from repro.ekgen.base import ExploitKit, KitVersion
from repro.ekgen.identifiers import pick_variable_map

#: The unique string the commercial AV signature keys on (Example 1).
ANGLER_JAVA_MARKER = "aqpOZjBhSVFudVZrQmxhZGU"


def java_exploit_html(marker: str = ANGLER_JAVA_MARKER) -> str:
    """The Java-exploit HTML snippet Angler serves alongside its script."""
    return (
        '<div style="display:none">'
        '<applet archive="grab.jar" code="wbxahdyf.QPAthy">'
        f'<param name="exec" value="{marker}"/>'
        '<param name="prime" value="112-97-121-108-111-97-100"/>'
        "</applet></div>"
    )


def hex_encode(text: str) -> str:
    """Hex-encode text the way the Angler packer embeds its payload."""
    return "".join(f"{ord(char) % 256:02x}" for char in text)


def hex_decode(encoded: str) -> str:
    """Inverse of :func:`hex_encode` (used by the Angler unpacker)."""
    if len(encoded) % 2 != 0:
        raise ValueError("Angler hex payload must have even length")
    return "".join(chr(int(encoded[index:index + 2], 16))
                   for index in range(0, len(encoded), 2))


class AnglerKit(ExploitKit):
    """Simulated Angler exploit kit."""

    name = "angler"

    def unpacked_payload(self, core: str, version: KitVersion) -> str:
        """After August 13 the packed body carries the Java-exploit snippet,
        so that is also what unpacking recovers."""
        if bool(version.packer_params.get("exploit_string_in_html", True)):
            return core
        return self._body_with_snippet(core)

    @staticmethod
    def _body_with_snippet(core: str) -> str:
        snippet = java_exploit_html().replace('"', '\\"')
        return (core
                + "\nif (checkJavaVersion(\"1.7.0.17\", \"CVE-2013-0422\")) {"
                + f'\n  document.write("{snippet}");'
                + "\n}")

    def pack(self, core: str, version: KitVersion, rng: random.Random) -> str:
        params = version.packer_params
        in_html = bool(params.get("exploit_string_in_html", True))
        marker = str(params.get("marker", "XKeyAB12"))
        chunk_size = int(params.get("chunk_size", 24))

        body = core
        if not in_html:
            # The exploit snippet (with its unique string) now lives inside
            # the packed body and is only written out after a Java check.
            body = self._body_with_snippet(core)

        encoded = hex_encode(body)
        chunks = [encoded[i:i + chunk_size]
                  for i in range(0, len(encoded), chunk_size)]
        names = pick_variable_map(
            rng, ["packed", "output", "index", "piece", "marker"])
        packed_literal = " +\n  ".join(f'"{chunk}"' for chunk in chunks)

        script = f"""
var {names['marker']} = "{marker}";
var {names['packed']} = {packed_literal};
var {names['output']} = "";
for (var {names['index']} = 0; {names['index']} < {names['packed']}.length; {names['index']} += 2) {{
  var {names['piece']} = {names['packed']}.substr({names['index']}, 2);
  {names['output']} += String.fromCharCode(parseInt({names['piece']}, 16));
}}
window["ev" + "al"]({names['output']});
"""
        html_snippet = java_exploit_html() if in_html else ""
        title = f"redirecting {rng.randrange(10**6)}"
        return (f"<html><head><title>{title}</title></head><body>\n"
                f"{html_snippet}\n"
                f"<script type=\"text/javascript\">{script}</script>\n"
                f"</body></html>")
