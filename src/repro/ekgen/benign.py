"""Benign grayware generator.

The overwhelming majority of the paper's grayware stream is benign: ad and
analytics snippets, plugin-probing libraries, social widgets, CDN loaders.
Kizzle must cluster these into benign clusters and must not label them as a
kit.  Two properties matter for the reproduction:

* benign families form tight clusters of their own (the paper observes that
  "much of what we observe is benign code that falls into a relatively small
  number of frequently observed clusters");
* one family — a PluginDetect-like plugin prober — legitimately shares a lot
  of code with kit fingerprinting logic and is the source of the paper's
  representative false positive (Figure 15, 79% overlap with Nuclear).
"""

from __future__ import annotations

import datetime
import random
from typing import Callable, Dict, List, Optional

from repro.ekgen.base import GeneratedSample
from repro.ekgen.cves import PLUGIN_DETECTION
from repro.ekgen.identifiers import random_identifier, random_junk_string


class BenignGenerator:
    """Generates benign samples drawn from a fixed set of families.

    Parameters
    ----------
    families:
        Optional subset of family names to generate; defaults to all.
    """

    def __init__(self, families: Optional[List[str]] = None) -> None:
        self._builders: Dict[str, Callable[[random.Random], str]] = {
            "plugindetect": self._plugindetect,
            "ad_rotator": self._ad_rotator,
            "analytics": self._analytics,
            "social_widget": self._social_widget,
            "cdn_loader": self._cdn_loader,
            "form_validator": self._form_validator,
            "slideshow": self._slideshow,
            "site_custom": self._site_custom,
        }
        if families is not None:
            unknown = set(families) - set(self._builders)
            if unknown:
                raise ValueError(f"unknown benign families: {sorted(unknown)}")
            self._builders = {name: self._builders[name] for name in families}

    # ------------------------------------------------------------------
    def family_names(self) -> List[str]:
        return sorted(self._builders)

    def generate(self, date: datetime.date, rng: random.Random,
                 family: Optional[str] = None,
                 sample_id: Optional[str] = None) -> GeneratedSample:
        """Generate one benign sample.

        Families are weighted so the common ad/analytics families dominate
        (as in a real stream) while the PluginDetect-like prober still shows
        up every day.
        """
        if family is None:
            family = self._pick_family(rng)
        builder = self._builders[family]
        script = builder(rng)
        content = (f"<html><head><title>page {rng.randrange(10**6)}</title>"
                   f"</head><body>\n<script type=\"text/javascript\">"
                   f"{script}</script>\n</body></html>")
        identifier = sample_id or (
            f"benign-{family}-{date.isoformat()}-{rng.randrange(10**9):09d}")
        return GeneratedSample(sample_id=identifier, content=content,
                               kit=None, date=date, unpacked=script,
                               benign_family=family)

    def _pick_family(self, rng: random.Random) -> str:
        weighted = {
            "ad_rotator": 25, "analytics": 25, "cdn_loader": 15,
            "social_widget": 10, "form_validator": 8, "slideshow": 7,
            "plugindetect": 5, "site_custom": 5,
        }
        available = [(name, weighted.get(name, 5)) for name in self._builders]
        total = sum(weight for _name, weight in available)
        pick = rng.uniform(0, total)
        running = 0.0
        for name, weight in available:
            running += weight
            if pick <= running:
                return name
        return available[-1][0]

    # ------------------------------------------------------------------
    # families
    # ------------------------------------------------------------------
    @staticmethod
    def _plugindetect(rng: random.Random) -> str:
        """A PluginDetect-like plugin prober.

        It reuses the same plugin-detection block the kit cores embed plus a
        chunk of generic type-checking helpers, mirroring the paper's Figure
        15 false positive: a benign library with ~79% winnow overlap with the
        Nuclear core.
        """
        site = random_identifier(rng, 5, 9)
        return PLUGIN_DETECTION + f"""
var {site}Detect = {{
  rgx: {{ any: /object|embed/i, num: /number/i, arr: /array/i, str: /string/i }},
  toString: ({{}}).constructor.prototype.toString,
  hasOwn: function (obj, prop) {{
    return Object.prototype.hasOwnProperty.call(obj, prop);
  }},
  isPlainObject: function (c) {{
    var a = this, b;
    if (!c || a.rgx.any.test(a.toString.call(c)) || c.window == c ||
        a.rgx.num.test(a.toString.call(c.nodeType))) {{ return 0; }}
    try {{
      if (!a.hasOwn(c, "constructor") &&
          !a.hasOwn(c.constructor.prototype, "isPrototypeOf")) {{ return 0; }}
    }} catch (b) {{ return 0; }}
    return 1;
  }},
  isDefined: function (b) {{ return typeof b != "undefined"; }},
  isArray: function (b) {{ return this.rgx.arr.test(this.toString.call(b)); }},
  isString: function (b) {{ return this.rgx.str.test(this.toString.call(b)); }},
  isNum: function (b) {{ return this.rgx.num.test(this.toString.call(b)); }},
  getVersion: function (name) {{
    detectPlugins();
    if (name === "flash") {{ return pluginReport.flash; }}
    if (name === "java") {{ return pluginReport.java; }}
    if (name === "silverlight") {{ return pluginReport.silverlight; }}
    return null;
  }}
}};
{site}Detect.getVersion("flash");
"""

    @staticmethod
    def _ad_rotator(rng: random.Random) -> str:
        zone = rng.randrange(10**6)
        host = random_junk_string(rng, rng.randint(6, 10),
                                  "abcdefghijklmnopqrstuvwxyz")
        slot = random_identifier(rng, 5, 8)
        return f"""
(function () {{
  var adZone = {zone};
  var adHost = "//ads.{host}.com/serve";
  var {slot} = document.createElement("iframe");
  {slot}.width = 728;
  {slot}.height = 90;
  {slot}.frameBorder = 0;
  {slot}.scrolling = "no";
  {slot}.src = adHost + "?zone=" + adZone + "&cb=" + Math.floor(Math.random() * 1000000);
  var target = document.getElementById("ad-slot-" + adZone) || document.body;
  target.appendChild({slot});
  var pixel = new Image();
  pixel.src = adHost + "/imp?zone=" + adZone + "&r=" + document.referrer;
}})();
"""

    @staticmethod
    def _analytics(rng: random.Random) -> str:
        account = f"UA-{rng.randrange(10**7)}-{rng.randrange(1, 9)}"
        return f"""
var _gaq = _gaq || [];
_gaq.push(["_setAccount", "{account}"]);
_gaq.push(["_setDomainName", "auto"]);
_gaq.push(["_trackPageview"]);
(function () {{
  var ga = document.createElement("script");
  ga.type = "text/javascript";
  ga.async = true;
  ga.src = ("https:" == document.location.protocol ? "https://ssl" : "http://www")
    + ".google-analytics.com/ga.js";
  var s = document.getElementsByTagName("script")[0];
  s.parentNode.insertBefore(ga, s);
}})();
"""

    @staticmethod
    def _social_widget(rng: random.Random) -> str:
        app_id = rng.randrange(10**12)
        return f"""
(function (d, s, id) {{
  var js, fjs = d.getElementsByTagName(s)[0];
  if (d.getElementById(id)) {{ return; }}
  js = d.createElement(s);
  js.id = id;
  js.src = "//connect.social.example/sdk.js#xfbml=1&appId={app_id}&version=v2.0";
  fjs.parentNode.insertBefore(js, fjs);
}}(document, "script", "social-jssdk"));
function shareCurrentPage(network) {{
  var url = encodeURIComponent(window.location.href);
  var title = encodeURIComponent(document.title);
  window.open("//share.social.example/" + network + "?u=" + url + "&t=" + title,
              "share", "width=600,height=400");
  return false;
}}
"""

    @staticmethod
    def _cdn_loader(rng: random.Random) -> str:
        version = f"1.{rng.randrange(7, 12)}.{rng.randrange(0, 5)}"
        fallback = random_identifier(rng, 5, 8)
        return f"""
(function () {{
  function loadScript(src, onError) {{
    var tag = document.createElement("script");
    tag.src = src;
    tag.async = false;
    tag.onerror = onError;
    document.getElementsByTagName("head")[0].appendChild(tag);
  }}
  loadScript("//cdn.libs.example/jquery/{version}/jquery.min.js", function {fallback}() {{
    loadScript("/assets/vendor/jquery-{version}.min.js", function () {{
      window.console && console.warn("jquery unavailable");
    }});
  }});
  loadScript("//cdn.libs.example/underscore/1.6.0/underscore-min.js", null);
}})();
"""

    @staticmethod
    def _form_validator(rng: random.Random) -> str:
        form = random_identifier(rng, 5, 9)
        return f"""
function validate_{form}(formElement) {{
  var errors = [];
  var email = formElement.elements["email"];
  var name = formElement.elements["name"];
  if (!name.value || name.value.length < 2) {{
    errors.push("Please enter your name.");
  }}
  if (!email.value || !/^[^@\\s]+@[^@\\s]+\\.[a-zA-Z]{{2,}}$/.test(email.value)) {{
    errors.push("Please enter a valid email address.");
  }}
  var box = document.getElementById("{form}-errors");
  box.innerHTML = "";
  for (var i = 0; i < errors.length; i++) {{
    var row = document.createElement("p");
    row.appendChild(document.createTextNode(errors[i]));
    box.appendChild(row);
  }}
  return errors.length === 0;
}}
"""

    @staticmethod
    def _slideshow(rng: random.Random) -> str:
        interval = rng.choice([3000, 4000, 5000, 6000])
        gallery = random_identifier(rng, 5, 9)
        return f"""
var {gallery}Index = 0;
function {gallery}Advance() {{
  var slides = document.querySelectorAll(".slide");
  if (!slides.length) {{ return; }}
  for (var i = 0; i < slides.length; i++) {{
    slides[i].style.display = "none";
  }}
  {gallery}Index = ({gallery}Index + 1) % slides.length;
  slides[{gallery}Index].style.display = "block";
}}
setInterval({gallery}Advance, {interval});
document.addEventListener("DOMContentLoaded", {gallery}Advance);
"""

    @staticmethod
    def _site_custom(rng: random.Random) -> str:
        """Low-volume, high-variance site-specific glue code.

        These samples are intentionally diverse so a few of them end up as
        DBSCAN noise, like the long tail of one-off scripts in a real stream.
        """
        pieces = []
        for _ in range(rng.randint(2, 5)):
            func = random_identifier(rng, 6, 10)
            element = random_identifier(rng, 4, 8)
            attribute = rng.choice(["innerHTML", "textContent", "className",
                                    "title", "id"])
            literal = random_junk_string(rng, rng.randint(6, 24))
            pieces.append(f"""
function {func}() {{
  var node = document.getElementById("{element}");
  if (node) {{ node.{attribute} = "{literal}"; }}
  return node;
}}
{func}();
""")
        return "\n".join(pieces)
