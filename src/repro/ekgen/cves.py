"""CVE inventory and exploit-code snippets shared by the kit models.

Figure 2 of the paper lists the CVEs each kit carried as of September 2014.
The snippets below are *simulated* exploit payloads: they are benign
JavaScript that mimics the structure of real exploit code (plugin version
checks, object spraying loops, embedding of plugin content) without any
actual exploitation logic.  What matters for the reproduction is that each
CVE maps to a *stable, characteristic* block of code so that:

* the unpacked core of a kit changes only when a CVE is appended (Figure 5);
* two kits carrying the same CVE genuinely share code (cross-kit borrowing),
  which the winnowing-based labeling must tolerate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: CVE inventory per kit, transcribed from Figure 2 (September 2014).
#: Keys are kit names, values are (component, cve) pairs.
CVE_INVENTORY: Dict[str, List[Tuple[str, str]]] = {
    "sweetorange": [
        ("flash", "CVE-2014-0515"),
        ("java", "CVE-UNKNOWN-JAVA"),
        ("ie", "CVE-2013-2551"),
        ("ie", "CVE-2014-0322"),
    ],
    "angler": [
        ("flash", "CVE-2014-0507"),
        ("flash", "CVE-2014-0515"),
        ("silverlight", "CVE-2013-0074"),
        ("java", "CVE-2013-0422"),
        ("ie", "CVE-2013-2551"),
    ],
    "rig": [
        ("flash", "CVE-2014-0497"),
        ("silverlight", "CVE-2013-0074"),
        ("java", "CVE-UNKNOWN-JAVA"),
        ("ie", "CVE-2013-2551"),
    ],
    "nuclear": [
        ("flash", "CVE-2013-5331"),
        ("flash", "CVE-2014-0497"),
        ("java", "CVE-2013-2423"),
        ("java", "CVE-2013-2460"),
        ("reader", "CVE-2010-0188"),
        ("ie", "CVE-2013-2551"),
    ],
}

#: Kits that perform an anti-AV file check (Figure 2, "AV check" column).
AV_CHECK_KITS = frozenset({"angler", "rig", "nuclear"})


def cve_list_for_kit(kit: str) -> List[str]:
    """The CVE identifiers a kit carries (Figure 2)."""
    if kit not in CVE_INVENTORY:
        raise KeyError(f"unknown kit: {kit!r}")
    return [cve for _component, cve in CVE_INVENTORY[kit]]


def components_for_kit(kit: str) -> List[str]:
    """The plugin/browser components a kit targets."""
    if kit not in CVE_INVENTORY:
        raise KeyError(f"unknown kit: {kit!r}")
    seen: List[str] = []
    for component, _cve in CVE_INVENTORY[kit]:
        if component not in seen:
            seen.append(component)
    return seen


def _slug(cve: str) -> str:
    return cve.replace("CVE-", "cve_").replace("-", "_").lower()


def exploit_snippet(cve: str, component: str) -> str:
    """Simulated exploit payload code for one CVE.

    The code is deterministic per CVE so that kit cores are stable over time
    and identical across kits sharing the exploit.
    """
    slug = _slug(cve)
    if component == "flash":
        return _flash_exploit(cve, slug)
    if component == "silverlight":
        return _silverlight_exploit(cve, slug)
    if component == "java":
        return _java_exploit(cve, slug)
    if component == "reader":
        return _reader_exploit(cve, slug)
    if component == "ie":
        return _ie_exploit(cve, slug)
    raise ValueError(f"unknown component: {component!r}")


def _flash_exploit(cve: str, slug: str) -> str:
    return f"""
function run_{slug}(version) {{
  // simulated flash exploit stub for {cve}
  if (!checkFlashVersion(version, "{cve}")) {{ return false; }}
  var holder_{slug} = document.createElement("div");
  var swf_{slug} = document.createElement("object");
  swf_{slug}.setAttribute("type", "application/x-shockwave-flash");
  swf_{slug}.setAttribute("data", buildPayloadUrl("swf", "{cve}"));
  swf_{slug}.setAttribute("width", "10");
  swf_{slug}.setAttribute("height", "10");
  var param_{slug} = document.createElement("param");
  param_{slug}.setAttribute("name", "FlashVars");
  param_{slug}.setAttribute("value", "exec=" + encodeSession("{cve}"));
  swf_{slug}.appendChild(param_{slug});
  holder_{slug}.appendChild(swf_{slug});
  document.body.appendChild(holder_{slug});
  return true;
}}
"""


def _silverlight_exploit(cve: str, slug: str) -> str:
    return f"""
function run_{slug}(version) {{
  // simulated silverlight exploit stub for {cve}
  if (!checkSilverlightVersion(version, "{cve}")) {{ return false; }}
  var xapHost_{slug} = document.createElement("object");
  xapHost_{slug}.setAttribute("data", "data:application/x-silverlight-2,");
  xapHost_{slug}.setAttribute("type", "application/x-silverlight-2");
  var src_{slug} = document.createElement("param");
  src_{slug}.setAttribute("name", "source");
  src_{slug}.setAttribute("value", buildPayloadUrl("xap", "{cve}"));
  var init_{slug} = document.createElement("param");
  init_{slug}.setAttribute("name", "initParams");
  init_{slug}.setAttribute("value", "shell32=" + encodeSession("{cve}"));
  xapHost_{slug}.appendChild(src_{slug});
  xapHost_{slug}.appendChild(init_{slug});
  document.body.appendChild(xapHost_{slug});
  return true;
}}
"""


def _java_exploit(cve: str, slug: str) -> str:
    return f"""
function run_{slug}(version) {{
  // simulated java exploit stub for {cve}
  if (!checkJavaVersion(version, "{cve}")) {{ return false; }}
  var applet_{slug} = document.createElement("applet");
  applet_{slug}.setAttribute("archive", buildPayloadUrl("jar", "{cve}"));
  applet_{slug}.setAttribute("code", "Inst.class");
  var key_{slug} = document.createElement("param");
  key_{slug}.setAttribute("name", "rhost");
  key_{slug}.setAttribute("value", encodeSession("{cve}"));
  applet_{slug}.appendChild(key_{slug});
  document.body.appendChild(applet_{slug});
  return true;
}}
"""


def _reader_exploit(cve: str, slug: str) -> str:
    return f"""
function run_{slug}(version) {{
  // simulated adobe reader exploit stub for {cve}
  if (!checkReaderVersion(version, "{cve}")) {{ return false; }}
  var frame_{slug} = document.createElement("iframe");
  frame_{slug}.setAttribute("width", "1");
  frame_{slug}.setAttribute("height", "1");
  frame_{slug}.setAttribute("src", buildPayloadUrl("pdf", "{cve}"));
  document.body.appendChild(frame_{slug});
  return true;
}}
"""


def _ie_exploit(cve: str, slug: str) -> str:
    return f"""
function run_{slug}(version) {{
  // simulated internet explorer memory-corruption stub for {cve}
  if (!checkBrowserBuild(version, "{cve}")) {{ return false; }}
  var spray_{slug} = new Array();
  var block_{slug} = "";
  for (var pad_{slug} = 0; pad_{slug} < 64; pad_{slug}++) {{
    block_{slug} += "%u0c0c%u0c0c";
  }}
  for (var slot_{slug} = 0; slot_{slug} < 256; slot_{slug}++) {{
    spray_{slug}[slot_{slug}] = block_{slug} + encodeSession("{cve}");
  }}
  var anchor_{slug} = document.createElement("vml:rect");
  anchor_{slug}.setAttribute("style", "behavior:url(#default#VML)");
  document.body.appendChild(anchor_{slug});
  return true;
}}
"""


#: Helper runtime shared by every kit's unpacked core.  Stable text so the
#: cross-kit winnow overlap reflects the paper's observation that kits share
#: large parts of their fingerprinting plumbing.
SHARED_RUNTIME = """
function checkFlashVersion(version, cve) {
  return pluginReport.flash && compareVersions(pluginReport.flash, version) <= 0;
}
function checkSilverlightVersion(version, cve) {
  return pluginReport.silverlight && compareVersions(pluginReport.silverlight, version) <= 0;
}
function checkJavaVersion(version, cve) {
  return pluginReport.java && compareVersions(pluginReport.java, version) <= 0;
}
function checkReaderVersion(version, cve) {
  return pluginReport.reader && compareVersions(pluginReport.reader, version) <= 0;
}
function checkBrowserBuild(version, cve) {
  return pluginReport.msie && compareVersions(pluginReport.msie, version) <= 0;
}
function compareVersions(installed, required) {
  var a = installed.split(".");
  var b = required.split(".");
  for (var i = 0; i < Math.max(a.length, b.length); i++) {
    var left = parseInt(a[i] || "0", 10);
    var right = parseInt(b[i] || "0", 10);
    if (left !== right) { return left < right ? -1 : 1; }
  }
  return 0;
}
function encodeSession(cve) {
  var seed = cve.length * 2654435761 % 4294967296;
  return seed.toString(16) + "-" + cve.replace(/[^0-9]/g, "");
}
function buildPayloadUrl(kind, cve) {
  return gateUrl + "?f=" + kind + "&k=" + encodeSession(cve);
}
"""

#: Plugin fingerprinting block.  Deliberately close to the structure of the
#: PluginDetect library so the benign PluginDetect-like sample of Figure 15
#: shares a high winnow overlap with kit cores.
PLUGIN_DETECTION = """
var pluginReport = {
  flash: null, silverlight: null, java: null, reader: null, msie: null
};
function detectPlugins() {
  var nav = window.navigator;
  pluginReport.msie = detectTrident(nav.userAgent);
  if (nav.plugins && nav.plugins.length) {
    for (var i = 0; i < nav.plugins.length; i++) {
      var plugin = nav.plugins[i];
      var name = plugin.name.toLowerCase();
      if (name.indexOf("shockwave flash") !== -1) {
        pluginReport.flash = extractVersion(plugin.description);
      } else if (name.indexOf("silverlight") !== -1) {
        pluginReport.silverlight = extractVersion(plugin.description);
      } else if (name.indexOf("java") !== -1) {
        pluginReport.java = extractVersion(plugin.description);
      } else if (name.indexOf("adobe acrobat") !== -1 || name.indexOf("reader") !== -1) {
        pluginReport.reader = extractVersion(plugin.description);
      }
    }
  } else {
    pluginReport.flash = probeActiveX("ShockwaveFlash.ShockwaveFlash");
    pluginReport.silverlight = probeActiveX("AgControl.AgControl");
    pluginReport.java = probeActiveX("JavaWebStart.isInstalled");
    pluginReport.reader = probeActiveX("AcroPDF.PDF");
  }
  return pluginReport;
}
function detectTrident(userAgent) {
  var match = /MSIE ([0-9]+\\.[0-9]+)/.exec(userAgent);
  if (match) { return match[1]; }
  match = /Trident\\/.*rv:([0-9]+\\.[0-9]+)/.exec(userAgent);
  return match ? match[1] : null;
}
function extractVersion(description) {
  var match = /([0-9]+(?:[._][0-9]+)+)/.exec(description || "");
  return match ? match[1].replace(/_/g, ".") : null;
}
function probeActiveX(progId) {
  try {
    var control = new ActiveXObject(progId);
    if (control) {
      if (progId.indexOf("Flash") !== -1) {
        return extractVersion(control.GetVariable("$version"));
      }
      return "1.0";
    }
  } catch (e) { }
  return null;
}
"""

#: The anti-AV file probe that RIG used first and Nuclear copied verbatim in
#: August 2014 ("code borrowing", Section II-B).  The exactness of the copy
#: matters: the paper highlights that the *exact* code was reused.
AV_CHECK_CODE = """
function detectSecuritySuites() {
  var suites = [
    "res://C:\\\\Program%20Files\\\\Kaspersky%20Lab\\\\Kaspersky%20Anti-Virus\\\\klwtblc.dll",
    "res://C:\\\\Program%20Files\\\\Trend%20Micro\\\\Titanium\\\\TmopIEPlg.dll",
    "res://C:\\\\Program%20Files\\\\ESET\\\\ESET%20NOD32%20Antivirus\\\\eplgHooks.dll",
    "res://C:\\\\Program%20Files\\\\AVG\\\\AVG2014\\\\avgssie.dll"
  ];
  var detected = 0;
  for (var i = 0; i < suites.length; i++) {
    var probe = new Image();
    probe.onerror = function () { };
    probe.onload = function () { detected++; };
    probe.src = suites[i];
  }
  return detected;
}
"""
