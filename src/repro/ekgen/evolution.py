"""Kit evolution timeline (paper Section II-B and Figure 5).

Exploit kits change in three ways: the packer mutates frequently, exploits
are appended infrequently, and kits borrow code from each other.  The
:class:`EvolutionTimeline` records dated :class:`KitEvent` entries per kit and
folds them into the :class:`~repro.ekgen.base.KitVersion` in effect on any
given day.

:func:`default_timeline` transcribes the concrete history the paper documents
for June-August 2014, most importantly the Nuclear packer's eval-obfuscation
changes of Figure 5, the Angler change of August 13 that opened the AV window
of vulnerability (Figure 6), and RIG's frequent delimiter rotations.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ekgen.cves import CVE_INVENTORY

DATE = datetime.date


@dataclass(frozen=True)
class KitEvent:
    """One dated change to a kit.

    ``kind`` is one of:

    * ``"packer"`` -- superficial packer mutation; ``params`` are merged into
      the version's ``packer_params``.
    * ``"packer_semantic"`` -- a packer change that also alters its
      semantics (the 8/12 Nuclear event); treated like ``"packer"`` but
      flagged so experiments can distinguish it.
    * ``"payload_cve"`` -- a CVE append; ``params`` must contain
      ``component`` and ``cve``.
    * ``"av_check"`` -- the anti-AV probe is switched on (code borrowing).
    """

    date: DATE
    kind: str
    description: str = ""
    params: Dict[str, object] = field(default_factory=dict)


@dataclass
class _KitHistory:
    """Base configuration plus the ordered event list of one kit."""

    base_packer_params: Dict[str, object]
    base_cves: List[Tuple[str, str]]
    base_av_check: bool
    events: List[KitEvent] = field(default_factory=list)

    def sorted_events(self) -> List[KitEvent]:
        return sorted(self.events, key=lambda event: event.date)


class EvolutionTimeline:
    """Per-kit evolution histories with date-indexed lookup."""

    def __init__(self) -> None:
        self._histories: Dict[str, _KitHistory] = {}

    # ------------------------------------------------------------------
    def register_kit(self, kit: str, base_packer_params: Dict[str, object],
                     base_cves: Optional[List[Tuple[str, str]]] = None,
                     base_av_check: bool = False) -> None:
        """Register a kit with its initial configuration."""
        cves = list(base_cves if base_cves is not None else CVE_INVENTORY[kit])
        self._histories[kit] = _KitHistory(
            base_packer_params=dict(base_packer_params),
            base_cves=cves,
            base_av_check=base_av_check,
        )

    def add_event(self, kit: str, event: KitEvent) -> None:
        """Append an event to a kit's history."""
        if kit not in self._histories:
            raise KeyError(f"kit {kit!r} is not registered")
        self._histories[kit].events.append(event)

    def events_for(self, kit: str,
                   until: Optional[DATE] = None) -> List[KitEvent]:
        """All events of a kit, optionally restricted to ``date <= until``."""
        if kit not in self._histories:
            raise KeyError(f"kit {kit!r} is not registered")
        events = self._histories[kit].sorted_events()
        if until is None:
            return events
        return [event for event in events if event.date <= until]

    def known_kits(self) -> List[str]:
        return sorted(self._histories)

    # ------------------------------------------------------------------
    def version_for(self, kit: str, date: DATE) -> "KitVersion":
        """Fold the history into the configuration in effect on ``date``."""
        from repro.ekgen.base import KitVersion

        if kit not in self._histories:
            raise KeyError(f"kit {kit!r} is not registered")
        history = self._histories[kit]
        packer_params = dict(history.base_packer_params)
        cves = list(history.base_cves)
        av_check = history.base_av_check
        applied = 0
        for event in history.sorted_events():
            if event.date > date:
                break
            applied += 1
            if event.kind in ("packer", "packer_semantic"):
                packer_params.update(event.params)
            elif event.kind == "payload_cve":
                component = str(event.params["component"])
                cve = str(event.params["cve"])
                if (component, cve) not in cves:
                    cves.append((component, cve))
            elif event.kind == "av_check":
                av_check = True
            else:
                raise ValueError(f"unknown event kind: {event.kind!r}")
        return KitVersion(kit=kit, date=date, cves=cves, av_check=av_check,
                          packer_params=packer_params,
                          version_tag=f"v{applied}")

    def packer_change_dates(self, kit: str,
                            start: Optional[DATE] = None,
                            end: Optional[DATE] = None) -> List[DATE]:
        """Dates on which the kit's packer changed (used by the AV-lag model
        and the Figure 5 / Figure 12 experiments)."""
        dates = [event.date for event in self.events_for(kit)
                 if event.kind in ("packer", "packer_semantic")]
        if start is not None:
            dates = [d for d in dates if d >= start]
        if end is not None:
            dates = [d for d in dates if d <= end]
        return dates


# ----------------------------------------------------------------------
# The documented 2014 history.
# ----------------------------------------------------------------------
def default_timeline() -> EvolutionTimeline:
    """The June-August 2014 evolution history documented in the paper."""
    timeline = EvolutionTimeline()

    # ------------------------------------------------------------------
    # Nuclear: Figure 5.  Until late July the kit had no AV check and a
    # smaller CVE set; the packer's eval obfuscation changed 13 times.
    # ------------------------------------------------------------------
    nuclear_base_cves = [
        ("flash", "CVE-2013-5331"),
        ("flash", "CVE-2014-0497"),
        ("java", "CVE-2013-2423"),
        ("java", "CVE-2013-2460"),
        ("reader", "CVE-2010-0188"),
        ("ie", "CVE-2013-2551"),
    ]
    timeline.register_kit(
        "nuclear",
        base_packer_params={"eval_obfuscation": "ev#FFFFFFal",
                            "delimiter": "Zq2w",
                            "packer_generation": 1},
        base_cves=nuclear_base_cves,
        base_av_check=False,
    )
    nuclear_packer_changes = [
        (DATE(2014, 6, 14), "e#FFFFFFval", None),
        (DATE(2014, 6, 18), "eva#FFFFFFl", None),
        (DATE(2014, 6, 24), "ev+var", None),
        (DATE(2014, 6, 30), "e~v~#...~a~l", None),
        (DATE(2014, 7, 9), "e~#...~v~a~l", None),
        (DATE(2014, 7, 11), "e~##...~#v~#a~#l", None),
        (DATE(2014, 7, 17), "e3X@@#v", None),
        (DATE(2014, 7, 20), "e3fwrwg4#", None),
        (DATE(2014, 8, 17), "esa1asv", "sa1as"),
        (DATE(2014, 8, 19), "eher_vam#", "her_vam"),
        (DATE(2014, 8, 22), "efber443#", "fber443"),
        (DATE(2014, 8, 26), "eUluN#", "UluN"),
    ]
    for date, obfuscation, delimiter in nuclear_packer_changes:
        params: Dict[str, object] = {"eval_obfuscation": obfuscation}
        if delimiter is not None:
            params["delimiter"] = delimiter
        timeline.add_event("nuclear", KitEvent(
            date=date, kind="packer",
            description=f"eval obfuscation changed to {obfuscation}",
            params=params))
    timeline.add_event("nuclear", KitEvent(
        date=DATE(2014, 8, 12), kind="packer_semantic",
        description="semantic change to the packer",
        params={"packer_generation": 2, "eval_obfuscation": "e3fwrwg4#"}))
    timeline.add_event("nuclear", KitEvent(
        date=DATE(2014, 7, 29), kind="av_check",
        description="AV detection added to the plug-in detector "
                    "(code borrowed from RIG)"))
    timeline.add_event("nuclear", KitEvent(
        date=DATE(2014, 8, 27), kind="payload_cve",
        description="CVE-2013-0074 (Silverlight) appended",
        params={"component": "silverlight", "cve": "CVE-2013-0074"}))

    # ------------------------------------------------------------------
    # RIG: delimiter rotations roughly weekly; URLs churn per sample (handled
    # by the generator), AV check present since May.
    # ------------------------------------------------------------------
    timeline.register_kit(
        "rig",
        base_packer_params={"delimiter": "y6", "chunk_size": 8},
        base_av_check=True,
    )
    rig_delimiters = [
        (DATE(2014, 8, 1), "k3"),
        (DATE(2014, 8, 5), "Qz"),
        (DATE(2014, 8, 9), "w7p"),
        (DATE(2014, 8, 13), "Lx"),
        (DATE(2014, 8, 18), "vv4"),
        (DATE(2014, 8, 23), "J9"),
        (DATE(2014, 8, 28), "t2r"),
    ]
    for date, delimiter in rig_delimiters:
        timeline.add_event("rig", KitEvent(
            date=date, kind="packer",
            description=f"delimiter rotated to {delimiter}",
            params={"delimiter": delimiter}))

    # ------------------------------------------------------------------
    # Angler: the exploit-carrying HTML snippet moves into the obfuscated
    # body on August 13 (Figure 6); a couple of additional cosmetic packer
    # mutations during the month.
    # ------------------------------------------------------------------
    timeline.register_kit(
        "angler",
        base_packer_params={"exploit_string_in_html": True,
                            "encoding": "hex",
                            "chunk_size": 24,
                            "marker": "XKeyAB12"},
        base_av_check=True,
    )
    timeline.add_event("angler", KitEvent(
        date=DATE(2014, 8, 4), kind="packer",
        description="packed-body marker rotated",
        params={"marker": "Zq77Feed"}))
    timeline.add_event("angler", KitEvent(
        date=DATE(2014, 8, 13), kind="packer",
        description="Java-exploit HTML snippet moved into the obfuscated "
                    "body; payload chunking widened in the same update",
        params={"exploit_string_in_html": False, "marker": "Nn3Plate",
                "chunk_size": 32}))
    timeline.add_event("angler", KitEvent(
        date=DATE(2014, 8, 21), kind="packer",
        description="packed-body marker rotated",
        params={"marker": "Vt9Gloom"}))

    # ------------------------------------------------------------------
    # Sweet Orange: Math.sqrt-style integer obfuscation; the junk token and
    # obfuscation constants rotate occasionally.
    # ------------------------------------------------------------------
    timeline.register_kit(
        "sweetorange",
        base_packer_params={"junk_token": "WWWWWWWbEWsjdhfW",
                            "math_square": 196,
                            "chunk_size": 48},
        base_av_check=False,
    )
    timeline.add_event("sweetorange", KitEvent(
        date=DATE(2014, 8, 7), kind="packer",
        description="junk token rotated",
        params={"junk_token": "QQhhZKpwvvNNeRRt", "math_square": 225}))
    timeline.add_event("sweetorange", KitEvent(
        date=DATE(2014, 8, 19), kind="packer",
        description="junk token rotated",
        params={"junk_token": "MMxoPPlqaaTTbeWW", "math_square": 324}))

    return timeline
