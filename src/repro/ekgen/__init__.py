"""Synthetic exploit-kit and grayware corpus generator.

The paper evaluates Kizzle on a month of Internet Explorer telemetry
(80k-500k HTML/JS samples per day, August 2014) containing four exploit kits:
Nuclear, Sweet Orange, Angler and RIG.  That corpus is proprietary, so this
package generates a synthetic equivalent that reproduces every structural
property the paper's pipeline depends on:

* each kit is an "onion": a frequently-mutating packer around a slowly
  changing unpacked core (plugin/AV detection + CVE payloads + eval trigger);
* packers match the concrete idioms shown in the paper (Figure 4): RIG's
  char-code buffer with a randomized delimiter, Nuclear's encrypted payload
  with ``getter``/``bgColor``-replace eval obfuscation and string delimiters,
  Sweet Orange's ``Math.sqrt`` integer obfuscation (Figure 10b), Angler's
  hex-packed body with an exploit-carrying HTML snippet;
* kits evolve over a timeline (Figure 5): packer changes every few days,
  payload appends rarely, and kits borrow code (the RIG AV-check appears in
  Nuclear from August);
* the benign majority of the stream includes library code, ad/analytics
  snippets and a PluginDetect-like plugin prober that legitimately shares
  code with kit fingerprinting logic (the Figure 15 false positive).
"""

from repro.ekgen.base import ExploitKit, GeneratedSample, KitVersion
from repro.ekgen.cves import CVE_INVENTORY, exploit_snippet, cve_list_for_kit
from repro.ekgen.rig import RigKit
from repro.ekgen.nuclear import NuclearKit
from repro.ekgen.angler import AnglerKit
from repro.ekgen.sweetorange import SweetOrangeKit
from repro.ekgen.benign import BenignGenerator
from repro.ekgen.evolution import EvolutionTimeline, KitEvent, default_timeline
from repro.ekgen.telemetry import TelemetryGenerator, DailyBatch, StreamConfig
from repro.ekgen.evasion import JunkStatementInserter, SignatureOracleAttacker

__all__ = [
    "ExploitKit",
    "GeneratedSample",
    "KitVersion",
    "CVE_INVENTORY",
    "exploit_snippet",
    "cve_list_for_kit",
    "RigKit",
    "NuclearKit",
    "AnglerKit",
    "SweetOrangeKit",
    "BenignGenerator",
    "EvolutionTimeline",
    "KitEvent",
    "default_timeline",
    "TelemetryGenerator",
    "DailyBatch",
    "StreamConfig",
    "JunkStatementInserter",
    "SignatureOracleAttacker",
]
