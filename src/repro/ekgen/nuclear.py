"""The Nuclear exploit kit model.

Nuclear's packer (paper, Figure 4b) carries the payload as a digit string
encrypted with a per-response key, resolves ``eval`` and ``window`` through a
``getter`` indirection where the names are spelled with an infix that is
removed via ``replace`` with ``document.bgColor``, and spells method names
such as ``substr`` or ``concat`` with a delimiter interleaved between the
letters (``sUluNuUluNbUluNsUluNtUluNrUluN``).  The infix and the delimiter
change every few days (Figure 5); the key and the encrypted payload change in
every response.
"""

from __future__ import annotations

import random
from typing import List

from repro.ekgen.base import ExploitKit, KitVersion
from repro.ekgen.identifiers import pick_variable_map, random_crypt_key

#: Method names whose delimited spellings appear in the packed body; their
#: presence (with the rotating delimiter) is what Kizzle's Nuclear signature
#: keys on in Figure 10a.
_DELIMITED_WORDS = ["concat", "substr", "document", "Color", "length",
                    "replace"]


def encrypt_payload(core: str, key: str) -> str:
    """Encrypt the core into Nuclear's digit-string payload.

    Each character is shifted by a key-derived offset and emitted as three
    decimal digits.  The scheme is intentionally simple — what matters for
    the reproduction is that the digits (and the key) differ in every
    response, making pattern-matching on the payload itself useless, exactly
    as the paper observes.
    """
    shift = key_shift(key)
    return "".join(f"{(ord(char) + shift) % 256:03d}" for char in core)


def decrypt_payload(payload: str, key: str) -> str:
    """Inverse of :func:`encrypt_payload` (used by the Nuclear unpacker)."""
    if len(payload) % 3 != 0:
        raise ValueError("Nuclear payload length must be a multiple of 3")
    shift = key_shift(key)
    characters: List[str] = []
    for index in range(0, len(payload), 3):
        value = int(payload[index:index + 3])
        characters.append(chr((value - shift) % 256))
    return "".join(characters)


def key_shift(key: str) -> int:
    """The character shift derived from an encryption key."""
    return sum(ord(char) for char in key) % 200 + 1


def delimit_word(word: str, delimiter: str) -> str:
    """Spell a word with the delimiter between letters (``substr`` ->
    ``sUluNuUluNbUluNsUluNtUluNrUluN`` for delimiter ``UluN``)."""
    return delimiter.join(word)


class NuclearKit(ExploitKit):
    """Simulated Nuclear exploit kit."""

    name = "nuclear"

    def pack(self, core: str, version: KitVersion, rng: random.Random) -> str:
        params = version.packer_params
        obfuscation = str(params.get("eval_obfuscation", "ev#FFFFFFal"))
        delimiter = str(params.get("delimiter", "UluN"))
        generation = int(params.get("packer_generation", 1))

        key = random_crypt_key(rng)
        payload = encrypt_payload(core, key)
        names = pick_variable_map(
            rng, ["payload", "cryptkey", "getter", "thiscopy", "doc", "bgc",
                  "evl", "win", "chars", "index", "value", "shift", "output",
                  "suffix"])

        delimited = [delimit_word(word, delimiter) for word in _DELIMITED_WORDS]
        words_array = ",".join(f'"{spelled}"' for spelled in delimited)

        if obfuscation == "ev+var":
            eval_construction = (
                f'var {names["suffix"]} = "al";\n'
                f'var {names["evl"]} = {names["thiscopy"]}'
                f'[{names["getter"]}]("ev" + {names["suffix"]});')
            eval_reference = names["evl"]
        else:
            eval_construction = (
                f'var {names["evl"]} = {names["thiscopy"]}'
                f'[{names["getter"]}]("{obfuscation}");')
            eval_reference = (f'{names["evl"]}["replace"]({names["bgc"]}, "")')

        win_spelled = "win" + _infix_of(obfuscation) + "dow"

        decoder = self._decoder_source(names, generation)

        script = f"""
var {names['payload']} = "{payload}";
var {names['cryptkey']} = "{key}";
var {names['getter']} = "getter";
this["getter"] = function (a) {{ return a; }};
var {names['thiscopy']} = this;
var {names['doc']} = {names['thiscopy']}[{names['thiscopy']}[{names['getter']}]("{delimit_word('document', delimiter)}".split("{delimiter}").join(""))];
var {names['bgc']} = {names['doc']}[{names['thiscopy']}[{names['getter']}]("bg" + "{delimit_word('Color', delimiter)}".split("{delimiter}").join(""))];
var methodTable = [{words_array}];
{eval_construction}
var {names['win']} = {names['thiscopy']}[{names['getter']}]("{win_spelled}");
{decoder}
{names['thiscopy']}[{names['win']}["replace"]({names['bgc']}, "")][{eval_reference}]({names['output']});
"""
        title = f"statistics {rng.randrange(10**6)}"
        return (f"<html><head><title>{title}</title></head><body>\n"
                f"<script type=\"text/javascript\">{script}</script>\n"
                f"</body></html>")

    @staticmethod
    def _decoder_source(names: dict, generation: int) -> str:
        """The payload decryption loop.

        The August 12 "semantic change" (Figure 5) is modeled as generation 2:
        the decoder builds an array of characters and joins it instead of
        concatenating into a string, which changes the token structure of the
        packer without changing what it computes.
        """
        if generation >= 2:
            return f"""
var {names['shift']} = 0;
for (var {names['index']} = 0; {names['index']} < {names['cryptkey']}.length; {names['index']}++) {{
  {names['shift']} += {names['cryptkey']}.charCodeAt({names['index']});
}}
{names['shift']} = {names['shift']} % 200 + 1;
var {names['chars']} = new Array();
for (var {names['index']} = 0; {names['index']} < {names['payload']}.length; {names['index']} += 3) {{
  var {names['value']} = parseInt({names['payload']}.substr({names['index']}, 3), 10);
  {names['chars']}.push(String.fromCharCode(({names['value']} - {names['shift']} + 256) % 256));
}}
var {names['output']} = {names['chars']}.join("");
"""
        return f"""
var {names['shift']} = 0;
for (var {names['index']} = 0; {names['index']} < {names['cryptkey']}.length; {names['index']}++) {{
  {names['shift']} += {names['cryptkey']}.charCodeAt({names['index']});
}}
{names['shift']} = {names['shift']} % 200 + 1;
var {names['output']} = "";
for (var {names['index']} = 0; {names['index']} < {names['payload']}.length; {names['index']} += 3) {{
  var {names['value']} = parseInt({names['payload']}.substr({names['index']}, 3), 10);
  {names['output']} += String.fromCharCode(({names['value']} - {names['shift']} + 256) % 256);
}}
"""


def _infix_of(obfuscation: str) -> str:
    """Extract the infix used between ``win`` and ``dow``.

    For ``ev#FFFFFFal`` style strings the infix is the part between the
    letters of ``eval``; for exotic variants the whole middle section is
    reused, matching the paper's observation that the same obscuring infix
    shows up in both the ``eval`` and ``window`` spellings (Figure 4b).
    """
    if obfuscation == "ev+var":
        return ""
    stripped = obfuscation
    for prefix in ("eva", "ev", "e"):
        if stripped.startswith(prefix):
            stripped = stripped[len(prefix):]
            break
    for suffix in ("val", "al", "l"):
        if stripped.endswith(suffix):
            stripped = stripped[:-len(suffix)]
            break
    return stripped or "#333366"
