"""Attacker evasion models (paper, Section V "Deployment and avoidance").

The paper discusses how an attacker who knows Kizzle's algorithm could try to
defeat it.  This module implements the concrete evasions so the benchmarks
can measure their effect:

* :class:`JunkStatementInserter` — "insertion of a random number of
  superfluous JavaScript instructions between relevant operations to beat the
  structural signatures".  It splits a packed script at statement boundaries
  and injects no-op statements at random positions, which destroys any long
  consecutive common token window while preserving the script's behaviour.
* :class:`SignatureOracleAttacker` — the trial-and-error loop of Figure 1:
  the attacker keeps generating fresh packer variants of his kit and checks
  each against a (deployed, hence visible) scanner until one passes, counting
  how many attempts the evasion took.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.ekgen.identifiers import random_identifier, random_junk_string

_SCRIPT_SPLIT_RE = re.compile(r"(<script\b[^>]*>)(.*?)(</script\s*>)",
                              re.IGNORECASE | re.DOTALL)


@dataclass
class JunkStatementInserter:
    """Insert superfluous statements between the statements of a script.

    ``density`` is the probability of injecting a junk statement after any
    given statement boundary; ``max_junk_per_site`` bounds how many are
    injected at one boundary.
    """

    density: float = 0.4
    max_junk_per_site: int = 2
    seed: int = 0

    def junk_statement(self, rng: random.Random) -> str:
        """One harmless statement that does not disturb the packer state.

        The statements are deliberately diverse in token structure (that is
        the attacker's goal: no two served variants should share long token
        runs across the injected junk).
        """
        name = random_identifier(rng, 5, 9)
        other = random_identifier(rng, 4, 7)
        choice = rng.randrange(8)
        if choice == 0:
            return f'var {name} = {rng.randrange(1, 10**6)};'
        if choice == 1:
            return f'var {name} = "{random_junk_string(rng, rng.randint(4, 16))}";'
        if choice == 2:
            return f'{name} = typeof window != "undefined";'
        if choice == 3:
            return f'if (false) {{ {name} = null; }}'
        if choice == 4:
            return (f'var {name} = [{rng.randrange(9)}, {rng.randrange(9)},'
                    f' {rng.randrange(9)}];')
        if choice == 5:
            return f'function {name}() {{ return {rng.randrange(100)}; }}'
        if choice == 6:
            return (f'var {name} = {rng.randrange(50)} '
                    f'{rng.choice(["+", "*", "-"])} {rng.randrange(50)};')
        return (f'var {name} = {{ {other}: '
                f'"{random_junk_string(rng, rng.randint(3, 9))}" }};')

    def rewrite_script(self, script: str, rng: random.Random) -> str:
        """Inject junk statements into one script body.

        Junk is only inserted at *top-level* statement boundaries (a ``;``
        outside every bracket and string literal), which is what a kit author
        automating the evasion would do: it guarantees the packer still
        decodes and runs, while still breaking up any long token window that
        spans multiple statements.
        """
        insertion_points = self._statement_boundaries(script)
        if not insertion_points:
            return script
        pieces: List[str] = []
        previous = 0
        for boundary in insertion_points:
            pieces.append(script[previous:boundary])
            previous = boundary
            if rng.random() < self.density:
                for _ in range(rng.randint(1, self.max_junk_per_site)):
                    pieces.append("\n" + self.junk_statement(rng) + "\n")
        pieces.append(script[previous:])
        return "".join(pieces)

    @staticmethod
    def _statement_boundaries(script: str) -> List[int]:
        """Character offsets just after each top-level ``;``."""
        boundaries: List[int] = []
        depth = 0
        in_string: Optional[str] = None
        escaped = False
        for index, char in enumerate(script):
            if in_string is not None:
                if escaped:
                    escaped = False
                elif char == "\\":
                    escaped = True
                elif char == in_string:
                    in_string = None
                continue
            if char in "'\"`":
                in_string = char
            elif char in "([{":
                depth += 1
            elif char in ")]}":
                depth = max(0, depth - 1)
            elif char == ";" and depth == 0:
                boundaries.append(index + 1)
        return boundaries

    def rewrite(self, content: str, seed: Optional[int] = None) -> str:
        """Inject junk into every inline script of an HTML sample (or into
        the whole text when the sample is raw JavaScript)."""
        rng = random.Random(self.seed if seed is None else seed)
        if "<script" not in content.lower():
            return self.rewrite_script(content, rng)

        def replace(match: re.Match) -> str:
            opening, body, closing = match.group(1), match.group(2), match.group(3)
            return opening + self.rewrite_script(body, rng) + closing

        return _SCRIPT_SPLIT_RE.sub(replace, content)


@dataclass
class SignatureOracleAttacker:
    """The attacker's trial-and-error loop against a visible scanner.

    ``generate_variant`` produces a fresh packed sample each attempt (e.g. a
    kit's ``generate`` with a new RNG); ``is_detected`` is the deployed
    scanner the attacker can query freely.  ``evade`` keeps trying mutations
    until one passes or the attempt budget is exhausted, and reports the
    number of attempts — the "work factor" the defender wants to maximize.
    """

    generate_variant: Callable[[int], str]
    is_detected: Callable[[str], bool]
    mutator: Optional[JunkStatementInserter] = None
    max_attempts: int = 50
    attempts_log: List[bool] = field(default_factory=list)

    def evade(self) -> Tuple[Optional[str], int]:
        """Return ``(undetected_sample, attempts)``; the sample is ``None``
        when the budget runs out without finding an evasion."""
        self.attempts_log = []
        for attempt in range(1, self.max_attempts + 1):
            candidate = self.generate_variant(attempt)
            if self.mutator is not None:
                candidate = self.mutator.rewrite(candidate, seed=attempt)
            detected = self.is_detected(candidate)
            self.attempts_log.append(detected)
            if not detected:
                return candidate, attempt
        return None, self.max_attempts
