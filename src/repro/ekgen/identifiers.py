"""Deterministic random identifier / string helpers for the kit generators.

Exploit kits randomize variable names, delimiters, encryption keys and hex
colors per served sample.  All helpers here draw from a caller-supplied
:class:`random.Random` so corpus generation is reproducible from a seed.
"""

from __future__ import annotations

import random
import string
from typing import List, Sequence

# Kit-generated identifiers are plain alphanumeric, matching the randomized
# names observed in the wild (paper, Figures 9 and 10: Euur1V, jkb0hA,
# QB0Xk, ...).  Underscore/dollar are deliberately excluded so that the
# character classes Kizzle infers from a day's cluster generalize to the next
# day's names.
_IDENT_START = string.ascii_letters
_IDENT_CONT = string.ascii_letters + string.digits
_JS_RESERVED = frozenset(
    {"var", "new", "for", "if", "in", "do", "int", "let", "try"}
)


def random_identifier(rng: random.Random, min_length: int = 4,
                      max_length: int = 8) -> str:
    """A random JavaScript identifier (never a reserved word)."""
    while True:
        length = rng.randint(min_length, max_length)
        name = rng.choice(_IDENT_START) + "".join(
            rng.choice(_IDENT_CONT) for _ in range(length - 1))
        if name.lower() not in _JS_RESERVED:
            return name


def random_identifiers(rng: random.Random, count: int,
                       min_length: int = 4, max_length: int = 8) -> List[str]:
    """``count`` distinct random identifiers."""
    names: List[str] = []
    seen = set()
    while len(names) < count:
        name = random_identifier(rng, min_length, max_length)
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


def random_delimiter(rng: random.Random, min_length: int = 2,
                     max_length: int = 4) -> str:
    """A short alphanumeric delimiter such as RIG's ``y6`` or Nuclear's
    ``UluN``."""
    length = rng.randint(min_length, max_length)
    alphabet = string.ascii_letters + string.digits
    return "".join(rng.choice(alphabet) for _ in range(length))


def random_hex_color(rng: random.Random) -> str:
    """A CSS-style hex color like ``#333366`` (Nuclear uses these as eval
    obfuscation infixes)."""
    return "#" + "".join(rng.choice("0123456789ABCDEF") for _ in range(6))


def random_crypt_key(rng: random.Random, length: int = 64) -> str:
    """A Nuclear-style encryption key: a permutation-like string of printable
    characters with no repeats, long enough to cover the payload alphabet."""
    alphabet = list(string.ascii_letters + string.digits
                    + "!#$%&()*+,-./:;<=>?@[]^_{|}~")
    rng.shuffle(alphabet)
    return "".join(alphabet[:length])


def random_junk_string(rng: random.Random, length: int,
                       alphabet: str = string.ascii_letters + string.digits) -> str:
    """A fixed-length junk string (used as filler in Sweet Orange chunks)."""
    return "".join(rng.choice(alphabet) for _ in range(length))


def random_url(rng: random.Random, kit_name: str) -> str:
    """A plausible exploit-kit landing/payload URL.

    RIG's day-over-day churn in Figure 11(d) is dominated by embedded URL
    changes, so these must actually vary per sample/day.
    """
    tlds = ["com", "net", "org", "info", "biz", "in", "ru", "eu"]
    domain = random_junk_string(rng, rng.randint(8, 14),
                                string.ascii_lowercase + string.digits)
    path = random_junk_string(rng, rng.randint(6, 20),
                              string.ascii_lowercase + string.digits)
    query_key = random_junk_string(rng, rng.randint(2, 6),
                                   string.ascii_lowercase)
    query_value = random_junk_string(rng, rng.randint(16, 32),
                                     string.ascii_letters + string.digits)
    return (f"http://{domain}.{rng.choice(tlds)}/{path}.php"
            f"?{query_key}={query_value}")


def pick_variable_map(rng: random.Random, roles: Sequence[str]) -> dict:
    """Map semantic roles (``buffer``, ``delim``...) to fresh random names."""
    names = random_identifiers(rng, len(roles))
    return dict(zip(roles, names))
