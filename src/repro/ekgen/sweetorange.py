"""The Sweet Orange exploit kit model.

Sweet Orange's packer (paper, Figure 10b) splits the payload into an array of
string chunks polluted with a junk token, joins them, removes the junk with a
``new RegExp(...)`` replace, and hides small integer constants behind
``Math.sqrt`` calls (``Math.sqrt(196)`` instead of ``14``).  The function and
junk token rotate between versions; variable names rotate per sample.
"""

from __future__ import annotations

import json
import math
import random
from typing import List

from repro.ekgen.base import ExploitKit, KitVersion
from repro.ekgen.identifiers import pick_variable_map, random_identifier, \
    random_junk_string

#: The word spelled by the charAt(Math.sqrt(...)) selector array; the packer
#: uses it to reach window["eval"] without the literal name appearing.
_SELECTOR_WORD = "eval"


def insert_junk(text: str, junk: str, every: int) -> str:
    """Insert the junk token into the text every ``every`` characters."""
    if every <= 0:
        raise ValueError("chunk size must be positive")
    pieces = [text[i:i + every] for i in range(0, len(text), every)]
    return junk.join(pieces)


def remove_junk(text: str, junk: str) -> str:
    """Inverse of :func:`insert_junk` (used by the Sweet Orange unpacker)."""
    return text.replace(junk, "")


class SweetOrangeKit(ExploitKit):
    """Simulated Sweet Orange exploit kit."""

    name = "sweetorange"

    def pack(self, core: str, version: KitVersion, rng: random.Random) -> str:
        params = version.packer_params
        junk = str(params.get("junk_token", "WWWWWWWbEWsjdhfW"))
        square = int(params.get("math_square", 196))
        chunk_size = int(params.get("chunk_size", 48))
        index = int(math.isqrt(square))

        names = pick_variable_map(
            rng, ["ok", "xx", "aa", "ar", "q", "result"])
        function_name = random_identifier(rng, 6, 8)

        # charAt(Math.sqrt(square)) selector strings: each junk string has one
        # letter of the selector word planted at the obfuscated index.
        selectors: List[str] = []
        for letter in _SELECTOR_WORD:
            filler = random_junk_string(rng, index + 3)
            planted = filler[:index] + letter + filler[index + 1:]
            selectors.append(
                f'"{planted}".charAt(Math.sqrt({square}))')
        selector_array = ",".join(selectors)

        polluted = insert_junk(core, junk, chunk_size)
        chunk_length = 32
        chunks = [polluted[i:i + chunk_length]
                  for i in range(0, len(polluted), chunk_length)]
        chunk_literals = ",".join(json.dumps(chunk) for chunk in chunks)

        script = f"""
function {function_name}() {{
  var {names['ok']} = [{selector_array}];
  var {names['xx']} = [{chunk_literals}];
  var {names['aa']} = {names['xx']}.join("");
  var {names['ar']} = [["{junk}", "g"]];
  for (var {names['q']} = 0; {names['q']} < {names['ar']}.length; {names['q']}++) {{
    {names['aa']} = {names['aa']}.replace(new RegExp({names['ar']}[{names['q']}][0], {names['ar']}[{names['q']}][1]), "");
  }}
  var {names['result']} = [{names['ok']}.join(""), {names['aa']}];
  return {names['result']};
}}
var payloadParts = {function_name}();
window[payloadParts[0]](payloadParts[1]);
"""
        title = f"gallery {rng.randrange(10**6)}"
        return (f"<html><head><title>{title}</title></head><body>\n"
                f"<script type=\"text/javascript\">{script}</script>\n"
                f"</body></html>")
