"""The RIG exploit kit model.

RIG's packer (paper, Figure 4a) accumulates the ASCII codes of the payload in
a buffer through repeated ``collect()`` calls, with a short randomized
delimiter between the codes; at the end it splits the buffer on the delimiter
and rebuilds the payload with ``String.fromCharCode`` into an injected
``<script>`` element.  The delimiter is rotated between kit versions, the
variable names per served sample.

RIG's *unpacked* body is comparatively short and dominated by embedded
landing/payload URLs that change constantly, which is why Figure 11(d) shows
day-over-day similarity as low as 50% for RIG while the other kits stay above
90%.  We reproduce that by giving RIG a compact core with a block of long,
per-day randomized URLs.
"""

from __future__ import annotations

import datetime
import random
from typing import List

from repro.ekgen.base import ExploitKit, KitVersion
from repro.ekgen.cves import AV_CHECK_CODE, exploit_snippet
from repro.ekgen.identifiers import pick_variable_map, random_junk_string, \
    random_url


class RigKit(ExploitKit):
    """Simulated RIG exploit kit."""

    name = "rig"

    #: Number of embedded URLs in the core; together with the campaign-token
    #: block below they dominate the winnow fingerprint and drive the
    #: day-over-day churn of Figure 11(d).
    URL_COUNT = 25

    #: Number of per-day campaign tokens (rotating session keys the RIG
    #: backend embeds in every landing page).
    TOKEN_COUNT = 15

    # ------------------------------------------------------------------
    # unpacked core
    # ------------------------------------------------------------------
    def core_source(self, version: KitVersion) -> str:
        """RIG's compact unpacked core.

        Unlike the other kits, RIG's core skips the heavyweight shared
        runtime and inlines a terse plugin probe, so that the embedded URL
        block is a large fraction of the body (the paper's explanation of the
        RIG similarity churn).
        """
        day_rng = random.Random(f"rig-core-{version.date.isoformat()}")
        urls = [random_url(day_rng, "rig") for _ in range(self.URL_COUNT)]
        url_lines = "\n".join(
            f'var gateUrl{index} = "{url}";' for index, url in enumerate(urls))
        token_lines = "\n".join(
            f'var campaignToken{index} = '
            f'"{random_junk_string(day_rng, day_rng.randint(64, 96))}";'
            for index in range(self.TOKEN_COUNT))
        sections: List[str] = [
            f"// rig exploit kit core with {len(version.cves)} exploits",
            f'var gateUrl = "{urls[0]}";',
            url_lines,
            token_lines,
            _RIG_PLUGIN_PROBE,
        ]
        if version.av_check:
            sections.append(AV_CHECK_CODE)
        launcher_calls = []
        for component, cve in version.cves:
            sections.append(exploit_snippet(cve, component))
            slug = cve.replace("CVE-", "cve_").replace("-", "_").lower()
            launcher_calls.append(
                f'  fired = run_{slug}("{self._required_version(component)}") || fired;')
        launcher = ["function launchExploits() {", "  var fired = false;",
                    "  detectPlugins();"]
        if version.av_check:
            launcher.append("  if (detectSecuritySuites() > 0) { return false; }")
        launcher.extend(launcher_calls)
        launcher.extend(["  return fired;", "}", "launchExploits();"])
        sections.append("\n".join(launcher))
        return "\n".join(sections)

    # ------------------------------------------------------------------
    # packer
    # ------------------------------------------------------------------
    def pack(self, core: str, version: KitVersion, rng: random.Random) -> str:
        delimiter = str(version.packer_params.get("delimiter", "y6"))
        chunk_size = int(version.packer_params.get("chunk_size", 8))
        names = pick_variable_map(
            rng, ["buffer", "delim", "collect", "text", "pieces", "screlem",
                  "index"])

        encoded = delimiter.join(str(ord(char)) for char in core) + delimiter
        chunks = [encoded[i:i + chunk_size * 4]
                  for i in range(0, len(encoded), chunk_size * 4)]
        collect_calls = "\n".join(
            f'{names["collect"]}("{chunk}");' for chunk in chunks)

        script = f"""
var {names['buffer']} = "";
var {names['delim']} = "{delimiter}";
function {names['collect']}({names['text']}) {{
  {names['buffer']} += {names['text']};
}}
{collect_calls}
var {names['pieces']} = {names['buffer']}.split({names['delim']});
var {names['screlem']} = document.createElement("script");
for (var {names['index']} = 0; {names['index']} < {names['pieces']}.length - 1; {names['index']}++) {{
  {names['screlem']}.text += String.fromCharCode({names['pieces']}[{names['index']}]);
}}
document.body.appendChild({names['screlem']});
"""
        title = f"loading {rng.randrange(10**6)}"
        return (f"<html><head><title>{title}</title></head><body>\n"
                f"<script type=\"text/javascript\">{script}</script>\n"
                f"</body></html>")


#: Terse plugin probe used only by RIG's compact core.
_RIG_PLUGIN_PROBE = """
var pluginReport = { flash: null, silverlight: null, java: null, msie: null };
function detectPlugins() {
  var nav = window.navigator;
  var match = /MSIE ([0-9]+\\.[0-9]+)/.exec(nav.userAgent);
  pluginReport.msie = match ? match[1] : null;
  try { pluginReport.flash = new ActiveXObject("ShockwaveFlash.ShockwaveFlash").GetVariable("$version"); } catch (e) { }
  try { pluginReport.silverlight = new ActiveXObject("AgControl.AgControl").Settings ? "5.1" : null; } catch (e) { }
  try { pluginReport.java = new ActiveXObject("JavaWebStart.isInstalled").jws ? "1.7" : null; } catch (e) { }
  return pluginReport;
}
function compareVersions(installed, required) {
  var a = String(installed).split(".");
  var b = String(required).split(".");
  for (var i = 0; i < Math.max(a.length, b.length); i++) {
    var left = parseInt(a[i] || "0", 10);
    var right = parseInt(b[i] || "0", 10);
    if (left !== right) { return left < right ? -1 : 1; }
  }
  return 0;
}
function checkFlashVersion(version, cve) { return pluginReport.flash !== null; }
function checkSilverlightVersion(version, cve) { return pluginReport.silverlight !== null; }
function checkJavaVersion(version, cve) { return pluginReport.java !== null; }
function checkBrowserBuild(version, cve) { return pluginReport.msie !== null; }
function encodeSession(cve) {
  var seed = cve.length * 2654435761 % 4294967296;
  return seed.toString(16) + "-" + cve.replace(/[^0-9]/g, "");
}
function buildPayloadUrl(kind, cve) {
  return gateUrl + "&f=" + kind + "&k=" + encodeSession(cve);
}
"""
