"""Daily grayware telemetry stream generator.

Combines the four kit generators and the benign generator into dated batches
that stand in for the paper's IE telemetry stream (80k-500k samples/day).
Volumes are configurable; the defaults are scaled down by roughly three
orders of magnitude while keeping the paper's relative prevalence from the
Figure 14 ground truth (Angler ≫ Sweet Orange > Nuclear > RIG) so that the
evaluation harness reproduces the same qualitative behaviour, including RIG
being hard to track because of its low volume.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.ekgen.angler import AnglerKit
from repro.ekgen.base import ExploitKit, GeneratedSample
from repro.ekgen.benign import BenignGenerator
from repro.ekgen.evolution import EvolutionTimeline, default_timeline
from repro.ekgen.nuclear import NuclearKit
from repro.ekgen.rig import RigKit
from repro.ekgen.sweetorange import SweetOrangeKit


@dataclass
class StreamConfig:
    """Volume knobs of the synthetic stream.

    ``kit_daily_counts`` gives the mean number of samples per kit per day;
    the actual count is drawn from a small window around the mean so days are
    not identical.  The default ratios follow Figure 14's month totals
    (Angler 40,026 / Sweet Orange 11,315 / Nuclear 6,106 / RIG 1,409).
    """

    benign_per_day: int = 60
    kit_daily_counts: Dict[str, int] = field(default_factory=lambda: {
        "angler": 26, "sweetorange": 8, "nuclear": 6, "rig": 4,
    })
    count_jitter: float = 0.3
    #: On the day a kit's packer changes, only this fraction of the kit's
    #: served samples already use the new version; the remainder still run
    #: the previous configuration.  This gradual roll-out is what produced
    #: the small same-day false-negative bumps the paper attributes to "new
    #: variants ... not numerous enough ... to warrant a separate cluster"
    #: (the Angler bump of August 13 in Figure 6).
    transition_fraction: float = 0.35
    seed: int = 20140801

    def scaled(self, factor: float) -> "StreamConfig":
        """A copy of the configuration with all volumes scaled."""
        return StreamConfig(
            benign_per_day=max(1, int(self.benign_per_day * factor)),
            kit_daily_counts={kit: max(1, int(count * factor))
                              for kit, count in self.kit_daily_counts.items()},
            count_jitter=self.count_jitter,
            transition_fraction=self.transition_fraction,
            seed=self.seed,
        )

    @classmethod
    def paper_scale(cls, samples_per_day: int = 80_000,
                    seed: int = 20140801) -> "StreamConfig":
        """A stream sized like the paper's telemetry (80k-500k samples/day).

        The default-volume ratios (Figure 14 prevalence) are preserved and
        scaled so the configured *mean* daily volume reaches
        ``samples_per_day``.  Jitter still applies, so actual days vary
        around the target the same way the small stream does.
        """
        if samples_per_day < 1:
            raise ValueError("samples_per_day must be positive")
        base = cls(seed=seed)
        base_total = base.benign_per_day + sum(base.kit_daily_counts.values())
        return base.scaled(samples_per_day / base_total)

    @property
    def mean_daily_volume(self) -> int:
        """Mean configured samples per day (before jitter)."""
        return self.benign_per_day + sum(self.kit_daily_counts.values())


@dataclass
class DailyBatch:
    """One day of telemetry."""

    date: datetime.date
    samples: List[GeneratedSample]

    @property
    def malicious(self) -> List[GeneratedSample]:
        return [sample for sample in self.samples if sample.is_malicious]

    @property
    def benign(self) -> List[GeneratedSample]:
        return [sample for sample in self.samples if not sample.is_malicious]

    def by_kit(self) -> Dict[str, List[GeneratedSample]]:
        groups: Dict[str, List[GeneratedSample]] = {}
        for sample in self.malicious:
            groups.setdefault(sample.kit, []).append(sample)
        return groups


class TelemetryGenerator:
    """Generates dated batches of synthetic grayware."""

    def __init__(self, config: Optional[StreamConfig] = None,
                 timeline: Optional[EvolutionTimeline] = None) -> None:
        self.config = config or StreamConfig()
        self.timeline = timeline or default_timeline()
        self.kits: Dict[str, ExploitKit] = {
            "nuclear": NuclearKit(self.timeline),
            "sweetorange": SweetOrangeKit(self.timeline),
            "angler": AnglerKit(self.timeline),
            "rig": RigKit(self.timeline),
        }
        self.benign = BenignGenerator()

    # ------------------------------------------------------------------
    def day_rng(self, date: datetime.date) -> random.Random:
        """Deterministic RNG for one day of generation."""
        return random.Random(f"{self.config.seed}-{date.isoformat()}")

    def generate_day(self, date: datetime.date) -> DailyBatch:
        """Generate the batch for one day."""
        rng = self.day_rng(date)
        samples: List[GeneratedSample] = []
        for _ in range(self.config.benign_per_day):
            samples.append(self.benign.generate(date, rng))
        for kit_name, mean_count in sorted(self.config.kit_daily_counts.items()):
            if kit_name not in self.kits:
                raise KeyError(f"unknown kit in stream config: {kit_name!r}")
            count = self._jittered_count(rng, mean_count)
            kit = self.kits[kit_name]
            previous_version = self._rollout_previous_version(kit_name, date)
            for _ in range(count):
                version = None
                if previous_version is not None \
                        and rng.random() >= self.config.transition_fraction:
                    version = previous_version
                samples.append(kit.generate(date, rng, version=version))
        rng.shuffle(samples)
        return DailyBatch(date=date, samples=samples)

    def _rollout_previous_version(self, kit_name: str, date: datetime.date):
        """The previous day's version when a packer change lands on ``date``.

        Returns ``None`` when nothing changes on ``date`` (all samples use
        the current version).
        """
        changes = self.timeline.packer_change_dates(kit_name, start=date,
                                                    end=date)
        if not changes:
            return None
        previous_day = date - datetime.timedelta(days=1)
        return self.kits[kit_name].version_for(previous_day)

    def generate_range(self, start: datetime.date,
                       end: datetime.date) -> Iterator[DailyBatch]:
        """Generate batches for every day in ``[start, end]`` inclusive."""
        if end < start:
            raise ValueError("end date must not precede start date")
        current = start
        one_day = datetime.timedelta(days=1)
        while current <= end:
            yield self.generate_day(current)
            current += one_day

    def reference_core(self, kit_name: str, date: datetime.date) -> str:
        """The unpacked core of a kit on a given day.

        Used to seed Kizzle's labeled corpus ("a set of existing unpacked
        malware samples which correspond to exploit kits Kizzle is aiming to
        detect") and by the Figure 11 similarity experiment.
        """
        kit = self.kits[kit_name]
        return kit.core_source(kit.version_for(date))

    # ------------------------------------------------------------------
    def _jittered_count(self, rng: random.Random, mean_count: int) -> int:
        if mean_count <= 0:
            return 0
        jitter = self.config.count_jitter
        low = max(1, int(round(mean_count * (1 - jitter))))
        high = max(low, int(round(mean_count * (1 + jitter))))
        return rng.randint(low, high)
