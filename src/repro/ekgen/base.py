"""Base classes for the exploit-kit corpus simulator.

An :class:`ExploitKit` produces, for a given date, a :class:`KitVersion`
describing how the kit is configured on that day (which CVEs, which packer
parameters, whether the anti-AV probe is present).  From a version it can
build the *unpacked core* (stable day over day, apart from appends) and wrap
it with the kit's packer (mutating every few days and randomized per served
sample).
"""

from __future__ import annotations

import abc
import datetime
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ekgen.cves import (
    AV_CHECK_CODE,
    CVE_INVENTORY,
    PLUGIN_DETECTION,
    SHARED_RUNTIME,
    exploit_snippet,
)


@dataclass
class KitVersion:
    """Configuration of a kit on a specific date.

    Attributes
    ----------
    kit:
        Kit name (``nuclear``, ``rig``, ``angler``, ``sweetorange``).
    date:
        The day the version applies to.
    cves:
        ``(component, cve)`` pairs active on that day.
    av_check:
        Whether the anti-AV file probe is included in the core.
    packer_params:
        Free-form packer parameters (delimiter, eval obfuscation, etc.); the
        per-kit generators interpret these.
    version_tag:
        Monotonic human-readable tag, mostly for reporting/debugging.
    """

    kit: str
    date: datetime.date
    cves: List = field(default_factory=list)
    av_check: bool = False
    packer_params: Dict[str, object] = field(default_factory=dict)
    version_tag: str = "v0"


@dataclass
class GeneratedSample:
    """One sample emitted into the synthetic telemetry stream.

    ``content`` is the packed HTML/JS document as captured by telemetry,
    ``unpacked`` the inner core (used to seed the labeled corpus and for
    ground truth / similarity experiments), ``kit`` the true family or
    ``None`` for benign samples.
    """

    sample_id: str
    content: str
    kit: Optional[str]
    date: datetime.date
    unpacked: Optional[str] = None
    benign_family: Optional[str] = None

    @property
    def is_malicious(self) -> bool:
        return self.kit is not None


class ExploitKit(abc.ABC):
    """Base class for the four simulated kit families."""

    #: Kit name; must match a key of :data:`repro.ekgen.cves.CVE_INVENTORY`.
    name: str = ""

    def __init__(self, timeline: Optional["EvolutionTimeline"] = None) -> None:
        from repro.ekgen.evolution import EvolutionTimeline, default_timeline

        self.timeline: EvolutionTimeline = timeline or default_timeline()
        if self.name not in CVE_INVENTORY:
            raise ValueError(f"kit name {self.name!r} has no CVE inventory")

    # ------------------------------------------------------------------
    # versioning
    # ------------------------------------------------------------------
    def version_for(self, date: datetime.date) -> KitVersion:
        """The kit's configuration on ``date`` according to the timeline."""
        return self.timeline.version_for(self.name, date)

    # ------------------------------------------------------------------
    # unpacked core
    # ------------------------------------------------------------------
    def core_source(self, version: KitVersion) -> str:
        """Unpacked inner core of the kit for the given version.

        Layout mirrors Figure 3: plugin detector, optional AV detector, the
        exploit payloads, and a launcher that walks the exploit list.  The
        text is deterministic for a given version so day-over-day winnow
        similarity reflects genuine configuration changes only.
        """
        sections: List[str] = []
        sections.append(f"// {self.name} exploit kit core with "
                        f"{len(version.cves)} exploits")
        sections.append(f'var gateUrl = "{self.gate_url(version)}";')
        sections.append(PLUGIN_DETECTION)
        sections.append(SHARED_RUNTIME)
        if version.av_check:
            sections.append(AV_CHECK_CODE)
        launcher_calls: List[str] = []
        for component, cve in version.cves:
            sections.append(exploit_snippet(cve, component))
            slug = cve.replace("CVE-", "cve_").replace("-", "_").lower()
            version_literal = self._required_version(component)
            launcher_calls.append(
                f'  fired = run_{slug}("{version_literal}") || fired;')
        launcher = ["function launchExploits() {",
                    "  var fired = false;",
                    "  detectPlugins();"]
        if version.av_check:
            launcher.append("  if (detectSecuritySuites() > 0) { return false; }")
        launcher.extend(launcher_calls)
        launcher.append("  return fired;")
        launcher.append("}")
        launcher.append("launchExploits();")
        sections.append("\n".join(launcher))
        return "\n".join(sections)

    def gate_url(self, version: KitVersion) -> str:
        """The gate/payload URL embedded in the core for this version.

        For most kits the gate infrastructure is stable over the study
        window (their unpacked cores barely change day over day, Figure 11
        a-c); RIG overrides :meth:`core_source` to rotate URLs aggressively,
        which is what produces the Figure 11(d) churn.
        """
        token = f"{self.name}-gate".encode("utf-8")
        stable = zlib.crc32(token) % 10**8
        return f"http://{self.name}-gate.example/{stable}/load.php"

    @staticmethod
    def _required_version(component: str) -> str:
        versions = {
            "flash": "13.0.0.182",
            "silverlight": "5.1.20125.0",
            "java": "1.7.0.17",
            "reader": "9.3.0",
            "ie": "10.0",
        }
        return versions.get(component, "1.0")

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pack(self, core: str, version: KitVersion,
             rng: random.Random) -> str:
        """Wrap the unpacked core with the kit's packer.

        Per-sample randomization (identifier names, keys) comes from ``rng``;
        per-version parameters come from ``version.packer_params``.
        """

    def generate(self, date: datetime.date, rng: random.Random,
                 sample_id: Optional[str] = None,
                 version: Optional[KitVersion] = None) -> GeneratedSample:
        """Generate one served sample of the kit for the given day.

        ``version`` overrides the timeline lookup; the telemetry generator
        uses this to model gradual roll-outs, where on the day of a packer
        change only a fraction of served samples already use the new version.
        """
        if version is None:
            version = self.version_for(date)
        core = self.core_source(version)
        packed = self.pack(core, version, rng)
        identifier = sample_id or f"{self.name}-{date.isoformat()}-{rng.randrange(10**9):09d}"
        return GeneratedSample(sample_id=identifier, content=packed,
                               kit=self.name, date=date,
                               unpacked=self.unpacked_payload(core, version))

    def unpacked_payload(self, core: str, version: KitVersion) -> str:
        """What unpacking a served sample yields.

        Usually the core itself; kits that fold extra content into the packed
        body (Angler after August 13) override this so ground truth matches
        what the unpackers actually recover.
        """
        return core
