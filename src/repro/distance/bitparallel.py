"""Bit-parallel Levenshtein distance (Myers 1999 / Hyyrö 2001).

The banded dynamic program in :mod:`repro.distance.levenshtein` is the right
tool when the distance threshold is tiny, but the epsilon ablations and the
merge step routinely ask for thresholds of 30-60% of the sequence length.  At
that band width the DP degenerates to the full O(n*m) table — several seconds
per pair of long samples in pure Python.

Myers' algorithm encodes an entire DP column in two machine words (the
positive and negative delta bit vectors) and advances one *text* position per
iteration using ~17 word operations.  Python integers are arbitrary
precision, so a single ``int`` holds the whole column regardless of pattern
length, and the per-iteration big-int arithmetic runs in C.  The result is
the *exact* unbounded edit distance in O(len(text)) big-int operations —
two to three orders of magnitude faster than the Python-level DP on long
token strings, and exactly equal to :func:`repro.distance.levenshtein.
edit_distance` (property-tested in ``tests/test_distance_engine.py``).

Because the exact distance (rather than a thresholded verdict) comes out,
the value can be memoized once and answer *every* epsilon query about the
pair — which is what :class:`repro.distance.engine.DistanceEngine` does.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)

#: Alias used by the engine: a per-symbol position bitmask over the pattern.
PatternMask = Dict[Hashable, int]


def build_pattern_mask(pattern: Sequence[T]) -> PatternMask:
    """Precompute the per-symbol position bitmask ``Peq`` for ``pattern``.

    ``Peq[s]`` has bit ``i`` set iff ``pattern[i] == s``.  Building the mask
    is O(len(pattern)) and reusable across every comparison involving the
    same sequence, so the engine caches one mask per unique point.
    """
    peq: PatternMask = {}
    bit = 1
    for symbol in pattern:
        peq[symbol] = peq.get(symbol, 0) | bit
        bit <<= 1
    return peq


def bitparallel_edit_distance(pattern: Sequence[T], text: Sequence[T],
                              pattern_mask: PatternMask = None) -> int:
    """Exact Levenshtein distance via Myers' bit-parallel algorithm.

    Equivalent to ``edit_distance(pattern, text)`` for any hashable symbols.
    ``pattern_mask`` may be supplied to reuse a precomputed
    :func:`build_pattern_mask` result for ``pattern``.
    """
    m = len(pattern)
    n = len(text)
    if m == 0:
        return n
    if n == 0:
        return m
    if pattern == text or (m == n and tuple(pattern) == tuple(text)):
        return 0

    peq = pattern_mask if pattern_mask is not None else \
        build_pattern_mask(pattern)
    mask = (1 << m) - 1
    high = 1 << (m - 1)

    pv = mask          # vertical positive deltas: column 0 is 0,1,2,...,m
    mv = 0             # vertical negative deltas
    score = m          # D[m][0]
    get = peq.get
    for symbol in text:
        eq = get(symbol, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & high:
            score += 1
        elif mh & high:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        pv = (mh | (~(xv | ph) & mask)) & mask
        mv = ph & xv
    return score
