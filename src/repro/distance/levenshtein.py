"""Levenshtein edit distance over token sequences.

The distance is computed over *tokens*, not characters: two samples that
differ only in identifier spellings have distance zero once abstracted, while
an appended exploit shows up as a block of insertions.

Two implementations are provided:

* :func:`edit_distance` -- the classic O(n*m) dynamic program with two rows.
* :func:`banded_edit_distance` -- Ukkonen's banded algorithm, which only fills
  a diagonal band of width proportional to the maximum distance of interest.
  DBSCAN with a normalized epsilon of 0.10 never needs distances larger than
  ``0.10 * max(len(a), len(b))``, so the band cut-off makes all-pairs distance
  computation tractable for large daily batches.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar

T = TypeVar("T")

_INF = float("inf")

#: Band width beyond which the bit-parallel kernel beats the banded DP.
#: Below this the banded early-abort wins (O(band * n) with a quick exit);
#: above it the DP approaches the full quadratic table.
_BITPARALLEL_BAND_CUTOFF = 32


def edit_distance(a: Sequence[T], b: Sequence[T]) -> int:
    """Classic Levenshtein distance between two sequences.

    Unit costs for insertion, deletion and substitution.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Ensure the inner loop runs over the shorter sequence to minimize memory.
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, item_a in enumerate(a, start=1):
        current[0] = i
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost  # substitution
            )
        previous, current = current, previous
    return previous[len(b)]


def banded_edit_distance(a: Sequence[T], b: Sequence[T],
                         max_distance: int) -> Optional[int]:
    """Edit distance with early cut-off.

    Returns the exact distance if it is at most ``max_distance``, otherwise
    ``None``.  Only a diagonal band of width ``2 * max_distance + 1`` is
    evaluated (Ukkonen's algorithm), so the cost is
    ``O(max_distance * min(len(a), len(b)))``.
    """
    if max_distance < 0:
        return None
    if a == b:
        return 0
    len_a, len_b = len(a), len(b)
    if abs(len_a - len_b) > max_distance:
        return None
    if len_a == 0:
        return len_b if len_b <= max_distance else None
    if len_b == 0:
        return len_a if len_a <= max_distance else None
    if len_b > len_a:
        a, b = b, a
        len_a, len_b = len_b, len_a

    band = max_distance
    previous = [_INF] * (len_b + 1)
    current = [_INF] * (len_b + 1)
    for j in range(min(band, len_b) + 1):
        previous[j] = j

    for i in range(1, len_a + 1):
        lo = max(1, i - band)
        hi = min(len_b, i + band)
        current[lo - 1] = i if (lo - 1) == 0 else _INF
        row_min = current[lo - 1] if (lo - 1) == 0 else _INF
        item_a = a[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if item_a == b[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > max_distance:
            return None
        # Reset cells outside the band for the next row.
        previous, current = current, [_INF] * (len_b + 1)

    result = previous[len_b]
    if result is _INF or result > max_distance:
        return None
    return int(result)


def normalized_edit_distance(a: Sequence[T], b: Sequence[T],
                             max_normalized: Optional[float] = None) -> float:
    """Edit distance normalized by the length of the longer sequence.

    Returns a value in ``[0, 1]``.  When ``max_normalized`` is given, the
    banded algorithm is used and ``1.0`` is returned as soon as the distance
    provably exceeds the threshold — callers only need to know "within
    epsilon or not", so the exact value above the threshold is irrelevant.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    if max_normalized is None:
        return edit_distance(a, b) / longest
    max_distance = int(max_normalized * longest)
    if max_distance > _BITPARALLEL_BAND_CUTOFF:
        # Wide band: the banded DP degenerates toward the full table, while
        # Myers' bit-parallel kernel computes the exact distance in
        # O(longest) big-int operations.  Same verdict, far less work.
        from repro.distance.bitparallel import bitparallel_edit_distance

        distance = bitparallel_edit_distance(a, b)
        if distance > max_distance:
            return 1.0
        return distance / longest
    distance = banded_edit_distance(a, b, max_distance)
    if distance is None:
        return 1.0
    return distance / longest
