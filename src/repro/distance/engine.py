"""Pruned, parallel distance engine for the clustering stack.

The paper's daily loop is dominated by all-pairs token edit distance feeding
DBSCAN.  This module centralizes that workload behind one object,
:class:`DistanceEngine`, which layers cheap *exact* filters in front of the
expensive kernel and fans large batches out through a pluggable *pair
executor* (by default the process-pool executor from
:mod:`repro.exec.process`; an execution backend may substitute its own):

1. **identity** — equal token strings are distance 0 (duplicates are very
   common in a grayware stream);
2. **length filter** — ``abs(len(a) - len(b))`` lower-bounds the distance;
3. **token-bag filter** — the histogram surplus lower-bounds the distance
   (each edit changes at most one token on each side);
4. **q-gram filter** — each edit destroys at most ``q`` of a sequence's
   q-grams, so the q-gram-multiset surplus divided by ``q`` lower-bounds the
   distance (a sharper, position-sensitive version of the bag filter);
5. **bit-parallel kernel** — Myers' algorithm computes the exact distance in
   O(len(text)) big-int operations (:mod:`repro.distance.bitparallel`).

All filters are *integer-exact* with respect to the threshold
``t = int(epsilon * max(len(a), len(b)))`` used by the banded metric, so an
engine-backed DBSCAN produces byte-identical labels to the sequential
implementation (property-tested).

Because the kernel produces the exact distance rather than a thresholded
verdict, results are memoized in a bounded cache keyed by token content; a
cached pair answers *every* subsequent epsilon query (the epsilon ablation
sweeps four thresholds over the same batch and reuses most of the work).

Every filter can be disabled independently (``DistanceEngineConfig``) so the
benchmarks can attribute the speedup layer by layer, and
:class:`EngineStats` counts how many pairs each layer resolved.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections import Counter, OrderedDict
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.distance.bitparallel import PatternMask, bitparallel_edit_distance, \
    build_pattern_mask

TokenString = Tuple[str, ...]


# ----------------------------------------------------------------------
# configuration and accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DistanceEngineConfig:
    """Tuning knobs of the engine.

    Attributes
    ----------
    length_filter / bag_filter / qgram_filter:
        Ablation toggles for the three pruning layers.  All default on;
        turning one off never changes results, only cost.
    qgram_size:
        q-gram width of the positional prefilter (paper-scale token strings
        do well with 3).
    cache_size:
        Maximum number of memoized pair distances.  The cache is exact and
        content-addressed, so sharing it between engines is always sound.
    shared_cache:
        Use the process-wide shared cache (default) instead of a private
        one.  Ablation sweeps over the same batch hit it heavily.  A
        ``cache_size`` different from the default implies a private cache
        of that size (the shared cache's bound is never resized).
    workers:
        Process-pool width for batched queries.  ``0`` (default) means
        auto-detect (``os.cpu_count()``); ``1`` forces the serial path.
    chunk_size:
        Pairs per work unit shipped to a pool worker.
    parallel_threshold:
        Minimum number of undecided pairs before a pool is spun up; small
        batches stay serial to avoid fork overhead.
    profile_cache_size:
        Maximum number of per-point feature profiles (token bag, q-gram
        counter, kernel bitmask) held by one engine; profiles are
        recomputable, so the table is simply reset when it fills (long-lived
        engines process months of daily batches).
    seed:
        Base seed for the deterministic per-chunk RNG re-seeding of pool
        workers (see :func:`repro.exec.process.chunk_seed`).  Never changes
        results today — the pair kernels use no randomness — but guarantees
        that any worker-side randomness ever introduced stays byte-identical
        across pool widths.
    """

    length_filter: bool = True
    bag_filter: bool = True
    qgram_filter: bool = True
    qgram_size: int = 3
    cache_size: int = 1 << 18
    shared_cache: bool = True
    workers: int = 0
    chunk_size: int = 1024
    parallel_threshold: int = 4096
    profile_cache_size: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        if self.qgram_size < 2:
            raise ValueError("qgram_size must be at least 2")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.profile_cache_size < 1:
            raise ValueError("profile_cache_size must be positive")

    def effective_workers(self) -> int:
        if self.workers == 0:
            return multiprocessing.cpu_count()
        return self.workers


@dataclass
class EngineStats:
    """Per-layer accounting: how each pair query was resolved."""

    pairs: int = 0
    identical: int = 0
    length_pruned: int = 0
    cache_hits: int = 0
    bag_pruned: int = 0
    qgram_pruned: int = 0
    kernel_calls: int = 0
    #: Pairs decided by the batch executor (pool workers) rather than
    #: in-process — telemetry for the backend layer, not a pruning layer.
    executor_pairs: int = 0
    #: Tokenizations resolved from / missed in a cluster worker's
    #: persistent prepared cache (warm-affinity telemetry; zero for
    #: purely local engines, which tokenize before the engine is involved).
    prepared_hits: int = 0
    prepared_misses: int = 0

    def add(self, other: "EngineStats") -> None:
        for stat_field in fields(self):
            name = stat_field.name
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        return {stat_field.name: getattr(self, stat_field.name)
                for stat_field in fields(self)}


# ----------------------------------------------------------------------
# point profiles
# ----------------------------------------------------------------------
class PointProfile:
    """Per-sequence features computed once and reused across every pair."""

    __slots__ = ("tokens", "length", "bag", "qgrams", "_mask")

    def __init__(self, tokens: TokenString, qgram_size: int) -> None:
        self.tokens = tokens
        self.length = len(tokens)
        self.bag = Counter(tokens)
        if self.length >= qgram_size:
            self.qgrams = Counter(
                tokens[i:i + qgram_size]
                for i in range(self.length - qgram_size + 1))
        else:
            self.qgrams = Counter()
        self._mask: Optional[PatternMask] = None

    @property
    def mask(self) -> PatternMask:
        if self._mask is None:
            self._mask = build_pattern_mask(self.tokens)
        return self._mask


def _bag_surplus(a: Counter, b: Counter) -> int:
    """``max`` over both directions of the multiset difference size."""
    surplus_a = sum((a - b).values())
    surplus_b = sum((b - a).values())
    return max(surplus_a, surplus_b)


# ----------------------------------------------------------------------
# bounded, content-addressed pair cache
# ----------------------------------------------------------------------
class PairDistanceCache:
    """Bounded LRU mapping unordered token-string pairs to exact distances.

    Keys are the token tuples themselves, so the cache is valid across
    engines, epsilons and runs: an exact distance for the same content never
    goes stale.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[TokenString, TokenString], int]" = \
            OrderedDict()

    @staticmethod
    def key(a: TokenString, b: TokenString
            ) -> Tuple[TokenString, TokenString]:
        # Canonical unordered key; compare lengths first so the common case
        # never touches tuple contents.
        if (len(a), a) <= (len(b), b):
            return (a, b)
        return (b, a)

    def get(self, a: TokenString, b: TokenString) -> Optional[int]:
        if self.maxsize == 0:
            return None
        key = self.key(a, b)
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, a: TokenString, b: TokenString, distance: int) -> None:
        if self.maxsize == 0:
            return
        self._entries[self.key(a, b)] = distance
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> List[Tuple[TokenString, TokenString, int]]:
        """Every cached ``(a, b, distance)`` triple, oldest first.

        Exact and content-addressed, so the entries are valid in any other
        engine's cache — this is what lets a per-partition worker ship its
        computed distances back to the parent.
        """
        return [(a, b, distance)
                for (a, b), distance in self._entries.items()]

    def clear(self) -> None:
        self._entries.clear()


class DeltaCache(PairDistanceCache):
    """A view over a backing cache that remembers what *it* added.

    Reads and writes delegate to the backing store (so a long-lived worker
    cache serves hits across tasks and days), but :meth:`items` returns
    only the entries put *through this view* — which is exactly what a
    cluster worker's per-task engine should export back to the
    coordinator: its own new distances, not the entire warm store it
    happens to sit on.
    """

    def __init__(self, backing: PairDistanceCache) -> None:
        self.backing = backing
        self.maxsize = backing.maxsize
        self._new: List[Tuple[TokenString, TokenString, int]] = []

    def get(self, a: TokenString, b: TokenString) -> Optional[int]:
        return self.backing.get(a, b)

    def put(self, a: TokenString, b: TokenString, distance: int) -> None:
        self.backing.put(a, b, distance)
        self._new.append((a, b, distance))

    def items(self) -> List[Tuple[TokenString, TokenString, int]]:
        return list(self._new)

    def __len__(self) -> int:
        return len(self.backing)

    def clear(self) -> None:
        self.backing.clear()
        self._new.clear()


#: Process-wide cache shared by engines configured with ``shared_cache``.
_SHARED_CACHE = PairDistanceCache(maxsize=DistanceEngineConfig.cache_size)


# ----------------------------------------------------------------------
# the filter stack
# ----------------------------------------------------------------------
def decide_profiles(profile_a: PointProfile, profile_b: PointProfile,
                    threshold: int, config: DistanceEngineConfig,
                    cache: Optional[PairDistanceCache],
                    stats: EngineStats) -> Tuple[bool, Optional[int]]:
    """Run the filter stack for one pair.

    Returns ``(within, exact_distance)`` where the distance is ``None`` when
    a prefilter resolved the pair without computing it.  All comparisons are
    integer-exact against ``threshold``, matching the banded metric's
    ``int(epsilon * longest)`` semantics.
    """
    stats.pairs += 1
    if profile_a.tokens == profile_b.tokens:
        stats.identical += 1
        return True, 0
    if config.length_filter and \
            abs(profile_a.length - profile_b.length) > threshold:
        stats.length_pruned += 1
        return False, None
    if cache is not None:
        cached = cache.get(profile_a.tokens, profile_b.tokens)
        if cached is not None:
            stats.cache_hits += 1
            return cached <= threshold, cached
    if config.bag_filter and \
            _bag_surplus(profile_a.bag, profile_b.bag) > threshold:
        stats.bag_pruned += 1
        return False, None
    if config.qgram_filter and \
            _bag_surplus(profile_a.qgrams, profile_b.qgrams) > \
            config.qgram_size * threshold:
        stats.qgram_pruned += 1
        return False, None
    stats.kernel_calls += 1
    # Iterate the kernel over the longer side so the bit vectors cover the
    # shorter one (smaller ints, same result).
    if profile_a.length <= profile_b.length:
        distance = bitparallel_edit_distance(
            profile_a.tokens, profile_b.tokens, profile_a.mask)
    else:
        distance = bitparallel_edit_distance(
            profile_b.tokens, profile_a.tokens, profile_b.mask)
    if cache is not None:
        cache.put(profile_a.tokens, profile_b.tokens, distance)
    return distance <= threshold, distance


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class DistanceEngine:
    """Batched, pruned, memoized distance queries over token strings.

    ``executor`` optionally supplies the batch fan-out substrate (an object
    with ``decide_chunks(points, chunks, epsilon, config)``, see
    :mod:`repro.exec.process`).  Without one, large batches default to the
    process-pool executor, preserving the engine's historical standalone
    behaviour; an execution backend passes its own so the fan-out policy is
    owned in one place.
    """

    def __init__(self, config: Optional[DistanceEngineConfig] = None,
                 executor=None,
                 cache: Optional[PairDistanceCache] = None) -> None:
        self.config = config or DistanceEngineConfig()
        self.executor = executor
        if cache is not None:
            # Caller-supplied store (e.g. a cluster worker's persistent
            # cache behind a DeltaCache view); overrides the shared/private
            # policy below.
            self.cache = cache
        elif self.config.shared_cache and \
                self.config.cache_size == _SHARED_CACHE.maxsize:
            self.cache = _SHARED_CACHE
        else:
            # A non-default size means the caller really wants that bound;
            # honouring it on the process-wide cache would resize it for
            # everyone, so such engines get a private cache instead.
            self.cache = PairDistanceCache(maxsize=self.config.cache_size)
        self.stats = EngineStats()
        #: worker label -> aggregated stats absorbed from that worker
        #: (cluster backend attribution; empty for purely local engines).
        self.remote_worker_stats: Dict[str, EngineStats] = {}
        self._profiles: Dict[TokenString, PointProfile] = {}

    # -- profiles -------------------------------------------------------
    def profile(self, tokens: Sequence[str]) -> PointProfile:
        key = tuple(tokens)
        profile = self._profiles.get(key)
        if profile is None:
            if len(self._profiles) >= self.config.profile_cache_size:
                self._profiles.clear()
            profile = PointProfile(key, self.config.qgram_size)
            self._profiles[key] = profile
        return profile

    # -- remote aggregation --------------------------------------------
    def export_cache(self) -> List[Tuple[TokenString, TokenString, int]]:
        """The cache's exact distances, for shipping to another engine."""
        return self.cache.items()

    def absorb_remote(self, stats: Dict[str, int],
                      cache_entries: Iterable[
                          Tuple[TokenString, TokenString, int]] = (),
                      worker: Optional[str] = None) -> None:
        """Merge a remote engine's accounting and distances into this one.

        Used by the partition-parallel map: each worker clusters its
        partition on a fresh engine and sends back ``stats.as_dict()`` plus
        :meth:`export_cache`.  Aggregating the stats keeps the per-layer
        attribution identical to inline execution (the pairs were genuinely
        decided, just elsewhere), and seeding the cache lets the in-process
        reduce step reuse the map phase's exact distances.

        ``worker`` optionally names the remote worker that produced the
        stats (the cluster backend passes its lease's worker id); named
        contributions additionally aggregate per worker in
        :attr:`remote_worker_stats`, so a multi-machine run can report how
        much distance work each machine actually did.
        """
        delta = EngineStats(**stats)
        self.stats.add(delta)
        if worker is not None:
            per_worker = self.remote_worker_stats.get(worker)
            if per_worker is None:
                per_worker = self.remote_worker_stats[worker] = EngineStats()
            per_worker.add(delta)
        for a, b, distance in cache_entries:
            self.cache.put(a, b, distance)

    # -- single-pair queries -------------------------------------------
    def exact_distance(self, a: Sequence[str], b: Sequence[str]) -> int:
        """Exact (unbounded) token edit distance, memoized."""
        profile_a, profile_b = self.profile(a), self.profile(b)
        if profile_a.tokens == profile_b.tokens:
            return 0
        cached = self.cache.get(profile_a.tokens, profile_b.tokens)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.kernel_calls += 1
        if profile_a.length <= profile_b.length:
            distance = bitparallel_edit_distance(
                profile_a.tokens, profile_b.tokens, profile_a.mask)
        else:
            distance = bitparallel_edit_distance(
                profile_b.tokens, profile_a.tokens, profile_b.mask)
        self.cache.put(profile_a.tokens, profile_b.tokens, distance)
        return distance

    def within(self, a: Sequence[str], b: Sequence[str],
               epsilon: float) -> bool:
        """Whether the pair is within ``epsilon`` normalized distance.

        Decision-identical to ``TokenEditDistance.within``.
        """
        profile_a, profile_b = self.profile(a), self.profile(b)
        longest = max(profile_a.length, profile_b.length)
        if longest == 0:
            return True
        threshold = int(epsilon * longest)
        verdict, _ = decide_profiles(profile_a, profile_b, threshold,
                                      self.config, self.cache, self.stats)
        return verdict

    def distance(self, a: Sequence[str], b: Sequence[str],
                 max_normalized: Optional[float] = None) -> float:
        """Normalized distance in ``[0, 1]``.

        With ``max_normalized``, pairs provably beyond the threshold report
        ``1.0`` without exact work — mirroring
        ``normalized_edit_distance(..., max_normalized=...)``.
        """
        profile_a, profile_b = self.profile(a), self.profile(b)
        longest = max(profile_a.length, profile_b.length)
        if longest == 0:
            return 0.0
        if max_normalized is None:
            return self.exact_distance(a, b) / longest
        threshold = int(max_normalized * longest)
        verdict, exact = decide_profiles(profile_a, profile_b, threshold,
                                          self.config, self.cache, self.stats)
        if not verdict:
            return 1.0
        if exact is None:  # pragma: no cover - within verdicts carry a value
            exact = self.exact_distance(a, b)
        return exact / longest

    # -- batched queries ------------------------------------------------
    def neighbourhoods(self, points: Sequence[TokenString], epsilon: float
                       ) -> Tuple[List[List[int]], int]:
        """Adjacency lists of the epsilon-neighbourhood graph.

        Evaluates every unordered pair once (half the work of per-point
        neighbour queries) and fans chunks out over a process pool when the
        batch is large enough.  Returns ``(neighbours, comparisons)`` where
        ``neighbours[i]`` lists the indices within epsilon of point ``i`` in
        ascending order, excluding ``i`` itself.
        """
        count = len(points)
        adjacency: List[List[int]] = [[] for _ in range(count)]
        for i, j, verdict in self._decide_all_pairs(points, epsilon):
            if verdict:
                adjacency[i].append(j)
                adjacency[j].append(i)
        for neighbours in adjacency:
            neighbours.sort()
        return adjacency, count * (count - 1) // 2

    def pairs_within(self, points: Sequence[TokenString], epsilon: float
                     ) -> Tuple[List[Tuple[int, int]], int]:
        """All unordered index pairs within ``epsilon`` of each other."""
        count = len(points)
        hits = [(i, j) for i, j, verdict
                in self._decide_all_pairs(points, epsilon) if verdict]
        return hits, count * (count - 1) // 2

    def _decide_all_pairs(self, points: Sequence[TokenString], epsilon: float
                          ) -> Iterable[Tuple[int, int, bool]]:
        """Decide every unordered pair, streaming the verdicts.

        The serial path never materializes the pair list, so memory stays
        O(points + results); only the pool path accumulates the (much
        smaller) prefilter-surviving subset for chunking.
        """
        points = [tuple(point) for point in points]
        profiles = [self.profile(point) for point in points]
        pairs = itertools.combinations(range(len(points)), 2)
        count = len(points)
        total_pairs = count * (count - 1) // 2
        workers = self.config.effective_workers()
        if workers <= 1 or total_pairs < self.config.parallel_threshold:
            return self._decide_serial(profiles, pairs, epsilon)
        executor = self.executor
        if executor is None:
            # Standalone engines keep their historical process fan-out; the
            # import is lazy because repro.exec.process imports this module.
            from repro.exec.process import ProcessPairExecutor
            executor = self.executor = ProcessPairExecutor(
                seed=self.config.seed)
        return self._decide_with_executor(points, profiles, pairs, epsilon,
                                          executor)

    def _decide_serial(self, profiles: Sequence[PointProfile],
                       pairs: Iterable[Tuple[int, int]], epsilon: float
                       ) -> Iterable[Tuple[int, int, bool]]:
        for i, j in pairs:
            profile_a, profile_b = profiles[i], profiles[j]
            threshold = int(epsilon * max(profile_a.length, profile_b.length))
            verdict, _ = decide_profiles(profile_a, profile_b, threshold,
                                          self.config, self.cache, self.stats)
            yield i, j, verdict

    def _decide_with_executor(self, points: List[TokenString],
                              profiles: Sequence[PointProfile],
                              pairs: Iterable[Tuple[int, int]],
                              epsilon: float, executor
                              ) -> Iterable[Tuple[int, int, bool]]:
        # Resolve the O(1) layers (identity, length, cache) in-process,
        # streaming their verdicts; only pairs that might need counters or
        # the kernel accumulate for the executor.
        undecided: List[Tuple[int, int]] = []
        for i, j in pairs:
            profile_a, profile_b = profiles[i], profiles[j]
            threshold = int(epsilon * max(profile_a.length, profile_b.length))
            self.stats.pairs += 1
            if profile_a.tokens == profile_b.tokens:
                self.stats.identical += 1
                yield i, j, True
            elif self.config.length_filter and \
                    abs(profile_a.length - profile_b.length) > threshold:
                self.stats.length_pruned += 1
                yield i, j, False
            else:
                cached = self.cache.get(profile_a.tokens, profile_b.tokens)
                if cached is not None:
                    self.stats.cache_hits += 1
                    yield i, j, cached <= threshold
                else:
                    undecided.append((i, j))

        if len(undecided) < 2 * self.config.chunk_size:
            # Not enough left to amortize a fan-out; finish serially.  The
            # triage loop above already counted these pairs.
            self.stats.pairs -= len(undecided)
            yield from self._decide_serial(profiles, undecided, epsilon)
            return

        chunk_size = self.config.chunk_size
        chunks = [undecided[start:start + chunk_size]
                  for start in range(0, len(undecided), chunk_size)]
        for chunk_result, chunk_stats in executor.decide_chunks(
                points, chunks, epsilon, self.config):
            self.stats.add(EngineStats(**chunk_stats))
            self.stats.executor_pairs += len(chunk_result)
            for i, j, verdict, exact in chunk_result:
                if exact is not None:
                    self.cache.put(points[i], points[j], exact)
                yield i, j, verdict
