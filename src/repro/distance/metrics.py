"""Pluggable distance metrics used by the clustering layer.

The paper uses normalized token-string edit distance with a DBSCAN epsilon of
0.10.  We expose that as :class:`TokenEditDistance` and additionally provide a
cheap :class:`JaccardDistance` over token multisets, which the distributed
clustering layer uses as a pre-filter: Jaccard distance lower-bounds nothing
formally, but combined with the :func:`length_lower_bound` it cheaply rules
out pairs that cannot be within epsilon, avoiding quadratic banded-Levenshtein
work on obviously unrelated samples.
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Optional, Sequence, Tuple


def length_lower_bound(a: Sequence, b: Sequence) -> float:
    """Lower bound on the normalized edit distance from lengths alone.

    At least ``abs(len(a) - len(b))`` insertions or deletions are required, so
    the normalized distance is at least that difference divided by the longer
    length.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return abs(len(a) - len(b)) / longest


class DistanceMetric(abc.ABC):
    """Interface for distances between abstract token strings."""

    @abc.abstractmethod
    def distance(self, a: Tuple[str, ...], b: Tuple[str, ...]) -> float:
        """Return a distance in ``[0, 1]``."""

    def within(self, a: Tuple[str, ...], b: Tuple[str, ...],
               epsilon: float) -> bool:
        """Whether the two sequences are within ``epsilon`` of each other."""
        return self.distance(a, b) <= epsilon


class TokenEditDistance(DistanceMetric):
    """Normalized token edit distance with an optional banded cut-off.

    Parameters
    ----------
    epsilon:
        When provided, distances are only resolved exactly up to this
        threshold; anything beyond is reported as 1.0.  This matches how the
        clustering layer consumes the metric and makes all-pairs computation
        far cheaper.
    prefilter:
        When true (default), the length lower bound and a token-histogram
        lower bound are used to skip the dynamic program entirely for
        obviously distant pairs.
    """

    def __init__(self, epsilon: Optional[float] = None,
                 prefilter: bool = True) -> None:
        self.epsilon = epsilon
        self.prefilter = prefilter

    def distance(self, a: Tuple[str, ...], b: Tuple[str, ...]) -> float:
        from repro.distance.levenshtein import normalized_edit_distance

        if self.epsilon is not None and self.prefilter:
            if length_lower_bound(a, b) > self.epsilon:
                return 1.0
            if _histogram_lower_bound(a, b) > self.epsilon:
                return 1.0
        return normalized_edit_distance(a, b, max_normalized=self.epsilon)

    def within(self, a: Tuple[str, ...], b: Tuple[str, ...],
               epsilon: float) -> bool:
        from repro.distance.levenshtein import banded_edit_distance

        if self.prefilter and length_lower_bound(a, b) > epsilon:
            return False
        if self.prefilter and _histogram_lower_bound(a, b) > epsilon:
            return False
        longest = max(len(a), len(b))
        if longest == 0:
            return True
        max_distance = int(epsilon * longest)
        return banded_edit_distance(a, b, max_distance) is not None


class JaccardDistance(DistanceMetric):
    """1 - Jaccard similarity over token multisets (bag-of-tokens)."""

    def distance(self, a: Tuple[str, ...], b: Tuple[str, ...]) -> float:
        if not a and not b:
            return 0.0
        counter_a, counter_b = Counter(a), Counter(b)
        intersection = sum((counter_a & counter_b).values())
        union = sum((counter_a | counter_b).values())
        if union == 0:
            return 0.0
        return 1.0 - intersection / union


def _histogram_lower_bound(a: Sequence[str], b: Sequence[str]) -> float:
    """Lower bound on normalized edit distance from token histograms.

    Each edit operation changes the multiset of tokens by at most one element
    on each side, so half the L1 distance between histograms (rounded up via
    the max of surplus on either side) lower-bounds the edit distance.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    counter_a, counter_b = Counter(a), Counter(b)
    surplus_a = sum((counter_a - counter_b).values())
    surplus_b = sum((counter_b - counter_a).values())
    return max(surplus_a, surplus_b) / longest


def qgram_lower_bound(a: Sequence[str], b: Sequence[str],
                      q: int = 3) -> float:
    """Lower bound on normalized edit distance from q-gram multisets.

    A single edit operation touches at most ``q`` of a sequence's q-grams
    (the windows overlapping the edited position), so if ``d`` edits
    transform ``a`` into ``b``, at most ``d * q`` of ``a``'s q-grams are
    missing from ``b`` and vice versa.  The surplus divided by ``q`` is
    therefore a true lower bound on the edit distance — a sharper,
    position-sensitive refinement of the unigram histogram bound, and the
    third pruning layer of :class:`repro.distance.engine.DistanceEngine`.
    """
    if q < 1:
        raise ValueError("q must be positive")
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    grams_a = Counter(tuple(a[i:i + q]) for i in range(len(a) - q + 1))
    grams_b = Counter(tuple(b[i:i + q]) for i in range(len(b) - q + 1))
    surplus_a = sum((grams_a - grams_b).values())
    surplus_b = sum((grams_b - grams_a).values())
    return max(surplus_a, surplus_b) / (q * longest)
