"""Distance metrics over token strings.

Kizzle clusters samples by the edit distance between their abstract token
strings (paper, Section III-A).  This package provides a from-scratch
Levenshtein implementation over arbitrary hashable sequences, a banded
variant that exploits the DBSCAN epsilon threshold to prune work, and the
normalized distance used by the clustering layer.
"""

from repro.distance.levenshtein import (
    edit_distance,
    banded_edit_distance,
    normalized_edit_distance,
)
from repro.distance.metrics import (
    DistanceMetric,
    TokenEditDistance,
    JaccardDistance,
    length_lower_bound,
)

__all__ = [
    "edit_distance",
    "banded_edit_distance",
    "normalized_edit_distance",
    "DistanceMetric",
    "TokenEditDistance",
    "JaccardDistance",
    "length_lower_bound",
]
