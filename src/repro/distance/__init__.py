"""Distance metrics over token strings.

Kizzle clusters samples by the edit distance between their abstract token
strings (paper, Section III-A).  This package provides a from-scratch
Levenshtein implementation over arbitrary hashable sequences, a banded
variant that exploits the DBSCAN epsilon threshold to prune work, Myers'
bit-parallel exact kernel, and :class:`DistanceEngine` — the pruned,
memoized, parallel batch layer the clustering stack issues its queries
through.
"""

from repro.distance.bitparallel import (
    bitparallel_edit_distance,
    build_pattern_mask,
)
from repro.distance.engine import (
    DistanceEngine,
    DistanceEngineConfig,
    EngineStats,
    PairDistanceCache,
)
from repro.distance.levenshtein import (
    edit_distance,
    banded_edit_distance,
    normalized_edit_distance,
)
from repro.distance.metrics import (
    DistanceMetric,
    TokenEditDistance,
    JaccardDistance,
    length_lower_bound,
    qgram_lower_bound,
)

__all__ = [
    "edit_distance",
    "banded_edit_distance",
    "normalized_edit_distance",
    "bitparallel_edit_distance",
    "build_pattern_mask",
    "DistanceEngine",
    "DistanceEngineConfig",
    "EngineStats",
    "PairDistanceCache",
    "DistanceMetric",
    "TokenEditDistance",
    "JaccardDistance",
    "length_lower_bound",
    "qgram_lower_bound",
]
