"""Signature creation (paper, Section III-C).

For each malicious cluster, Kizzle finds the longest token subsequence (up to
200 tokens) common to and unique in every packed sample of the cluster,
collects the concrete strings observed at each token offset, and generalizes
offsets that vary across samples into regular-expression character classes
drawn from a small template set.  The result is an AV-style regex signature
that can be matched against scanner-normalized sample text.
"""

from repro.signatures.subsequence import (
    common_token_window,
    CommonWindow,
)
from repro.signatures.alignment import TokenColumn, align_cluster
from repro.signatures.regexgen import (
    REGEX_TEMPLATES,
    generalize_column,
    build_pattern,
)
from repro.signatures.signature import Signature
from repro.signatures.compiler import SignatureCompiler, SignatureConfig
from repro.signatures.multiwindow import (
    MultiWindowCompiler,
    MultiWindowConfig,
    MultiWindowSignature,
    common_token_windows,
)

__all__ = [
    "common_token_window",
    "CommonWindow",
    "TokenColumn",
    "align_cluster",
    "REGEX_TEMPLATES",
    "generalize_column",
    "build_pattern",
    "Signature",
    "SignatureCompiler",
    "SignatureConfig",
    "MultiWindowCompiler",
    "MultiWindowConfig",
    "MultiWindowSignature",
    "common_token_windows",
]
