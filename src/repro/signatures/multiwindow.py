"""Multi-window signatures (paper, Section V "Deployment and avoidance").

The paper notes that an attacker aware of the signature-creation algorithm
could insert a random number of superfluous JavaScript statements between the
relevant operations of the packer, so that no single long consecutive token
sequence is shared by all samples.  The proposed counter-measure — sketched
as future work — is to "create signatures which not only match one
consecutive token sequence, but rather consist of multiple, shorter
sequences".

This module implements that extension:

* :func:`common_token_windows` greedily extracts several *disjoint* common
  unique windows (each found with the same binary-search machinery as the
  single-window algorithm) until either the requested number of windows is
  reached or no sufficiently long window remains;
* :class:`MultiWindowSignature` holds one regex fragment per window and
  matches a sample when all fragments match *in order*;
* :class:`MultiWindowCompiler` mirrors
  :class:`~repro.signatures.compiler.SignatureCompiler` for the multi-window
  format.

The evasion benchmark (``benchmarks/test_ablation_evasion.py``) shows the
point of the extension: junk-statement insertion destroys single-window
signatures but leaves multi-window signatures effective.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.jstoken.normalizer import tokenize_sample
from repro.signatures.alignment import TokenColumn, abstract_of, \
    normalize_token_value
from repro.signatures.regexgen import build_pattern
from repro.signatures.subsequence import CommonWindow, common_token_window


@dataclass
class WindowSlice:
    """One extracted window plus its per-sample positions."""

    window: CommonWindow
    columns: List[TokenColumn]


def _mask_window(token_strings: List[List[str]], window: CommonWindow,
                 mask_token: str = "@@MASKED@@") -> None:
    """Overwrite an extracted window with mask tokens in every sample so the
    next extraction round cannot reuse any part of it."""
    for sample_index, start in enumerate(window.positions):
        tokens = token_strings[sample_index]
        for offset in range(window.length):
            tokens[start + offset] = f"{mask_token}{sample_index}:{start + offset}"


def common_token_windows(token_strings: Sequence[Sequence[str]],
                         max_windows: int = 4,
                         max_tokens_per_window: int = 60,
                         min_tokens_per_window: int = 6
                         ) -> List[CommonWindow]:
    """Extract up to ``max_windows`` disjoint common unique windows.

    Windows are extracted greedily, longest first; after each extraction the
    window's tokens are masked out (with per-sample-unique placeholders) so
    later windows cannot overlap it.  Windows shorter than
    ``min_tokens_per_window`` stop the extraction.
    """
    working = [list(tokens) for tokens in token_strings]
    windows: List[CommonWindow] = []
    for _round in range(max_windows):
        window = common_token_window(working,
                                     max_tokens=max_tokens_per_window)
        if window is None or window.length < min_tokens_per_window:
            break
        windows.append(window)
        _mask_window(working, window)
    return windows


@dataclass
class MultiWindowSignature:
    """A signature made of several ordered regex fragments.

    A sample matches when the fragments that match the scanner-normalized
    text — in fragment order — cover at least ``min_coverage`` of the
    signature's total window tokens.  With the default ``min_coverage`` of
    1.0 every fragment must match in order (fragments are extracted
    left-to-right from the first cluster sample, so order is a real
    constraint, not an artifact).

    The compiler lowers ``min_coverage`` below 1.0: an attacker who
    re-randomizes junk placement can land a statement inside *one* window of
    a fresh variant, and requiring every window would hand back the evasion
    the multi-window format exists to stop.  Tolerating a small missing
    minority of window tokens keeps detection while benign samples — which
    match essentially no windows — stay far below any reasonable threshold.
    """

    kit: str
    fragments: List[str]
    created: datetime.date
    token_lengths: List[int] = field(default_factory=list)
    source: str = "kizzle-multiwindow"
    min_coverage: float = 1.0
    _compiled: Optional[List[re.Pattern]] = field(default=None, repr=False,
                                                  compare=False)

    @property
    def compiled(self) -> List[re.Pattern]:
        if self._compiled is None:
            self._compiled = [re.compile(fragment, re.DOTALL)
                              for fragment in self.fragments]
        return self._compiled

    @property
    def length(self) -> int:
        """Total signature length in characters across all fragments."""
        return sum(len(fragment) for fragment in self.fragments)

    @property
    def window_count(self) -> int:
        return len(self.fragments)

    def matches(self, normalized_text: str) -> bool:
        """Whether enough fragments match, in order.

        Fragments are scanned left to right; a fragment that does not match
        after the previous hit is skipped (its window tokens count as
        missed) and the scan continues with the next fragment from the same
        position.  The sample matches when the matched windows cover at
        least ``min_coverage`` of the total window tokens.
        """
        if not self.fragments:
            # Degenerate signature: keep the pre-coverage semantics where
            # an empty fragment loop vacuously matched.
            return True
        # When per-window token counts are unavailable (hand-built
        # signatures), weight every fragment equally.
        weights = self.token_lengths \
            if len(self.token_lengths) == len(self.fragments) \
            else [1] * len(self.fragments)
        total = sum(weights)
        required = self.min_coverage * total
        matched = 0.0
        remaining = float(total)
        position = 0
        for pattern, weight in zip(self.compiled, weights):
            match = pattern.search(normalized_text, position)
            if match is not None:
                position = match.end()
                matched += weight
            remaining -= weight
            if matched >= required:
                return True
            if matched + remaining < required:
                return False
        return matched >= required

    def matches_sample(self, content: str) -> bool:
        from repro.scanner.normalizer import normalize_for_scan

        return self.matches(normalize_for_scan(content))


@dataclass
class MultiWindowConfig:
    """Knobs of the multi-window compiler."""

    max_windows: int = 4
    max_tokens_per_window: int = 60
    min_tokens_per_window: int = 6
    min_total_tokens: int = 18
    use_backreferences: bool = False
    length_slack: float = 0.25
    #: Fraction of total window tokens that must match (in order) for a
    #: sample to count as detected.  Below 1.0 the signature survives junk
    #: re-randomization landing inside a single window; benign samples match
    #: essentially no windows, so false positives stay at zero.
    min_coverage: float = 0.75


class MultiWindowCompiler:
    """Compiles multi-window signatures from a cluster of packed samples."""

    def __init__(self, config: Optional[MultiWindowConfig] = None) -> None:
        self.config = config or MultiWindowConfig()

    def compile_cluster(self, contents: Sequence[str], kit: str,
                        created: datetime.date
                        ) -> Optional[MultiWindowSignature]:
        """Compile a multi-window signature, or ``None`` if the cluster does
        not share enough structure."""
        if not contents:
            return None
        token_lists = [tokenize_sample(content) for content in contents]
        abstract_strings = [[abstract_of(token) for token in tokens]
                            for tokens in token_lists]
        windows = common_token_windows(
            abstract_strings,
            max_windows=self.config.max_windows,
            max_tokens_per_window=self.config.max_tokens_per_window,
            min_tokens_per_window=self.config.min_tokens_per_window)
        if not windows:
            return None
        total_tokens = sum(window.length for window in windows)
        if total_tokens < self.config.min_total_tokens:
            return None

        # Order fragments by their position in the first sample so the
        # in-order matching constraint reflects the sample layout.
        windows.sort(key=lambda window: window.positions[0])
        fragments: List[str] = []
        token_lengths: List[int] = []
        for window in windows:
            columns = self._columns_for(window, token_lists)
            fragments.append(build_pattern(
                columns,
                use_backreferences=self.config.use_backreferences,
                length_slack=self.config.length_slack))
            token_lengths.append(window.length)
        return MultiWindowSignature(kit=kit, fragments=fragments,
                                    created=created,
                                    token_lengths=token_lengths,
                                    min_coverage=self.config.min_coverage)

    @staticmethod
    def _columns_for(window: CommonWindow, token_lists) -> List[TokenColumn]:
        columns = [TokenColumn(offset=offset, token_class=window.window[offset])
                   for offset in range(window.length)]
        for sample_index, start in enumerate(window.positions):
            tokens = token_lists[sample_index]
            for offset in range(window.length):
                columns[offset].values.append(
                    normalize_token_value(tokens[start + offset]))
        return columns
