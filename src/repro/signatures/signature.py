"""The signature model."""

from __future__ import annotations

import datetime
import re
import zlib
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Signature:
    """A compiled AV-style signature.

    Attributes
    ----------
    kit:
        The exploit-kit family the signature targets.
    pattern:
        The regular expression, written against scanner-normalized text
        (whitespace-free, quote-free; see :mod:`repro.scanner.normalizer`).
    created:
        The date the signature was generated (drives Figure 12).
    token_length:
        Number of tokens in the common window the signature was built from.
    source:
        ``"kizzle"`` for generated signatures, ``"manual"`` for the simulated
        hand-written AV baseline.
    """

    kit: str
    pattern: str
    created: datetime.date
    token_length: int = 0
    source: str = "kizzle"
    signature_id: str = ""
    _compiled: Optional[re.Pattern] = field(default=None, repr=False,
                                            compare=False)
    _anchor: Optional[str] = field(default=None, repr=False, compare=False)
    _anchor_known: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.signature_id:
            digest = zlib.crc32(self.pattern.encode("utf-8")) % 10**6
            self.signature_id = (f"{self.kit}-{self.source}-"
                                 f"{self.created.isoformat()}-{digest:06d}")

    @property
    def compiled(self) -> re.Pattern:
        """The compiled regex (compiled lazily and cached)."""
        if self._compiled is None:
            self._compiled = re.compile(self.pattern, re.DOTALL)
        return self._compiled

    @property
    def literal_anchor(self) -> Optional[str]:
        """The longest required literal of the pattern, or ``None``.

        Any text this signature matches must contain the anchor as a
        contiguous substring (see :mod:`repro.signatures.anchors`), so a
        scanner can reject a sample with one C-level ``in`` check before
        paying for the full regex.  ``None`` means no usable anchor exists
        and the signature must always be evaluated in full.
        """
        if not self._anchor_known:
            from repro.signatures.anchors import best_anchor

            self._anchor = best_anchor(self.pattern)
            self._anchor_known = True
        return self._anchor

    def could_match(self, normalized_text: str) -> bool:
        """Cheap necessary condition for :meth:`matches`.

        ``False`` proves the signature cannot match; ``True`` means the full
        regex must decide.
        """
        anchor = self.literal_anchor
        return anchor is None or anchor in normalized_text

    @property
    def length(self) -> int:
        """Signature length in characters (the Figure 12 metric)."""
        return len(self.pattern)

    def matches(self, normalized_text: str) -> bool:
        """Whether the signature matches already-normalized sample text."""
        return self.compiled.search(normalized_text) is not None

    def matches_sample(self, content: str) -> bool:
        """Whether the signature matches a raw sample (normalizing first)."""
        from repro.scanner.normalizer import normalize_for_scan

        return self.matches(normalize_for_scan(content))
