"""Finding the longest common unique token window across a cluster.

The paper's algorithm: binary search over the window length ``N`` (capped at
200 tokens), where a length is feasible if some consecutive token sequence of
that length appears in *every* sample of the cluster and is *unique* within
each sample (Section III-C).  The search is done over abstract token strings
(class names plus concrete keywords/punctuation), since identifier spellings
differ between samples.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Hard cap on the window length, from the paper.
MAX_WINDOW_TOKENS = 200


@dataclass
class CommonWindow:
    """A common unique token window.

    Attributes
    ----------
    length:
        Number of tokens in the window.
    positions:
        For each sample (in input order), the start offset of the window's
        unique occurrence in that sample's token string.
    window:
        The abstract token sequence of the window itself.
    """

    length: int
    positions: List[int]
    window: Tuple[str, ...]


def _ngram_positions(tokens: Sequence[str], length: int
                     ) -> Dict[Tuple[str, ...], List[int]]:
    """Positions of every n-gram of the given length in a token string."""
    table: Dict[Tuple[str, ...], List[int]] = defaultdict(list)
    for start in range(0, len(tokens) - length + 1):
        table[tuple(tokens[start:start + length])].append(start)
    return table


def _find_window_of_length(token_strings: Sequence[Sequence[str]],
                           length: int) -> Optional[CommonWindow]:
    """A window of exactly ``length`` tokens common to and unique in every
    sample, or ``None``.

    Candidates are taken from the shortest sample (fewest n-grams) and
    validated against all others.  When several windows qualify, the one
    starting earliest in the first sample is chosen, which keeps signature
    generation deterministic.
    """
    if length <= 0:
        return None
    if any(len(tokens) < length for tokens in token_strings):
        return None

    anchor_index = min(range(len(token_strings)),
                       key=lambda index: len(token_strings[index]))
    anchor_table = _ngram_positions(token_strings[anchor_index], length)
    candidates = [window for window, positions in anchor_table.items()
                  if len(positions) == 1]
    if not candidates:
        return None

    tables = [_ngram_positions(tokens, length) if index != anchor_index
              else anchor_table
              for index, tokens in enumerate(token_strings)]

    best: Optional[CommonWindow] = None
    for window in candidates:
        positions: List[int] = []
        unique_everywhere = True
        for table in tables:
            occurrences = table.get(window)
            if not occurrences or len(occurrences) != 1:
                unique_everywhere = False
                break
            positions.append(occurrences[0])
        if not unique_everywhere:
            continue
        candidate = CommonWindow(length=length, positions=positions,
                                 window=window)
        if best is None or candidate.positions[0] < best.positions[0]:
            best = candidate
    return best


def common_token_window(token_strings: Sequence[Sequence[str]],
                        max_tokens: int = MAX_WINDOW_TOKENS
                        ) -> Optional[CommonWindow]:
    """Longest common unique token window across all samples.

    Binary search over the window length, as in the paper.  The feasibility
    predicate is not perfectly monotone (a unique long window may exist while
    some shorter length has every candidate duplicated), but in practice —
    and in the paper's algorithm — the binary search converges on a good
    window; we additionally fall back to a short linear probe below the
    smallest infeasible length found.
    """
    if not token_strings:
        return None
    if any(len(tokens) == 0 for tokens in token_strings):
        return None

    upper_bound = min(max_tokens, min(len(tokens) for tokens in token_strings))
    low, high = 1, upper_bound
    best: Optional[CommonWindow] = None
    while low <= high:
        middle = (low + high) // 2
        found = _find_window_of_length(token_strings, middle)
        if found is not None:
            best = found
            low = middle + 1
        else:
            high = middle - 1

    if best is None:
        # Linear probe over small lengths in case the binary search was
        # unlucky with non-monotonicity near the bottom.
        for length in range(min(8, upper_bound), 0, -1):
            found = _find_window_of_length(token_strings, length)
            if found is not None:
                return found
        return None
    return best
