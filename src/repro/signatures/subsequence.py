"""Finding the longest common unique token window across a cluster.

The paper's algorithm: binary search over the window length ``N`` (capped at
200 tokens), where a length is feasible if some consecutive token sequence of
that length appears in *every* sample of the cluster and is *unique* within
each sample (Section III-C).  The search is done over abstract token strings
(class names plus concrete keywords/punctuation), since identifier spellings
differ between samples.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Hard cap on the window length, from the paper.
MAX_WINDOW_TOKENS = 200


@dataclass
class CommonWindow:
    """A common unique token window.

    Attributes
    ----------
    length:
        Number of tokens in the window.
    positions:
        For each sample (in input order), the start offset of the window's
        unique occurrence in that sample's token string.
    window:
        The abstract token sequence of the window itself.
    """

    length: int
    positions: List[int]
    window: Tuple[str, ...]


#: Rolling-hash parameters (61-bit Mersenne prime modulus keeps products in
#: native int range while making cross-n-gram collisions vanishingly rare).
_HASH_MOD = (1 << 61) - 1
_HASH_BASE = 1_000_003


def _token_ids(token_strings: Sequence[Sequence[str]]
               ) -> List[List[int]]:
    """Map every token to a small integer, consistently across samples."""
    vocabulary: Dict[str, int] = {}
    ids: List[List[int]] = []
    for tokens in token_strings:
        row: List[int] = []
        for token in tokens:
            identifier = vocabulary.get(token)
            if identifier is None:
                identifier = vocabulary[token] = len(vocabulary) + 1
            row.append(identifier)
        ids.append(row)
    return ids


def _ngram_positions(tokens: Sequence[int], length: int
                     ) -> Dict[int, List[int]]:
    """Positions of every n-gram of the given length, keyed by rolling hash.

    O(len(tokens)) regardless of ``length`` — the previous implementation
    materialized a length-``length`` tuple per position, which made the
    binary search in :func:`common_token_window` quadratic in the window
    cap and dominated signature compilation.
    """
    table: Dict[int, List[int]] = defaultdict(list)
    count = len(tokens)
    if length <= 0 or count < length:
        return table
    power = pow(_HASH_BASE, length - 1, _HASH_MOD)
    value = 0
    for index in range(count):
        value = (value * _HASH_BASE + tokens[index]) % _HASH_MOD
        if index >= length - 1:
            start = index - length + 1
            table[value].append(start)
            value = (value - tokens[start] * power) % _HASH_MOD
    return table


def _find_window_of_length(token_strings: Sequence[Sequence[str]],
                           length: int,
                           id_strings: Optional[Sequence[Sequence[int]]] = None
                           ) -> Optional[CommonWindow]:
    """A window of exactly ``length`` tokens common to and unique in every
    sample, or ``None``.

    Uniqueness and membership are decided on rolling hashes; the accepted
    window is verified token-for-token at every claimed position, so a hash
    collision can only cause a (vanishingly unlikely) rejection, never a
    wrong window.  When several windows qualify, the one starting earliest
    in the first sample is chosen — candidate starts are probed in first-
    sample order with an early exit, which keeps signature generation
    deterministic and usually stops after a handful of probes.
    """
    if length <= 0:
        return None
    if any(len(tokens) < length for tokens in token_strings):
        return None
    if id_strings is None:
        id_strings = _token_ids(token_strings)

    tables = [_ngram_positions(ids, length) for ids in id_strings]
    first_ids = id_strings[0]
    power = pow(_HASH_BASE, length - 1, _HASH_MOD)
    value = 0
    for index in range(len(first_ids)):
        value = (value * _HASH_BASE + first_ids[index]) % _HASH_MOD
        if index < length - 1:
            continue
        start = index - length + 1
        candidate_hash = value
        value = (value - first_ids[start] * power) % _HASH_MOD

        positions: List[int] = []
        unique_everywhere = True
        for table in tables:
            occurrences = table.get(candidate_hash)
            if not occurrences or len(occurrences) != 1:
                unique_everywhere = False
                break
            positions.append(occurrences[0])
        if not unique_everywhere:
            continue
        window = tuple(token_strings[0][start:start + length])
        if all(tuple(token_strings[sample][position:position + length])
               == window
               for sample, position in enumerate(positions)):
            return CommonWindow(length=length, positions=positions,
                                window=window)
    return None


def common_token_window(token_strings: Sequence[Sequence[str]],
                        max_tokens: int = MAX_WINDOW_TOKENS
                        ) -> Optional[CommonWindow]:
    """Longest common unique token window across all samples.

    Binary search over the window length, as in the paper.  The feasibility
    predicate is not perfectly monotone (a unique long window may exist while
    some shorter length has every candidate duplicated), but in practice —
    and in the paper's algorithm — the binary search converges on a good
    window; we additionally fall back to a short linear probe below the
    smallest infeasible length found.
    """
    if not token_strings:
        return None
    if any(len(tokens) == 0 for tokens in token_strings):
        return None

    upper_bound = min(max_tokens, min(len(tokens) for tokens in token_strings))
    id_strings = _token_ids(token_strings)
    low, high = 1, upper_bound
    best: Optional[CommonWindow] = None
    while low <= high:
        middle = (low + high) // 2
        found = _find_window_of_length(token_strings, middle,
                                       id_strings=id_strings)
        if found is not None:
            best = found
            low = middle + 1
        else:
            high = middle - 1

    if best is None:
        # Linear probe over small lengths in case the binary search was
        # unlucky with non-monotonicity near the bottom.
        for length in range(min(8, upper_bound), 0, -1):
            found = _find_window_of_length(token_strings, length,
                                           id_strings=id_strings)
            if found is not None:
                return found
        return None
    return best
