"""Required-literal extraction from signature regexes.

A Kizzle signature is a concatenation of per-column fragments: constant
columns become ``re.escape``-d literals, varying columns become character
classes with quantifiers (:mod:`repro.signatures.regexgen`).  There is no
top-level alternation, so every *unconditionally present* literal run is a
**required substring**: any text the pattern matches must contain that run
contiguously.

The scan prefilter exploits this: before paying for a full regex evaluation
(or, worse, for normalizing a sample at all), the scanner checks whether the
signature's longest required literal occurs in the cheaply normalized text
with a C-level ``in``.  A miss proves the signature cannot match; a hit
falls through to the real regex, so the prefilter never changes verdicts.

Extraction is deliberately conservative: anything that is not provably a
required literal (group constructs, classes, quantified atoms, anchors,
backreferences) simply breaks the current run, and any alternation anywhere
disables extraction for the whole pattern.  A pattern with no sufficiently
long run yields no anchor and is always evaluated in full.
"""

from __future__ import annotations

from typing import List, Optional

#: Characters with special meaning outside character classes.
_META = set("\\^$.|?*+()[]{}")

#: Escapes that denote a single literal character (``\\.`` -> ``.``).  Class
#: shorthands (``\\d``, ``\\w``, ``\\s``...), anchors (``\\b``, ``\\A``...)
#: and numeric backreferences are deliberately absent.
_LITERAL_ESCAPES = set("\\^$.|?*+()[]{}-/ #&~\"'`!%,:;<=>@_")


def required_literals(pattern: str, min_length: int = 1) -> List[str]:
    """Literal runs that every match of ``pattern`` must contain.

    Returns the runs (in pattern order) whose length is at least
    ``min_length``.  The extraction walks the pattern once; any construct it
    does not positively recognize as a required single character ends the
    current run, so the result errs toward fewer/shorter anchors, never
    toward an unsound one.  A pattern containing ``|`` anywhere returns no
    literals at all (without tracking group nesting, nothing around an
    alternation is provably required).
    """
    if "|" in pattern:
        return []
    runs: List[str] = []
    current: List[str] = []
    #: Stack of (runs-length-at-open, body_required) per open group; if the
    #: group turns out to be quantified (or is an assertion), every run found
    #: inside it is discarded when it closes.
    group_stack: List[List[object]] = []
    index = 0
    length = len(pattern)

    def flush(drop_last: bool = False) -> None:
        if drop_last and current:
            current.pop()
        if current:
            runs.append("".join(current))
        del current[:]

    while index < length:
        character = pattern[index]
        if character == "\\" and index + 1 < length:
            escape = pattern[index + 1]
            if escape in _LITERAL_ESCAPES:
                current.append(escape)
                index += 2
                # A quantifier after an escaped literal quantifies only that
                # character: drop it from the run and skip the quantifier.
                if index < length and pattern[index] in "?*+{":
                    flush(drop_last=True)
                    index = _skip_quantifier(pattern, index)
                continue
            # Class shorthand, anchor escape, or numeric backreference:
            # not a required literal.
            flush()
            index += 2
            continue
        if character not in _META:
            current.append(character)
            index += 1
            if index < length and pattern[index] in "?*+{":
                flush(drop_last=True)
                index = _skip_quantifier(pattern, index)
            continue
        if character == "[":
            flush()
            index = _skip_class(pattern, index)
            if index < length and pattern[index] in "?*+{":
                index = _skip_quantifier(pattern, index)
            continue
        if character == "(":
            flush()
            next_index, body_required = _skip_group_header(pattern, index)
            if next_index > index + 1 and pattern[next_index - 1] == ")":
                # Whole construct consumed (e.g. a (?P=name) backreference):
                # nothing to track.
                index = next_index
                continue
            group_stack.append([len(runs), body_required])
            index = next_index
            continue
        if character == ")":
            flush()
            index += 1
            quantified = index < length and pattern[index] in "?*+{"
            if quantified:
                index = _skip_quantifier(pattern, index)
            if group_stack:
                mark, body_required = group_stack.pop()
                if quantified or not body_required:
                    del runs[mark:]
            continue
        # ``.``, ``^``, ``$``, stray quantifiers: break the run.  A stray
        # quantifier here follows a non-literal atom, already excluded.
        flush()
        index = _skip_quantifier(pattern, index) \
            if character in "?*+{" else index + 1
    flush()
    if group_stack:
        # Unbalanced pattern; trust nothing found inside the open groups.
        del runs[group_stack[0][0]:]
    return [run for run in runs if len(run) >= min_length]


def _skip_quantifier(pattern: str, index: int) -> int:
    """Index just past the quantifier starting at ``index``."""
    if pattern[index] == "{":
        closing = pattern.find("}", index)
        index = (closing + 1) if closing != -1 else len(pattern)
    else:
        index += 1
    if index < len(pattern) and pattern[index] == "?":  # non-greedy suffix
        index += 1
    return index


def _skip_class(pattern: str, start: int) -> int:
    """Index just past the character class opening at ``start``."""
    index = start + 1
    if index < len(pattern) and pattern[index] == "^":
        index += 1
    if index < len(pattern) and pattern[index] == "]":
        index += 1
    while index < len(pattern):
        if pattern[index] == "\\":
            index += 2
            continue
        if pattern[index] == "]":
            return index + 1
        index += 1
    return len(pattern)


def _skip_group_header(pattern: str, start: int) -> "tuple":
    """``(index, body_required)`` for the group syntax opening at ``start``.

    For ``(?P=name)`` (a backreference spelled as a group) the whole
    construct is consumed (the returned index points past its ``)``).  For
    ordinary, ``(?P<name>`` and ``(?:`` groups only the header is skipped
    and ``body_required`` is true: the body is unconditionally present in
    any match (the pattern has no alternation by the time this runs), so its
    literals remain required unless the group turns out to be quantified.
    Assertions (``(?=``, ``(?!``, lookbehinds) and anything unrecognized
    return ``body_required = False`` — their body text is not part of the
    match.
    """
    index = start + 1
    if index >= len(pattern) or pattern[index] != "?":
        return index, True
    index += 1
    if pattern.startswith("P=", index):
        closing = pattern.find(")", index)
        return ((closing + 1) if closing != -1 else len(pattern)), True
    if pattern.startswith("P<", index):
        closing = pattern.find(">", index)
        return ((closing + 1) if closing != -1 else len(pattern)), True
    if pattern.startswith(":", index):
        return index + 1, True
    # (?=, (?!, (?<=, (?<!, inline flags, conditionals...
    while index < len(pattern) and pattern[index] not in ":)>=!":
        index += 1
    return (index + 1 if index < len(pattern) else index), False


def best_anchor(pattern: str, min_length: int = 8) -> Optional[str]:
    """The longest required literal of ``pattern``, or ``None``.

    ``None`` means the pattern offers no usable anchor (too dynamic or too
    short) and must always be evaluated in full.
    """
    literals = required_literals(pattern, min_length=min_length)
    if not literals:
        return None
    return max(literals, key=len)
