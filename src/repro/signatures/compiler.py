"""End-to-end signature compilation from a malicious cluster."""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.signatures.alignment import align_cluster
from repro.signatures.regexgen import build_pattern
from repro.signatures.signature import Signature
from repro.signatures.subsequence import MAX_WINDOW_TOKENS


@dataclass
class SignatureConfig:
    """Knobs of the signature generator.

    ``max_window_tokens`` is the paper's 200-token cap; ``min_window_tokens``
    implements "short sequences are discarded"; ``use_backreferences``
    controls the named-group tying of co-varying offsets; ``length_slack``
    widens observed length bounds (see
    :func:`repro.signatures.regexgen.generalize_column`).
    """

    max_window_tokens: int = MAX_WINDOW_TOKENS
    min_window_tokens: int = 10
    use_backreferences: bool = True
    #: Fractional slack applied to observed length bounds when generalizing
    #: varying columns.  0.0 reproduces the paper exactly (bounds equal to
    #: the observed lengths); the default 0.25 compensates for the much
    #: smaller cluster sizes of the synthetic stream.
    length_slack: float = 0.25


class SignatureCompiler:
    """Compiles a signature from the packed samples of one cluster.

    ``tokenizer`` optionally replaces the default lexer call with a cached
    one (the incremental pipeline passes its
    :class:`~repro.core.prepared.PreparedCache` token table, so compiling a
    signature from already-clustered members costs no extra lexing).
    """

    def __init__(self, config: Optional[SignatureConfig] = None,
                 tokenizer=None) -> None:
        self.config = config or SignatureConfig()
        self.tokenizer = tokenizer
        #: Telemetry for the compile stage: signatures emitted versus
        #: clusters rejected for lacking a long-enough common window.
        self.compiled_count = 0
        self.rejected_count = 0

    def compile_cluster(self, contents: Sequence[str], kit: str,
                        created: datetime.date) -> Optional[Signature]:
        """Generate a signature for a cluster labeled as ``kit``.

        Returns ``None`` when the cluster has no sufficiently long common
        unique token window (the paper discards short sequences rather than
        emit an imprecise signature).
        """
        if not contents:
            self.rejected_count += 1
            return None
        columns = align_cluster(list(contents),
                                max_tokens=self.config.max_window_tokens,
                                tokenizer=self.tokenizer)
        if columns is None or len(columns) < self.config.min_window_tokens:
            self.rejected_count += 1
            return None
        pattern = build_pattern(columns,
                                use_backreferences=self.config.use_backreferences,
                                length_slack=self.config.length_slack)
        self.compiled_count += 1
        return Signature(kit=kit, pattern=pattern, created=created,
                         token_length=len(columns), source="kizzle")
