"""Aligning cluster samples on the common window and collecting per-offset
concrete values (paper, Figure 9).

Once the common token window is known, every sample contributes its concrete
source text at each token offset of the window.  String-literal quotes are
stripped at this point because AV scanners normalize them away before
matching (Section III-C), and the signature must match the normalized form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.jstoken.normalizer import tokenize_sample
from repro.jstoken.tokens import Token, TokenClass
from repro.signatures.subsequence import CommonWindow, common_token_window


@dataclass
class TokenColumn:
    """The concrete values observed at one token offset of the window."""

    offset: int
    token_class: str
    values: List[str] = field(default_factory=list)

    @property
    def distinct_values(self) -> List[str]:
        seen = []
        for value in self.values:
            if value not in seen:
                seen.append(value)
        return seen

    @property
    def is_constant(self) -> bool:
        return len(self.distinct_values) == 1


def normalize_token_value(token: Token) -> str:
    """The scanner-normalized concrete text of a token.

    Quotes around string literals (and backticks around templates) are
    removed; everything else is passed through unchanged.
    """
    value = token.value
    if token.cls is TokenClass.STRING and len(value) >= 2 \
            and value[0] in "'\"" and value[-1] == value[0]:
        return value[1:-1]
    if token.cls is TokenClass.TEMPLATE and len(value) >= 2 \
            and value[0] == "`" and value[-1] == "`":
        return value[1:-1]
    return value


def abstract_of(token: Token) -> str:
    """The abstract spelling used for window search (mirrors
    :func:`repro.jstoken.normalizer.abstract_token_string`)."""
    if token.cls in (TokenClass.KEYWORD, TokenClass.PUNCTUATION):
        return token.value
    cls = token.cls
    if cls in (TokenClass.NUMBER, TokenClass.REGEX, TokenClass.TEMPLATE):
        cls = TokenClass.STRING
    return cls.value


def align_cluster(contents: Sequence[str],
                  max_tokens: int = 200,
                  window: Optional[CommonWindow] = None,
                  tokenizer=None
                  ) -> Optional[List[TokenColumn]]:
    """Tokenize the cluster's samples, find the common window and build the
    per-offset value columns.

    Returns ``None`` when no common unique window exists.  A pre-computed
    ``window`` may be supplied (e.g. by the compiler, which also needs the
    window metadata); it must have been computed over the same contents.
    ``tokenizer`` overrides :func:`tokenize_sample` — the incremental
    pipeline passes its per-content token cache so cluster members that were
    already tokenized for clustering are not lexed a second time here.
    """
    tokenizer = tokenizer or tokenize_sample
    token_lists: List[List[Token]] = [tokenizer(content)
                                      for content in contents]
    abstract_strings = [[abstract_of(token) for token in tokens]
                        for tokens in token_lists]
    if window is None:
        window = common_token_window(abstract_strings, max_tokens=max_tokens)
    if window is None:
        return None

    columns: List[TokenColumn] = [
        TokenColumn(offset=offset, token_class=window.window[offset])
        for offset in range(window.length)
    ]
    for sample_index, start in enumerate(window.positions):
        tokens = token_lists[sample_index]
        for offset in range(window.length):
            token = tokens[start + offset]
            columns[offset].values.append(normalize_token_value(token))
    return columns
