"""Regular-expression generalization of aligned token columns.

For each token offset of the common window the signature either pins the
concrete value (when all samples agree) or generalizes to a character-class
template with length bounds (paper, Section III-C: "We compute an expression
that will accept strings of the observed lengths, and containing the
characters observed, by drawing on a predefined set of common patterns such
as ``[a-z]+``, ``[a-zA-Z0-9]+``, etc.").

Offsets whose values co-vary perfectly across samples (the same randomized
identifier reused later in the code) are tied together with named groups and
backreferences, which is what produces the ``var1``/``var2`` references the
paper shows in the Nuclear signature of Figure 10(a).  The paper's signatures
use .NET syntax (``\\k<var1>``); since our scanning engine is Python ``re``,
groups are emitted as ``(?P<varN>...)`` and references as ``(?P=varN)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.signatures.alignment import TokenColumn


@dataclass(frozen=True)
class RegexTemplate:
    """A character-class template with a compiled matcher for validation."""

    name: str
    character_class: str

    def accepts(self, values: Sequence[str]) -> bool:
        pattern = re.compile(f"^{self.character_class}+$")
        return all(bool(pattern.match(value)) for value in values if value != "") \
            and all(value != "" for value in values)


#: The predefined template set, tried in order (most specific first).
REGEX_TEMPLATES: Tuple[RegexTemplate, ...] = (
    RegexTemplate("digits", "[0-9]"),
    RegexTemplate("lowercase", "[a-z]"),
    RegexTemplate("uppercase", "[A-Z]"),
    RegexTemplate("letters", "[a-zA-Z]"),
    RegexTemplate("alphanumeric", "[0-9a-zA-Z]"),
    RegexTemplate("identifier", "[0-9a-zA-Z_$]"),
    RegexTemplate("hex_color", "[0-9a-fA-F#]"),
    RegexTemplate("url", r"[0-9a-zA-Z:/?&=._%-]"),
    RegexTemplate("printable", r"[^\s]"),
)


def _length_bounds(values: Sequence[str],
                   slack: float = 0.0) -> Tuple[int, int]:
    lengths = [len(value) for value in values]
    minimum, maximum = min(lengths), max(lengths)
    if slack > 0.0:
        minimum = max(1, int(minimum * (1.0 - slack)))
        maximum = int(maximum * (1.0 + slack)) + 1
    return minimum, maximum


def _quantifier(minimum: int, maximum: int) -> str:
    if minimum == maximum:
        return f"{{{minimum}}}"
    return f"{{{minimum},{maximum}}}"


def generalize_column(values: Sequence[str], length_slack: float = 0.0) -> str:
    """A regex fragment matching every observed value of one column.

    The concrete value is used when all samples agree; otherwise the first
    template whose character class covers every observed value is selected
    (brute force over the template list, as in the paper), with length bounds
    taken from the observations.  ``.{min,max}`` is the last resort, used for
    values with whitespace or no covering template.

    ``length_slack`` widens the observed length bounds by the given fraction.
    The paper uses the observed lengths directly, which works when clusters
    contain hundreds of samples; for small clusters a little slack keeps the
    signature from over-fitting the handful of lengths that happened to be
    observed (the compiler default is 0.25, see
    :class:`~repro.signatures.compiler.SignatureConfig`).
    """
    distinct = []
    for value in values:
        if value not in distinct:
            distinct.append(value)
    if len(distinct) == 1:
        return re.escape(distinct[0])
    minimum, maximum = _length_bounds(distinct, slack=length_slack)
    if min(len(value) for value in distinct) == 0:
        # Empty strings defeat character-class templates; accept anything of
        # the observed length range.
        return f".{{{0},{maximum}}}"
    for template in REGEX_TEMPLATES:
        if template.accepts(distinct):
            return template.character_class + _quantifier(minimum, maximum)
    return "." + _quantifier(minimum, maximum)


def _covarying_groups(columns: Sequence[TokenColumn]) -> Dict[int, int]:
    """Map column offset -> offset of the earlier column it co-varies with.

    Two columns co-vary when their value vectors are identical across all
    samples and non-constant.  The earliest such column becomes the named
    group; later ones become backreferences.
    """
    representative: Dict[Tuple[str, ...], int] = {}
    backreferences: Dict[int, int] = {}
    for column in columns:
        if column.is_constant:
            continue
        key = tuple(column.values)
        if key in representative:
            backreferences[column.offset] = representative[key]
        else:
            representative[key] = column.offset
    return backreferences


def build_pattern(columns: Sequence[TokenColumn],
                  use_backreferences: bool = True,
                  length_slack: float = 0.0) -> str:
    """Assemble the full signature pattern from the aligned columns."""
    backreferences = _covarying_groups(columns) if use_backreferences else {}
    group_names: Dict[int, str] = {}
    next_group = 0
    fragments: List[str] = []
    for column in columns:
        if column.offset in backreferences:
            target = backreferences[column.offset]
            if target in group_names:
                fragments.append(f"(?P={group_names[target]})")
                continue
            # The target was never turned into a group (it may itself be a
            # backreference target created later); fall through to a plain
            # fragment.
        fragment = generalize_column(column.values, length_slack=length_slack)
        is_target = (use_backreferences
                     and not column.is_constant
                     and any(target == column.offset
                             for target in backreferences.values()))
        if is_target:
            name = f"var{next_group}"
            next_group += 1
            group_names[column.offset] = name
            fragment = f"(?P<{name}>{fragment})"
        fragments.append(fragment)
    return "".join(fragments)
