"""Simulated commercial anti-virus baseline.

The paper compares Kizzle against a widely used commercial AV engine whose
signatures are written by human analysts.  The engine itself is anonymized;
the behaviour that matters for the comparison is the *adversarial cycle lag*
(Figure 1): after a kit mutates its packer, the analyst needs days to notice,
write and ship a new signature, producing the false-negative windows of
Figures 6 and 13(b).

:class:`SimulatedCommercialAV` models that behaviour faithfully:

* for every packer configuration period of every kit (taken from the
  :class:`~repro.ekgen.evolution.EvolutionTimeline`), there is a hand-written
  rule keyed on a concrete feature of that packer version (the Nuclear eval
  obfuscation string, the RIG delimiter, the Angler Java-exploit marker, the
  Sweet Orange junk token);
* the rule for a period is *released* only ``lag_days`` after the period
  starts (the analyst's response time), so freshly mutated kits go undetected
  in the meantime — the signatures themselves are real regexes evaluated
  against the sample, nothing is hard-coded to "miss";
* one deliberately over-broad heuristic rule produces occasional false
  positives on benign content, mirroring the paper's observation that the
  commercial engine had a higher FP count than Kizzle (Figure 14).
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.ekgen.angler import ANGLER_JAVA_MARKER
from repro.ekgen.nuclear import delimit_word
from repro.ekgen.evolution import EvolutionTimeline, default_timeline
from repro.scanner.normalizer import fast_normalize, normalize_for_scan


@dataclass
class ManualSignatureRule:
    """One analyst-written rule.

    ``pattern`` is matched against the raw sample content and against the
    scanner-normalized content (analysts use whichever representation is more
    convenient); ``released`` is the date the rule ships to endpoints.
    """

    kit: str
    name: str
    pattern: str
    released: datetime.date
    heuristic: bool = False
    _compiled: Optional[re.Pattern] = field(default=None, repr=False,
                                            compare=False)
    _gates: Optional[List[tuple]] = field(default=None, repr=False,
                                          compare=False)
    _anchor_known: bool = field(default=False, repr=False, compare=False)

    @property
    def compiled(self) -> re.Pattern:
        if self._compiled is None:
            self._compiled = re.compile(self.pattern, re.DOTALL)
        return self._compiled

    def matches(self, raw_content: str, normalized_content: str) -> bool:
        return (self.compiled.search(raw_content) is not None
                or self.compiled.search(normalized_content) is not None)

    @property
    def literal_gates(self) -> List[tuple]:
        """``(literal, multiplicity)`` gates the pattern requires.

        Any text the pattern matches must contain each required literal at
        least as many times as it appears unconditionally in the pattern
        (the RIG delimiter patterns, ``\\d{2,3}X\\d{2,3}X...``, require the
        delimiter three times, which is a far more selective gate than one
        occurrence of a two-character literal).  Only the most selective
        gates are kept — longest literals first, at most two.
        """
        if not self._anchor_known:
            from collections import Counter

            from repro.signatures.anchors import required_literals

            counts = Counter(required_literals(self.pattern, min_length=2))
            ranked = sorted(counts.items(),
                            key=lambda item: len(item[0]), reverse=True)
            self._gates = ranked[:2]
            self._anchor_known = True
        return self._gates

    def could_match(self, raw_content: str, normalized_content: str) -> bool:
        """Cheap necessary condition for :meth:`matches` (either side)."""
        for literal, needed in self.literal_gates:
            if raw_content.count(literal) < needed \
                    and normalized_content.count(literal) < needed:
                return False
        return True


@dataclass
class AVScanVerdict:
    """Result of the simulated AV scanning one sample."""

    sample_id: str
    matched_rules: List[ManualSignatureRule] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.matched_rules)

    @property
    def kits(self) -> set:
        return {rule.kit for rule in self.matched_rules}


class SimulatedCommercialAV:
    """A commercial AV engine with analyst-lagged manual signatures."""

    #: Analyst response lag, per kit, in days after a packer change.
    DEFAULT_LAGS: Dict[str, int] = {
        "nuclear": 3,
        "rig": 2,
        "angler": 6,
        "sweetorange": 4,
    }

    def __init__(self, timeline: Optional[EvolutionTimeline] = None,
                 lag_days: Optional[Dict[str, int]] = None,
                 study_start: datetime.date = datetime.date(2014, 8, 1),
                 include_fp_heuristic: bool = True) -> None:
        self.timeline = timeline or default_timeline()
        self.lag_days = dict(self.DEFAULT_LAGS)
        if lag_days:
            self.lag_days.update(lag_days)
        self.study_start = study_start
        self.rules: List[ManualSignatureRule] = []
        self._build_rules()
        if include_fp_heuristic:
            self.rules.append(ManualSignatureRule(
                kit="angler", name="ANG.heur.telemetry",
                pattern=r"adZone=13\d{3,}",
                released=study_start, heuristic=True))
        self.mode = "exact"
        self.prepared = None

    def use_fast_scan(self, prepared=None) -> None:
        """Switch to the warm scan path.

        Rules are gated by their required-literal anchor and the normalized
        side of :meth:`ManualSignatureRule.matches` uses
        :func:`~repro.scanner.normalizer.fast_normalize` (optionally through
        a shared :class:`~repro.core.prepared.PreparedCache`) instead of the
        lexer.  Verdict-equivalent on the synthetic stream (asserted in
        tests); :attr:`mode` can be reset to ``"exact"`` at any time.
        """
        self.mode = "fast"
        self.prepared = prepared

    # ------------------------------------------------------------------
    # rule construction
    # ------------------------------------------------------------------
    def _build_rules(self) -> None:
        for kit in self.timeline.known_kits():
            periods = self._packer_periods(kit)
            for index, (start, params) in enumerate(periods):
                pattern = self._feature_pattern(kit, params)
                if pattern is None:
                    continue
                if start <= self.study_start:
                    released = self.study_start
                else:
                    released = start + datetime.timedelta(
                        days=self.lag_days.get(kit, 4))
                self.rules.append(ManualSignatureRule(
                    kit=kit, name=f"{kit.upper()}.sig{index + 1}",
                    pattern=pattern, released=released))

    def _packer_periods(self, kit: str):
        """(start_date, packer_params) for each packer configuration period."""
        periods = []
        base_version = self.timeline.version_for(
            kit, datetime.date(2014, 1, 1))
        periods.append((datetime.date(2014, 1, 1),
                        dict(base_version.packer_params)))
        for event in self.timeline.events_for(kit):
            if event.kind not in ("packer", "packer_semantic"):
                continue
            version = self.timeline.version_for(kit, event.date)
            periods.append((event.date, dict(version.packer_params)))
        return periods

    @staticmethod
    def _feature_pattern(kit: str, params: Dict[str, object]) -> Optional[str]:
        """The concrete packer feature an analyst would key a signature on."""
        if kit == "nuclear":
            # Analysts key Nuclear signatures on the delimiter-spelled method
            # names (the paper's Figure 12 shows NEK signature releases
            # trailing the delimiter rotations of late August); the eval
            # obfuscation churns too often to be worth a signature.
            delimiter = str(params.get("delimiter", ""))
            if not delimiter:
                return None
            return re.escape(delimit_word("document", delimiter))
        if kit == "rig":
            delimiter = str(params.get("delimiter", ""))
            if not delimiter:
                return None
            escaped = re.escape(delimiter)
            return rf"\d{{2,3}}{escaped}\d{{2,3}}{escaped}\d{{2,3}}{escaped}"
        if kit == "angler":
            if bool(params.get("exploit_string_in_html", True)):
                return re.escape(ANGLER_JAVA_MARKER)
            # After the August 13 change the analyst keys the replacement
            # signature on the packer's decode-and-eval trigger, which is
            # stable across the later marker rotations (so AV recovers for
            # the rest of the month, as in Figure 6).
            return (r"fromCharCode\(parseInt\([A-Za-z_$][\w$]*,16\)\)"
                    r".{0,80}window\[ev\+al\]\(")
        if kit == "sweetorange":
            junk = str(params.get("junk_token", ""))
            if not junk:
                return None
            return re.escape(junk)
        return None

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def rules_deployed(self, as_of: datetime.date) -> List[ManualSignatureRule]:
        return [rule for rule in self.rules if rule.released <= as_of]

    def scan(self, sample_id: str, content: str,
             as_of: datetime.date) -> AVScanVerdict:
        """Scan one sample with the rules deployed on ``as_of``."""
        if self.mode == "fast":
            return self._scan_fast(sample_id, content, as_of)
        normalized = normalize_for_scan(content)
        matched = [rule for rule in self.rules_deployed(as_of)
                   if rule.matches(content, normalized)]
        return AVScanVerdict(sample_id=sample_id, matched_rules=matched)

    def _scan_fast(self, sample_id: str, content: str,
                   as_of: datetime.date) -> AVScanVerdict:
        """Warm scan: anchor-gated rules over the fast normal form.

        A rule's anchor is a required substring of any match; a rule that
        matched the raw side leaves its anchor in the raw content, one that
        matched the normalized side leaves it in the fast normal form, so an
        anchor missing from both proves the rule cannot match.
        """
        if self.prepared is not None:
            normalized = self.prepared.fast_normalized(content)
        else:
            normalized = fast_normalize(content)
        matched = []
        for rule in self.rules_deployed(as_of):
            if not rule.could_match(content, normalized):
                continue
            if rule.matches(content, normalized):
                matched.append(rule)
        return AVScanVerdict(sample_id=sample_id, matched_rules=matched)

    def signature_release_dates(self, kit: Optional[str] = None
                                ) -> List[datetime.date]:
        """Release dates of (non-heuristic) rules, for the Figure 12 call-outs."""
        return sorted(rule.released for rule in self.rules
                      if not rule.heuristic
                      and (kit is None or rule.kit == kit))


def default_av_baseline() -> SimulatedCommercialAV:
    """The AV baseline with the documented 2014 timeline and default lags."""
    return SimulatedCommercialAV()
