"""Signature scanning: normalization, the scan engine, and the simulated
commercial AV baseline Kizzle is compared against."""

from repro.scanner.normalizer import normalize_for_scan
from repro.scanner.engine import ScanEngine, ScanResult, SignatureDatabase
from repro.scanner.avbaseline import (
    ManualSignatureRule,
    SimulatedCommercialAV,
    default_av_baseline,
)
from repro.scanner.hidden import (
    HiddenSignature,
    HiddenSignatureCompiler,
    ServerSideScanner,
)

__all__ = [
    "normalize_for_scan",
    "ScanEngine",
    "ScanResult",
    "SignatureDatabase",
    "ManualSignatureRule",
    "SimulatedCommercialAV",
    "default_av_baseline",
    "HiddenSignature",
    "HiddenSignatureCompiler",
    "ServerSideScanner",
]
