"""Hidden server-side signatures (paper, Section V "Deployment and avoidance").

Deployed AV signatures can be used as an oracle: the attacker keeps mutating
the packer until the scanner stops flagging his kit.  The paper sketches a
counter-measure it chose not to implement: *hidden* signatures that never
leave the server and "match on specific strings contained in the inner layer"
— the slowly-changing unpacked core — so the attacker has no feedback loop to
optimize against.

This module implements that extension:

* :class:`HiddenSignature` is a set of inner-layer indicator strings (or
  regexes) matched against the *unpacked* payload of a sample;
* :class:`HiddenSignatureCompiler` derives indicators from known unpacked
  cores by picking content snippets that are long, stable across the corpus
  of one family, and absent from the benign reference set;
* :class:`ServerSideScanner` combines an unpacker registry with a set of
  hidden signatures, mirroring how the server-side deployment would run.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.unpack.registry import UnpackerRegistry, default_registry


@dataclass
class HiddenSignature:
    """A server-side signature over the unpacked inner layer.

    ``indicators`` are literal strings; a sample matches when at least
    ``min_hits`` of them occur in its unpacked payload.  Requiring several
    independent indicators keeps single shared helper functions (the Figure
    15 situation) from triggering a match on benign code.
    """

    kit: str
    indicators: List[str]
    created: datetime.date
    min_hits: int = 2

    def hits(self, unpacked_text: str) -> int:
        return sum(1 for indicator in self.indicators
                   if indicator in unpacked_text)

    def matches(self, unpacked_text: str) -> bool:
        return self.hits(unpacked_text) >= self.min_hits


@dataclass
class HiddenSignatureCompiler:
    """Derives hidden signatures from known unpacked kit cores.

    Indicator candidates are source lines of the core that are long enough to
    be distinctive, appear in every reference core of the family, and never
    appear in the benign reference set.
    """

    min_line_length: int = 30
    max_indicators: int = 8
    min_hits: int = 2
    benign_reference: List[str] = field(default_factory=list)

    def add_benign_reference(self, texts: Iterable[str]) -> None:
        self.benign_reference.extend(texts)

    def compile_family(self, kit: str, unpacked_cores: Sequence[str],
                       created: datetime.date) -> Optional[HiddenSignature]:
        """Build one hidden signature for a family from its known cores."""
        if not unpacked_cores:
            return None
        candidate_lines = self._candidate_lines(unpacked_cores[0])
        stable = [line for line in candidate_lines
                  if all(line in core for core in unpacked_cores[1:])]
        clean = [line for line in stable if not self._appears_benign(line)]
        if len(clean) < self.min_hits:
            return None
        # Prefer the longest (most distinctive) indicators, spread across the
        # document rather than adjacent lines.
        clean.sort(key=len, reverse=True)
        selected: List[str] = []
        for line in clean:
            if len(selected) >= self.max_indicators:
                break
            if any(line in existing or existing in line
                   for existing in selected):
                continue
            selected.append(line)
        if len(selected) < self.min_hits:
            return None
        return HiddenSignature(kit=kit, indicators=selected, created=created,
                               min_hits=self.min_hits)

    def _candidate_lines(self, core: str) -> List[str]:
        lines = []
        for raw_line in core.splitlines():
            line = raw_line.strip()
            if len(line) < self.min_line_length:
                continue
            if line.startswith("//"):
                continue
            lines.append(line)
        return lines

    def _appears_benign(self, line: str) -> bool:
        return any(line in text for text in self.benign_reference)


class ServerSideScanner:
    """Unpack-then-match scanner for hidden signatures.

    The scanner never exposes the signatures themselves: callers submit a
    sample and get back the verdict only, which is the whole point of the
    hidden deployment (no oracle for the attacker).
    """

    def __init__(self, registry: Optional[UnpackerRegistry] = None) -> None:
        self.registry = registry or default_registry()
        self._signatures: List[HiddenSignature] = []

    def add(self, signature: HiddenSignature) -> None:
        self._signatures.append(signature)

    def add_all(self, signatures: Iterable[HiddenSignature]) -> None:
        for signature in signatures:
            self.add(signature)

    def signature_count(self) -> int:
        return len(self._signatures)

    def scan(self, content: str) -> Dict[str, object]:
        """Scan a raw (packed) sample.

        Returns a dictionary with ``detected``, the matching ``kits``, and
        how many unpacking ``layers`` were removed — but not the indicators,
        which stay server-side.
        """
        unpacked, applied = self.registry.unpack(content)
        kits = sorted({signature.kit for signature in self._signatures
                       if signature.matches(unpacked)})
        return {"detected": bool(kits), "kits": kits, "layers": len(applied)}
