"""AV-scanner text normalization.

Anti-virus engines normalize scanned content before signature matching: the
paper notes that quotation marks are removed automatically, and the example
signatures of Figure 10 clearly match against whitespace-free text
(``varaa=xx\\.join`` / ``returnaa``).  Kizzle signatures are generated against
the same normal form, so both sides of the comparison use this module:

* inline-script extraction from HTML,
* comment removal,
* whitespace removal between tokens,
* string-literal quote removal.

The implementation reuses the JavaScript lexer so that normalization is
consistent with tokenization by construction.
"""

from __future__ import annotations

from repro.jstoken.normalizer import tokenize_sample
from repro.jstoken.tokens import TokenClass


def normalize_for_scan(content: str) -> str:
    """Normalize a raw sample for signature matching.

    The sample's inline scripts are tokenized (dropping comments) and the
    concrete token texts are concatenated without separators, with the quotes
    of string/template literals removed.
    """
    parts = []
    for token in tokenize_sample(content):
        value = token.value
        if token.cls is TokenClass.STRING and len(value) >= 2 \
                and value[0] in "'\"" and value[-1] == value[0]:
            value = value[1:-1]
        elif token.cls is TokenClass.TEMPLATE and len(value) >= 2 \
                and value[0] == "`" and value[-1] == "`":
            value = value[1:-1]
        parts.append(value)
    return "".join(parts)
