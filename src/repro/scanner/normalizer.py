"""AV-scanner text normalization.

Anti-virus engines normalize scanned content before signature matching: the
paper notes that quotation marks are removed automatically, and the example
signatures of Figure 10 clearly match against whitespace-free text
(``varaa=xx\\.join`` / ``returnaa``).  Kizzle signatures are generated against
the same normal form, so both sides of the comparison use this module:

* inline-script extraction from HTML,
* comment removal,
* whitespace removal between tokens,
* string-literal quote removal.

The implementation reuses the JavaScript lexer so that normalization is
consistent with tokenization by construction.

For the incremental warm path (PR 2) there is also :func:`fast_normalize`, a
regex-based approximation of the same normal form that runs two orders of
magnitude faster because it never enters the Python lexer.  It differs from
:func:`normalize_for_scan` only on content it was not designed for (comments
outside string literals, markup interleaved mid-expression); on the synthetic
telemetry stream the two produce verdict-identical signature matches, which
``tests/test_incremental.py`` asserts across drift days.
"""

from __future__ import annotations

import re

from repro.jstoken.normalizer import tokenize_sample
from repro.jstoken.tokens import TokenClass


def normalize_tokens(tokens) -> str:
    """The scanner normal form of an already-tokenized sample.

    Factored out of :func:`normalize_for_scan` so callers holding a token
    list (e.g. the incremental pipeline's per-content cache) can derive the
    normal form without re-lexing.
    """
    parts = []
    for token in tokens:
        value = token.value
        if token.cls is TokenClass.STRING and len(value) >= 2 \
                and value[0] in "'\"" and value[-1] == value[0]:
            value = value[1:-1]
        elif token.cls is TokenClass.TEMPLATE and len(value) >= 2 \
                and value[0] == "`" and value[-1] == "`":
            value = value[1:-1]
        parts.append(value)
    return "".join(parts)


def normalize_for_scan(content: str) -> str:
    """Normalize a raw sample for signature matching.

    The sample's inline scripts are tokenized (dropping comments) and the
    concrete token texts are concatenated without separators, with the quotes
    of string/template literals removed.
    """
    return normalize_tokens(tokenize_sample(content))


#: String/template literals (single-line for quotes, multi-line for
#: backticks), with backslash escapes honoured so an escaped quote does not
#: terminate the literal early.
_STRING_LITERAL_RE = re.compile(
    r"\"(?:[^\"\\\n]|\\.)*\""
    r"|'(?:[^'\\\n]|\\.)*'"
    r"|`(?:[^`\\]|\\.)*`", re.DOTALL)

#: Whitespace deleted between tokens (never inside string literals).
_WHITESPACE_TABLE = {ord(character): None for character in " \t\n\r\f\v"}


def fast_normalize(content: str) -> str:
    """Cheap approximation of :func:`normalize_for_scan`.

    Splits the content on string/template literals with one C-level regex
    pass, strips all whitespace *outside* literals, and drops the surrounding
    quotes of each literal while preserving its interior verbatim (including
    any whitespace — the lexer keeps string bodies intact too, which is why
    plain whole-text whitespace stripping is *not* verdict-equivalent).

    Unlike the exact normalizer this keeps markup outside inline scripts and
    would keep comment text; both only ever *add* characters relative to the
    exact normal form, so a signature match can in principle appear or
    disappear only where those extra characters break the adjacency of
    neighbouring tokens.  The generated telemetry stream has no such content
    and the incremental scan path checks its equivalence in tests before
    relying on it.
    """
    parts = []
    last = 0
    for match in _STRING_LITERAL_RE.finditer(content):
        parts.append(content[last:match.start()].translate(_WHITESPACE_TABLE))
        parts.append(match.group(0)[1:-1])
        last = match.end()
    parts.append(content[last:].translate(_WHITESPACE_TABLE))
    return "".join(parts)
