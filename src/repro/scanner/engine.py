"""The signature scan engine.

A :class:`SignatureDatabase` holds the currently deployed signatures (Kizzle
adds new ones daily); a :class:`ScanEngine` normalizes samples and reports
which signatures (and therefore which kit families) match.

PR 2 made both scale to paper-size streams:

* the database keeps per-kit, creation-date-sorted indexes, so
  ``signatures_for``/``latest_for`` are a bisect plus a slice instead of a
  full rescan on every call (behaviour-identical, including tie-breaking);
* the engine can run in ``fast`` mode, where samples are normalized with the
  regex-based :func:`~repro.scanner.normalizer.fast_normalize` (no Python
  lexer) and each signature is gated by its required-literal anchor
  (:mod:`repro.signatures.anchors`) before the full regex runs.  The anchor
  gate never changes verdicts; the fast normal form is verdict-equivalent on
  the synthetic stream (asserted by tests) and the exact mode remains the
  default.
"""

from __future__ import annotations

import bisect
import datetime
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.scanner.normalizer import fast_normalize, normalize_for_scan
from repro.signatures.signature import Signature


@dataclass
class ScanResult:
    """Outcome of scanning one sample."""

    sample_id: str
    matched_signatures: List[Signature] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.matched_signatures)

    @property
    def kits(self) -> Set[str]:
        return {signature.kit for signature in self.matched_signatures}


class _DatedIndex:
    """Signatures kept sorted by (creation date, insertion sequence).

    The stable sequence component reproduces the pre-index semantics exactly:
    ``signatures_for`` used to return signatures in insertion order, and
    ``latest_for`` used ``max(..., key=created)``, which returns the
    *earliest-inserted* signature among those sharing the maximal date.
    """

    __slots__ = ("_keys", "_entries")

    def __init__(self) -> None:
        self._keys: List[tuple] = []       # (created, sequence)
        self._entries: List[Signature] = []

    def add(self, signature: Signature, sequence: int) -> None:
        key = (signature.created, sequence)
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._entries.insert(position, signature)

    def up_to(self, as_of: Optional[datetime.date]) -> List[Signature]:
        """Signatures created on or before ``as_of`` (all when ``None``)."""
        if as_of is None:
            return self._entries
        cut = bisect.bisect_right(self._keys, (as_of, float("inf")))
        return self._entries[:cut]

    def latest(self, as_of: Optional[datetime.date]) -> Optional[Signature]:
        selected = self.up_to(as_of)
        if not selected:
            return None
        newest_date = selected[-1].created
        position = len(selected) - 1
        while position > 0 and selected[position - 1].created == newest_date:
            position -= 1
        return selected[position]

    def __len__(self) -> int:
        return len(self._entries)


class SignatureDatabase:
    """A dated collection of signatures.

    Signatures carry their creation date, so the database can answer "what
    was deployed on day D" — needed to evaluate detection as of a given day
    and to plot signature lengths over time (Figure 12).

    Internally the signatures are indexed per kit and sorted by creation
    date, so date- and kit-filtered queries cost a bisect instead of a scan
    over the whole (and, over a month, ever-growing) signature list.
    ``generation`` increments on every addition; scan-result caches key on
    it to notice deployments.
    """

    def __init__(self, signatures: Optional[Iterable[Signature]] = None) -> None:
        self._signatures: List[Signature] = []
        self._by_kit: Dict[str, _DatedIndex] = {}
        self._dated = _DatedIndex()
        self.generation = 0
        for signature in signatures or ():
            self.add(signature)

    def add(self, signature: Signature) -> None:
        sequence = len(self._signatures)
        self._signatures.append(signature)
        self._dated.add(signature, sequence)
        index = self._by_kit.get(signature.kit)
        if index is None:
            index = self._by_kit[signature.kit] = _DatedIndex()
        index.add(signature, sequence)
        self.generation += 1

    def __len__(self) -> int:
        return len(self._signatures)

    def __iter__(self):
        return iter(self._signatures)

    def signatures_for(self, kit: Optional[str] = None,
                       as_of: Optional[datetime.date] = None) -> List[Signature]:
        """Signatures filtered by kit and deployment date.

        Without a date filter the insertion order is preserved (as before the
        index); with one, signatures arrive sorted by creation date, which for
        the daily pipeline — whose additions are date-monotone — is the same
        order.
        """
        if kit is not None:
            index = self._by_kit.get(kit)
            if index is None:
                return []
            if as_of is None:
                # Preserve exact legacy ordering (insertion order).
                return [s for s in self._signatures if s.kit == kit]
            return list(index.up_to(as_of))
        if as_of is None:
            return list(self._signatures)
        return list(self._dated.up_to(as_of))

    def latest_for(self, kit: str,
                   as_of: Optional[datetime.date] = None) -> Optional[Signature]:
        """The most recently created signature for a kit."""
        index = self._by_kit.get(kit)
        if index is None:
            return None
        return index.latest(as_of)

    def kits(self) -> Set[str]:
        return {kit for kit, index in self._by_kit.items() if len(index)}


class ScanEngine:
    """Matches a signature database against samples.

    Parameters
    ----------
    database:
        The deployed signatures.
    mode:
        ``"exact"`` (default) normalizes through the JavaScript lexer, as
        the paper's scanner does.  ``"fast"`` normalizes with
        :func:`~repro.scanner.normalizer.fast_normalize` and applies each
        signature's literal-anchor prefilter before its regex — the warm
        path of the incremental pipeline.
    prepared:
        Optional :class:`~repro.core.prepared.PreparedCache`; when given,
        normal forms are looked up there so the pipeline, the evaluation
        harness and the scan engine normalize any given content only once
        per day.
    """

    def __init__(self, database: SignatureDatabase, mode: str = "exact",
                 prepared: Optional[object] = None,
                 memo: Optional[Dict] = None) -> None:
        if mode not in ("exact", "fast"):
            raise ValueError(f"unknown scan mode: {mode!r}")
        self.database = database
        self.mode = mode
        self.prepared = prepared
        #: Optional shared verdict memo: (content digest, as_of, database
        #: generation) -> matched signatures.  The warm pipeline passes one
        #: so the shedding stage and the evaluation scans of the same day
        #: resolve each content once; the generation component invalidates
        #: entries as soon as a new signature deploys.
        self.memo = memo
        #: Telemetry: samples scanned and memo short-circuits, for the
        #: stage/backend comparison tooling.
        self.counters = {"scans": 0, "memo_hits": 0}

    # ------------------------------------------------------------------
    def normal_form(self, content: str) -> str:
        """The normal form scanned in the engine's mode (cached if possible)."""
        if self.prepared is not None:
            if self.mode == "fast":
                return self.prepared.fast_normalized(content)
            return self.prepared.normalized(content)
        if self.mode == "fast":
            return fast_normalize(content)
        return normalize_for_scan(content)

    def matching_signatures(self, normalized: str,
                            signatures: Iterable[Signature]) -> List[Signature]:
        """Signatures matching an already-normalized text.

        In fast mode each signature's anchor gates its regex; the gate is a
        necessary condition, so the returned set is identical to running
        every regex.
        """
        if self.mode == "fast":
            return [signature for signature in signatures
                    if signature.could_match(normalized)
                    and signature.matches(normalized)]
        return [signature for signature in signatures
                if signature.matches(normalized)]

    def first_match(self, normalized: str,
                    signatures: Iterable[Signature]) -> Optional[Signature]:
        """The first signature in iteration order that matches, or ``None``.

        Used by the shedding stage, which only needs *whether* a deployed
        signature covers a sample (and which kit it attributes): probing
        newest-first and stopping at the first hit avoids running every
        superseded signature's regex against every covered sample.
        """
        for signature in signatures:
            if self.mode == "fast" and not signature.could_match(normalized):
                continue
            if signature.matches(normalized):
                return signature
        return None

    def scan(self, sample_id: str, content: str,
             as_of: Optional[datetime.date] = None) -> ScanResult:
        """Scan one sample with the signatures deployed as of ``as_of``.

        In fast mode the deployed set is probed per kit, newest signature
        first, stopping at the first hit for each kit: the verdict-relevant
        outputs (``detected`` and ``kits``) are identical to matching every
        signature, but a sample covered by several generations of a kit's
        signatures pays for one regex instead of all of them.  The exact
        mode keeps the original exhaustive matching.
        """
        self.counters["scans"] += 1
        if self.mode != "fast":
            normalized = self.normal_form(content)
            matches = self.matching_signatures(
                normalized, self.database.signatures_for(as_of=as_of))
            return ScanResult(sample_id=sample_id, matched_signatures=matches)

        key = None
        if self.memo is not None:
            from repro.core.prepared import PreparedCache

            key = (PreparedCache.content_key(content), as_of,
                   self.database.generation)
            cached = self.memo.get(key)
            if cached is not None:
                self.counters["memo_hits"] += 1
                return ScanResult(sample_id=sample_id,
                                  matched_signatures=list(cached))
        normalized = self.normal_form(content)
        matches: List[Signature] = []
        for kit in sorted(self.database.kits()):
            hit = self.first_match(
                normalized,
                reversed(self.database.signatures_for(kit=kit, as_of=as_of)))
            if hit is not None:
                matches.append(hit)
        if self.memo is not None:
            self.memo[key] = list(matches)
            if len(self.memo) > 65536:
                self.memo.clear()
        return ScanResult(sample_id=sample_id, matched_signatures=matches)

    def scan_many(self, samples: Dict[str, str],
                  as_of: Optional[datetime.date] = None) -> List[ScanResult]:
        """Scan a batch given as a mapping of sample id to content."""
        return [self.scan(sample_id, content, as_of=as_of)
                for sample_id, content in samples.items()]
