"""The signature scan engine.

A :class:`SignatureDatabase` holds the currently deployed signatures (Kizzle
adds new ones daily); a :class:`ScanEngine` normalizes samples and reports
which signatures (and therefore which kit families) match.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.scanner.normalizer import normalize_for_scan
from repro.signatures.signature import Signature


@dataclass
class ScanResult:
    """Outcome of scanning one sample."""

    sample_id: str
    matched_signatures: List[Signature] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.matched_signatures)

    @property
    def kits(self) -> Set[str]:
        return {signature.kit for signature in self.matched_signatures}


class SignatureDatabase:
    """A dated collection of signatures.

    Signatures carry their creation date, so the database can answer "what
    was deployed on day D" — needed to evaluate detection as of a given day
    and to plot signature lengths over time (Figure 12).
    """

    def __init__(self, signatures: Optional[Iterable[Signature]] = None) -> None:
        self._signatures: List[Signature] = list(signatures or [])

    def add(self, signature: Signature) -> None:
        self._signatures.append(signature)

    def __len__(self) -> int:
        return len(self._signatures)

    def __iter__(self):
        return iter(self._signatures)

    def signatures_for(self, kit: Optional[str] = None,
                       as_of: Optional[datetime.date] = None) -> List[Signature]:
        """Signatures filtered by kit and deployment date."""
        selected = self._signatures
        if kit is not None:
            selected = [s for s in selected if s.kit == kit]
        if as_of is not None:
            selected = [s for s in selected if s.created <= as_of]
        return list(selected)

    def latest_for(self, kit: str,
                   as_of: Optional[datetime.date] = None) -> Optional[Signature]:
        """The most recently created signature for a kit."""
        candidates = self.signatures_for(kit=kit, as_of=as_of)
        if not candidates:
            return None
        return max(candidates, key=lambda signature: signature.created)

    def kits(self) -> Set[str]:
        return {signature.kit for signature in self._signatures}


class ScanEngine:
    """Matches a signature database against samples."""

    def __init__(self, database: SignatureDatabase) -> None:
        self.database = database

    def scan(self, sample_id: str, content: str,
             as_of: Optional[datetime.date] = None) -> ScanResult:
        """Scan one sample with the signatures deployed as of ``as_of``."""
        normalized = normalize_for_scan(content)
        matches = [signature
                   for signature in self.database.signatures_for(as_of=as_of)
                   if signature.matches(normalized)]
        return ScanResult(sample_id=sample_id, matched_signatures=matches)

    def scan_many(self, samples: Dict[str, str],
                  as_of: Optional[datetime.date] = None) -> List[ScanResult]:
        """Scan a batch given as a mapping of sample id to content."""
        return [self.scan(sample_id, content, as_of=as_of)
                for sample_id, content in samples.items()]
