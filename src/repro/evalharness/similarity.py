"""Day-over-day unpacked-core similarity (paper, Figure 11).

The paper measures, for each day of August 2014 and each kit, the winnow
overlap between the unpacked centroid of that day's malicious clusters and
the centroids of *all previous days*, reporting the maximum.  Three of the
four kits stay above ~85-100% (their cores barely change); RIG is the
outlier, dropping to ~50% because its short body is dominated by embedded
URLs that churn daily.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ekgen.telemetry import TelemetryGenerator
from repro.winnowing.histogram import WinnowHistogram


@dataclass
class SimilaritySeries:
    """The per-day maximum-overlap series of one kit."""

    kit: str
    dates: List[datetime.date] = field(default_factory=list)
    similarity: List[float] = field(default_factory=list)

    def minimum(self) -> float:
        return min(self.similarity) if self.similarity else 0.0

    def mean(self) -> float:
        if not self.similarity:
            return 0.0
        return sum(self.similarity) / len(self.similarity)


def similarity_over_time(generator: TelemetryGenerator,
                         kit: str,
                         start: datetime.date,
                         end: datetime.date,
                         history_start: Optional[datetime.date] = None,
                         k: int = 8, window: int = 12) -> SimilaritySeries:
    """Compute the Figure 11 series for one kit.

    ``history_start`` controls how far back "all previous days" reaches; it
    defaults to one week before ``start`` so the first plotted day has a
    history to compare against, like the paper's stream which was running
    before the measurement month.
    """
    if history_start is None:
        history_start = start - datetime.timedelta(days=7)
    series = SimilaritySeries(kit=kit)
    history: List[WinnowHistogram] = []
    current = history_start
    one_day = datetime.timedelta(days=1)
    while current <= end:
        core = generator.reference_core(kit, current)
        histogram = WinnowHistogram.of(core, label=kit, k=k, window=window)
        if current >= start:
            best = 0.0
            for previous in history:
                best = max(best, histogram.symmetric_overlap(previous))
            series.dates.append(current)
            series.similarity.append(best)
        history.append(histogram)
        current += one_day
    return series


def similarity_all_kits(generator: TelemetryGenerator,
                        start: datetime.date, end: datetime.date,
                        kits: Optional[List[str]] = None
                        ) -> Dict[str, SimilaritySeries]:
    """Figure 11 for every kit."""
    selected = kits or sorted(generator.kits)
    return {kit: similarity_over_time(generator, kit, start, end)
            for kit in selected}
