"""Ground truth bookkeeping.

The paper approximates ground truth by manually validating the union of
AV-detected and Kizzle-detected samples (about 7,000 files, 15 hours).  Our
synthetic stream carries its labels, so ground truth is exact here; the class
exists so the metrics layer works from one interface regardless of where the
labels come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.ekgen.base import GeneratedSample


@dataclass
class GroundTruth:
    """Maps sample ids to their true kit family (``None`` = benign)."""

    labels: Dict[str, Optional[str]] = field(default_factory=dict)

    @classmethod
    def from_samples(cls, samples: Iterable[GeneratedSample]) -> "GroundTruth":
        truth = cls()
        truth.add_samples(samples)
        return truth

    def add_samples(self, samples: Iterable[GeneratedSample]) -> None:
        for sample in samples:
            self.labels[sample.sample_id] = sample.kit

    def kit_of(self, sample_id: str) -> Optional[str]:
        if sample_id not in self.labels:
            raise KeyError(f"sample {sample_id!r} has no ground-truth label")
        return self.labels[sample_id]

    def is_malicious(self, sample_id: str) -> bool:
        return self.kit_of(sample_id) is not None

    def malicious_ids(self, kit: Optional[str] = None) -> List[str]:
        return [sample_id for sample_id, label in self.labels.items()
                if label is not None and (kit is None or label == kit)]

    def benign_ids(self) -> List[str]:
        return [sample_id for sample_id, label in self.labels.items()
                if label is None]

    def kit_totals(self) -> Dict[str, int]:
        """Total malicious samples per kit (the "Ground truth" column of
        Figure 14)."""
        totals: Dict[str, int] = {}
        for label in self.labels.values():
            if label is not None:
                totals[label] = totals.get(label, 0) + 1
        return totals

    def __len__(self) -> int:
        return len(self.labels)
