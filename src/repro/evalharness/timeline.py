"""The month-long Kizzle-vs-AV experiment (paper, Section IV).

:class:`MonthExperiment` drives the full comparison:

1. Kizzle's corpus is seeded with unpacked kit cores captured *before* the
   study window (the paper seeds Kizzle with existing unpacked samples).
2. For every day of the window, the synthetic telemetry batch is generated,
   Kizzle processes it (cluster → label → generate signatures) and both
   Kizzle's signature set and the simulated commercial AV scan the day's
   samples.  Kizzle scans with the signatures available at the end of that
   day's run (the paper's pipeline finishes within ~90 minutes, i.e. same
   day); the AV scans with whatever rules its analysts have released by that
   date.
3. Per-day and aggregate FP/FN metrics are recorded (Figures 6, 13, 14),
   along with signature-length series (Figure 12) and per-day cluster counts
   (the "280 to 1,200 clusters per day" observation).

When the Kizzle configuration enables the incremental warm path
(``kizzle.incremental.enabled``), the experiment runs warm end to end: the
pipeline sheds known samples and carries clusters forward day over day, and
both scan engines (Kizzle's and the simulated AV's) share the pipeline's
per-content preparation cache and its fast normal form, so any given content
is normalized at most once per day across all three consumers.  The recorded
FP/FN metrics are identical to a cold run on the synthetic stream — that
equivalence (and the >=5x day-over-day speedup) is asserted by the
benchmark suite.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.config import KizzleConfig
from repro.core.pipeline import Kizzle
from repro.core.results import DailyResult
from repro.core.stages import Stage, StageGraph
from repro.ekgen.telemetry import StreamConfig, TelemetryGenerator
from repro.evalharness.groundtruth import GroundTruth
from repro.evalharness.metrics import DayMetrics, KitCounts, score_day
from repro.scanner.avbaseline import SimulatedCommercialAV


@dataclass
class ExperimentConfig:
    """Configuration of the month-long experiment."""

    start: datetime.date = datetime.date(2014, 8, 1)
    end: datetime.date = datetime.date(2014, 8, 31)
    #: Days (before ``start``) whose unpacked cores seed Kizzle's corpus.
    seed_days: int = 5
    stream: StreamConfig = field(default_factory=StreamConfig)
    kizzle: KizzleConfig = field(default_factory=KizzleConfig)
    kits: List[str] = field(default_factory=lambda: [
        "nuclear", "sweetorange", "angler", "rig"])


@dataclass
class DayRecord:
    """Everything recorded for one day of the experiment."""

    date: datetime.date
    sample_count: int
    malicious_count: int
    benign_count: int
    cluster_count: int
    malicious_cluster_count: int
    new_signatures: int
    kizzle: DayMetrics
    av: DayMetrics
    #: Length (characters) of the newest deployed Kizzle signature per kit.
    signature_lengths: Dict[str, int] = field(default_factory=dict)
    processing_minutes: float = 0.0
    #: Samples the warm path shed as already-known (0 on the cold path).
    shed_count: int = 0
    #: Measured wall seconds of the experiment's own stage graph
    #: (process / scan / evaluate), plus the pipeline's nested per-stage
    #: walls under ``process.<stage>``.
    stage_walls: Dict[str, float] = field(default_factory=dict)


@dataclass
class MonthlyReport:
    """Aggregated outcome of the experiment."""

    config: ExperimentConfig
    days: List[DayRecord] = field(default_factory=list)
    ground_truth: GroundTruth = field(default_factory=GroundTruth)
    av_release_dates: List[datetime.date] = field(default_factory=list)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def kizzle_counts(self) -> KitCounts:
        counts = KitCounts()
        for day in self.days:
            counts = counts.merge(day.kizzle.per_kit)
        return counts

    def av_counts(self) -> KitCounts:
        counts = KitCounts()
        for day in self.days:
            counts = counts.merge(day.av.per_kit)
        return counts

    def overall_rates(self) -> Dict[str, float]:
        """The headline numbers (paper: Kizzle FP < 0.03%, FN < 5%)."""
        kizzle_fp = sum(day.kizzle.confusion.false_positives for day in self.days)
        kizzle_fn = sum(day.kizzle.confusion.false_negatives for day in self.days)
        av_fp = sum(day.av.confusion.false_positives for day in self.days)
        av_fn = sum(day.av.confusion.false_negatives for day in self.days)
        benign_total = sum(day.benign_count for day in self.days)
        malicious_total = sum(day.malicious_count for day in self.days)
        return {
            "kizzle_fp_rate": kizzle_fp / benign_total if benign_total else 0.0,
            "kizzle_fn_rate": kizzle_fn / malicious_total if malicious_total else 0.0,
            "av_fp_rate": av_fp / benign_total if benign_total else 0.0,
            "av_fn_rate": av_fn / malicious_total if malicious_total else 0.0,
        }

    def fn_series(self, kit: Optional[str] = None
                  ) -> Dict[str, List[float]]:
        """Per-day FN rates for both engines (Figure 13b; Figure 6 when a
        kit is given)."""
        kizzle_series: List[float] = []
        av_series: List[float] = []
        for day in self.days:
            if kit is None:
                kizzle_series.append(day.kizzle.confusion.false_negative_rate)
                av_series.append(day.av.confusion.false_negative_rate)
            else:
                kizzle_series.append(day.kizzle.per_kit_fn_rate.get(kit, 0.0))
                av_series.append(day.av.per_kit_fn_rate.get(kit, 0.0))
        return {"kizzle": kizzle_series, "av": av_series,
                "dates": [day.date for day in self.days]}

    def fp_series(self) -> Dict[str, List[float]]:
        """Per-day FP rates for both engines (Figure 13a)."""
        return {
            "kizzle": [day.kizzle.confusion.false_positive_rate
                       for day in self.days],
            "av": [day.av.confusion.false_positive_rate for day in self.days],
            "dates": [day.date for day in self.days],
        }

    def signature_length_series(self) -> Dict[str, List[int]]:
        """Per-day newest-signature lengths per kit (Figure 12)."""
        kits = sorted({kit for day in self.days
                       for kit in day.signature_lengths})
        series: Dict[str, List[int]] = {kit: [] for kit in kits}
        for day in self.days:
            for kit in kits:
                series[kit].append(day.signature_lengths.get(kit, 0))
        series["dates"] = [day.date for day in self.days]  # type: ignore[assignment]
        return series

    def cluster_count_range(self) -> Dict[str, int]:
        counts = [day.cluster_count for day in self.days]
        if not counts:
            return {"min": 0, "max": 0}
        return {"min": min(counts), "max": max(counts)}


class MonthExperiment:
    """Runs the month-long comparison."""

    def __init__(self, config: Optional[ExperimentConfig] = None,
                 generator: Optional[TelemetryGenerator] = None,
                 av: Optional[SimulatedCommercialAV] = None) -> None:
        self.config = config or ExperimentConfig()
        self.generator = generator or TelemetryGenerator(self.config.stream)
        self.av = av or SimulatedCommercialAV(
            timeline=self.generator.timeline,
            study_start=self.config.start)
        self.kizzle = Kizzle(self.config.kizzle)
        if self.config.kizzle.incremental.enabled \
                and self.config.kizzle.incremental.scan_mode == "fast":
            # Warm experiment: the AV shares the pipeline's preparation
            # cache and fast normal form (one normalization per content per
            # day across the pipeline and both scan engines).
            self.av.use_fast_scan(prepared=self.kizzle.prepared)
        # The experiment's own per-day loop is a stage graph too, extending
        # the pipeline's (shed -> ... -> finalize) with the paper's
        # evaluation steps: scan the day with both engines, then score.
        self.day_graph = StageGraph([
            Stage("process", self._stage_process,
                  requires=("batch", "date"), provides=("daily",)),
            # Scanning depends on the signatures the process stage deploys
            # for the same date — ``daily`` encodes that ordering.
            Stage("scan", self._stage_scan,
                  requires=("batch", "date", "daily"),
                  provides=("kizzle_detections", "av_detections")),
            Stage("evaluate", self._stage_evaluate,
                  requires=("batch", "date", "daily",
                            "kizzle_detections", "av_detections"),
                  provides=("record",)),
        ])

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the pipeline's execution substrate (idempotent).

        The pooled backends keep worker processes alive across days — the
        cluster backend may even have spawned localhost worker
        subprocesses — so an embedding application (or the CLI) should
        close the experiment when done, or use it as a context manager.
        """
        self.kizzle.close()

    def __enter__(self) -> "MonthExperiment":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    def seed(self) -> None:
        """Seed Kizzle's corpus with pre-study unpacked kit cores."""
        for kit in self.config.kits:
            cores = []
            for offset in range(1, self.config.seed_days + 1):
                date = self.config.start - datetime.timedelta(days=offset)
                cores.append(self.generator.reference_core(kit, date))
            self.kizzle.seed_known_kit(kit, cores)

    # ------------------------------------------------------------------
    def run(self, progress: Optional[callable] = None) -> MonthlyReport:
        """Run the whole experiment and return the report."""
        self.seed()
        report = MonthlyReport(config=self.config)
        report.av_release_dates = self.av.signature_release_dates()
        current = self.config.start
        one_day = datetime.timedelta(days=1)
        while current <= self.config.end:
            record = self.run_day(current, report.ground_truth)
            report.days.append(record)
            if progress is not None:
                progress(record)
            current += one_day
        return report

    def run_day(self, date: datetime.date,
                ground_truth: GroundTruth) -> DayRecord:
        """Run one day: generate, process, scan with both engines, score."""
        batch = self.generator.generate_day(date)
        ground_truth.add_samples(batch.samples)
        context = {"batch": batch, "date": date}
        walls = self.day_graph.run(context)
        record: DayRecord = context["record"]
        record.stage_walls = dict(walls)
        daily: DailyResult = context["daily"]
        for stage, seconds in daily.stage_walls.items():
            record.stage_walls[f"process.{stage}"] = seconds
        return record

    # -- the experiment's stage implementations -------------------------
    def _stage_process(self, context) -> None:
        batch = context["batch"]
        context["daily"] = self.kizzle.process_day(
            [(sample.sample_id, sample.content) for sample in batch.samples],
            context["date"])

    def _stage_scan(self, context) -> None:
        batch, date = context["batch"], context["date"]
        context["kizzle_detections"] = self._kizzle_detections(batch, date)
        context["av_detections"] = self._av_detections(batch, date)

    def _stage_evaluate(self, context) -> None:
        batch, date = context["batch"], context["date"]
        daily: DailyResult = context["daily"]
        true_kits = {sample.sample_id: sample.kit for sample in batch.samples}
        kizzle_metrics = score_day(true_kits, context["kizzle_detections"])
        av_metrics = score_day(true_kits, context["av_detections"])

        signature_lengths: Dict[str, int] = {}
        for kit in self.config.kits:
            latest = self.kizzle.database.latest_for(kit, as_of=date)
            if latest is not None:
                signature_lengths[kit] = latest.length

        context["record"] = DayRecord(
            date=date,
            sample_count=len(batch.samples),
            malicious_count=len(batch.malicious),
            benign_count=len(batch.benign),
            cluster_count=daily.cluster_count,
            malicious_cluster_count=len(daily.malicious_clusters),
            new_signatures=len(daily.new_signatures),
            kizzle=kizzle_metrics,
            av=av_metrics,
            signature_lengths=signature_lengths,
            processing_minutes=(daily.timing.total_time / 60.0
                                if daily.timing else 0.0),
            shed_count=daily.shed_count,
        )

    # ------------------------------------------------------------------
    def _kizzle_detections(self, batch, date: datetime.date
                           ) -> Dict[str, Set[str]]:
        engine = self.kizzle.scan_engine()
        detections: Dict[str, Set[str]] = {}
        for sample in batch.samples:
            result = engine.scan(sample.sample_id, sample.content, as_of=date)
            detections[sample.sample_id] = result.kits
        return detections

    def _av_detections(self, batch, date: datetime.date
                       ) -> Dict[str, Set[str]]:
        detections: Dict[str, Set[str]] = {}
        for sample in batch.samples:
            verdict = self.av.scan(sample.sample_id, sample.content, as_of=date)
            detections[sample.sample_id] = verdict.kits
        return detections
