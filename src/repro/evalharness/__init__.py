"""Evaluation harness: reproduces every table and figure of the paper's
Section IV over the synthetic telemetry stream.

The central entry point is :class:`~repro.evalharness.timeline.MonthExperiment`,
which drives the month-long comparison of Kizzle against the simulated
commercial AV (Figures 6, 12, 13 and 14).  The similarity-over-time study of
Figure 11 lives in :mod:`repro.evalharness.similarity`, and
:mod:`repro.evalharness.reporting` renders the text tables the benchmark
suite prints.
"""

from repro.evalharness.groundtruth import GroundTruth
from repro.evalharness.metrics import ConfusionCounts, DayMetrics, KitCounts
from repro.evalharness.timeline import (
    MonthExperiment,
    ExperimentConfig,
    MonthlyReport,
    DayRecord,
)
from repro.evalharness.similarity import similarity_over_time, SimilaritySeries
from repro.evalharness.reporting import (
    format_table,
    format_day_series,
    format_absolute_counts,
)

__all__ = [
    "GroundTruth",
    "ConfusionCounts",
    "DayMetrics",
    "KitCounts",
    "MonthExperiment",
    "ExperimentConfig",
    "MonthlyReport",
    "DayRecord",
    "similarity_over_time",
    "SimilaritySeries",
    "format_table",
    "format_day_series",
    "format_absolute_counts",
]
