"""False-positive / false-negative accounting.

The paper's accuracy metrics (Figures 13 and 14):

* a *false negative* is a malicious sample the engine does not flag;
* a *false positive* is a benign sample the engine flags; when an engine
  attributes the match to a kit family, the FP is charged to that family
  (that is how Figure 14 reports per-kit FP counts);
* daily FN% is FN over the day's malicious samples, daily FP% is FP over the
  day's benign samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set


@dataclass
class ConfusionCounts:
    """Plain confusion counts for one engine over one scope (day or month)."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0

    @property
    def malicious_total(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def benign_total(self) -> int:
        return self.false_positives + self.true_negatives

    @property
    def false_negative_rate(self) -> float:
        total = self.malicious_total
        return self.false_negatives / total if total else 0.0

    @property
    def false_positive_rate(self) -> float:
        total = self.benign_total
        return self.false_positives / total if total else 0.0

    def merge(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
            true_negatives=self.true_negatives + other.true_negatives,
        )


@dataclass
class KitCounts:
    """Per-kit FP/FN counts for one engine (one row block of Figure 14)."""

    ground_truth: Dict[str, int] = field(default_factory=dict)
    false_positives: Dict[str, int] = field(default_factory=dict)
    false_negatives: Dict[str, int] = field(default_factory=dict)

    def add_ground_truth(self, kit: str, count: int = 1) -> None:
        self.ground_truth[kit] = self.ground_truth.get(kit, 0) + count

    def add_false_positive(self, kit: str, count: int = 1) -> None:
        self.false_positives[kit] = self.false_positives.get(kit, 0) + count

    def add_false_negative(self, kit: str, count: int = 1) -> None:
        self.false_negatives[kit] = self.false_negatives.get(kit, 0) + count

    def merge(self, other: "KitCounts") -> "KitCounts":
        merged = KitCounts(ground_truth=dict(self.ground_truth),
                           false_positives=dict(self.false_positives),
                           false_negatives=dict(self.false_negatives))
        for kit, count in other.ground_truth.items():
            merged.add_ground_truth(kit, count)
        for kit, count in other.false_positives.items():
            merged.add_false_positive(kit, count)
        for kit, count in other.false_negatives.items():
            merged.add_false_negative(kit, count)
        return merged

    def totals(self) -> Dict[str, int]:
        return {
            "ground_truth": sum(self.ground_truth.values()),
            "false_positives": sum(self.false_positives.values()),
            "false_negatives": sum(self.false_negatives.values()),
        }


@dataclass
class DayMetrics:
    """One engine's metrics for one day."""

    confusion: ConfusionCounts = field(default_factory=ConfusionCounts)
    per_kit: KitCounts = field(default_factory=KitCounts)
    per_kit_fn_rate: Dict[str, float] = field(default_factory=dict)


def score_day(true_kits: Mapping[str, Optional[str]],
              detections: Mapping[str, Set[str]]) -> DayMetrics:
    """Score one engine over one day.

    Parameters
    ----------
    true_kits:
        sample id -> true kit (``None`` for benign).
    detections:
        sample id -> set of kit families the engine attributed to the sample
        (empty set = not flagged).  Missing ids are treated as not flagged.
    """
    metrics = DayMetrics()
    per_kit_totals: Dict[str, int] = {}
    per_kit_misses: Dict[str, int] = {}
    for sample_id, true_kit in true_kits.items():
        flagged = detections.get(sample_id, set())
        if true_kit is not None:
            metrics.per_kit.add_ground_truth(true_kit)
            per_kit_totals[true_kit] = per_kit_totals.get(true_kit, 0) + 1
            if flagged:
                metrics.confusion.true_positives += 1
            else:
                metrics.confusion.false_negatives += 1
                metrics.per_kit.add_false_negative(true_kit)
                per_kit_misses[true_kit] = per_kit_misses.get(true_kit, 0) + 1
        else:
            if flagged:
                metrics.confusion.false_positives += 1
                for kit in flagged:
                    metrics.per_kit.add_false_positive(kit)
            else:
                metrics.confusion.true_negatives += 1
    for kit, total in per_kit_totals.items():
        metrics.per_kit_fn_rate[kit] = per_kit_misses.get(kit, 0) / total
    return metrics
