"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place so benches stay short.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Mapping, Optional, Sequence

from repro.evalharness.metrics import KitCounts


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    normalized_rows: List[List[str]] = []
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match header width")
        cells = [_format_cell(cell) for cell in row]
        normalized_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(header).ljust(widths[index])
                           for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(columns)))
    for cells in normalized_rows:
        lines.append("  ".join(cells[index].ljust(widths[index])
                               for index in range(columns)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}" if abs(cell) < 1 else f"{cell:.2f}"
    return str(cell)


def format_day_series(dates: Sequence[datetime.date],
                      series: Mapping[str, Sequence[float]],
                      title: Optional[str] = None,
                      as_percent: bool = True) -> str:
    """Render per-day series (e.g. FN% for Kizzle and AV) as a table."""
    headers = ["date"] + list(series.keys())
    rows = []
    for index, date in enumerate(dates):
        row: List[object] = [date.isoformat()]
        for name in series:
            value = series[name][index]
            row.append(f"{value * 100:.2f}%" if as_percent else value)
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_absolute_counts(ground_truth_totals: Mapping[str, int],
                           av: KitCounts, kizzle: KitCounts,
                           kits: Optional[Sequence[str]] = None,
                           title: str = "False positives and false negatives: "
                                        "absolute counts (Figure 14)") -> str:
    """Render the Figure 14 table."""
    selected = list(kits) if kits else sorted(ground_truth_totals)
    headers = ["EK", "Ground truth", "AV FP", "AV FN", "Kizzle FP", "Kizzle FN"]
    rows: List[List[object]] = []
    for kit in selected:
        rows.append([
            kit,
            ground_truth_totals.get(kit, 0),
            av.false_positives.get(kit, 0),
            av.false_negatives.get(kit, 0),
            kizzle.false_positives.get(kit, 0),
            kizzle.false_negatives.get(kit, 0),
        ])
    rows.append([
        "Sum",
        sum(ground_truth_totals.get(kit, 0) for kit in selected),
        sum(av.false_positives.get(kit, 0) for kit in selected),
        sum(av.false_negatives.get(kit, 0) for kit in selected),
        sum(kizzle.false_positives.get(kit, 0) for kit in selected),
        sum(kizzle.false_negatives.get(kit, 0) for kit in selected),
    ])
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A crude ASCII sparkline for quick visual inspection in bench output."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = max(1, len(values) // width)
    picked = values[::step]
    return "".join(blocks[int((value - low) / span * (len(blocks) - 1))]
                   for value in picked)
