"""Reduce step: reconcile clusters computed across partitions.

Because the daily batch is partitioned randomly, samples from the same kit
family end up in clusters on different machines.  The reduce step merges
per-partition clusters whose prototypes are within the DBSCAN epsilon of each
other, using a union-find over prototype comparisons.  The paper notes this
step is the pipeline's bottleneck since it runs on a single machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.distance.engine import DistanceEngine


class UnionFind:
    """Plain union-find with path compression, used for cluster merging."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self.parent[root_b] = root_a


def merge_clusters(per_partition: Sequence[Sequence["Cluster"]],
                   epsilon: float = 0.10,
                   engine: Optional[DistanceEngine] = None
                   ) -> Tuple[List["Cluster"], int]:
    """Merge clusters from multiple partitions.

    Two clusters are merged when their prototypes' token strings are within
    ``epsilon`` normalized edit distance.  The all-pairs prototype queries
    are issued as one batch against the distance engine (sharing its memo
    cache with the map phase when the caller passes the same engine).
    Returns the merged clusters (with fresh, dense cluster ids and
    recomputed prototypes) and the number of prototype comparisons
    performed.
    """
    from repro.clustering.partition import Cluster
    from repro.clustering.prototypes import select_prototype

    flat: List[Cluster] = [cluster for partition in per_partition
                           for cluster in partition]
    if not flat:
        return [], 0

    engine = engine or DistanceEngine()
    prototypes = [cluster.prototype.tokens for cluster in flat]
    hits, comparisons = engine.pairs_within(prototypes, epsilon)
    union = UnionFind(len(flat))
    for i, j in hits:
        union.union(i, j)

    groups: Dict[int, List[int]] = {}
    for index in range(len(flat)):
        groups.setdefault(union.find(index), []).append(index)

    merged: List[Cluster] = []
    for new_id, indices in enumerate(sorted(groups.values(),
                                            key=lambda idx: idx[0])):
        samples = [sample for index in indices for sample in flat[index].samples]
        prototype_index = select_prototype(
            [sample.tokens for sample in samples], engine=engine,
            weights=[sample.weight for sample in samples])
        merged.append(Cluster(cluster_id=new_id, samples=samples,
                              prototype_index=prototype_index))
    return merged, comparisons
