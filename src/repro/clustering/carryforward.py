"""Day-over-day cluster carry-forward: pre-labeled anchors.

The cold pipeline re-unpacks and re-winnows a prototype for every cluster
every day even though the stream is dominated by the same grayware families
day after day (paper, Section III).  This module keeps yesterday's cluster
prototypes as *pre-labeled anchors*: a cluster whose prototype lands within
the DBSCAN epsilon of an anchor inherits the anchor's benign/kit label
without entering the unpack-and-winnow labeling stage.  Only genuinely novel
clusters — new kits, packer updates that moved beyond epsilon, fresh benign
templates — pay for labeling.

Label inheritance is advisory, not load-bearing: the pipeline re-labels a
carried *kit* cluster for real before compiling a signature from it (see
``Kizzle._report_for``), so a wrong inheritance can never ship a signature;
it can only cost one extra labeling pass.

Anchors age out: one not re-observed (and whose kit is not being shed
upstream by deployed signatures) for ``ttl_days`` is dropped, and the anchor
set is capped at ``max_anchors`` keeping the most recently refreshed.  With
carry-forward disabled the pipeline falls back to the exact cold path; a
drift-free repeated day produces the same labels and signatures either way
(asserted in ``tests/test_incremental.py``).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.distance.engine import DistanceEngine

TokenString = Tuple[str, ...]


@dataclass
class ClusterAnchor:
    """Yesterday's cluster prototype plus everything needed to re-label.

    ``kit`` is ``None`` for benign anchors.  ``overlap``/``best_family``/
    ``layers`` replicate the original
    :class:`~repro.labeling.labeler.ClusterLabel` verdict so a carried
    cluster can report the same label without re-unpacking.
    """

    tokens: TokenString
    kit: Optional[str]
    overlap: float
    best_family: Optional[str]
    layers: int
    last_seen: datetime.date
    weight: int = 0


class CarryForwardIndex:
    """The anchor set and its aging policy.

    Parameters
    ----------
    epsilon:
        The DBSCAN threshold; a prototype within this normalized distance of
        an anchor is considered the same cluster continued.
    engine:
        Shared distance engine (prefilters + memo cache make anchor probes
        nearly free for prototypes that repeat day over day).
    ttl_days / max_anchors:
        Aging policy, see the module docstring.
    """

    def __init__(self, epsilon: float = 0.10,
                 engine: Optional[DistanceEngine] = None,
                 ttl_days: int = 7, max_anchors: int = 256) -> None:
        self.epsilon = epsilon
        self.engine = engine or DistanceEngine()
        self.ttl_days = ttl_days
        self.max_anchors = max_anchors
        self.anchors: List[ClusterAnchor] = []
        #: Anchor probes issued since construction (for work accounting).
        self.comparisons = 0

    # ------------------------------------------------------------------
    def match(self, tokens: TokenString) -> Optional[ClusterAnchor]:
        """The first anchor within epsilon of ``tokens``, or ``None``.

        Anchors are probed most recently refreshed and heaviest first
        (:meth:`update` stores them in exactly that order), so the stable
        bulk of the stream resolves on the first probe.
        """
        for anchor in self.anchors:
            self.comparisons += 1
            if self.engine.within(anchor.tokens, tokens, self.epsilon):
                return anchor
        return None

    # ------------------------------------------------------------------
    def refresh_kits(self, kits: Sequence[str], date: datetime.date) -> None:
        """Keep kit anchors alive while their samples are shed upstream.

        When deployed signatures already cover a kit, the kit's clusters may
        consist purely of shed sentinels; refreshing by kit ensures the
        anchors survive even on days the kit produced no cluster at all.
        """
        wanted = set(kits)
        for anchor in self.anchors:
            if anchor.kit in wanted:
                anchor.last_seen = date

    def update(self, reports: Sequence[object], date: datetime.date) -> None:
        """Roll the anchor set forward from today's final cluster reports.

        ``reports`` is the day's list of
        :class:`~repro.core.results.ClusterReport`: every cluster
        contributes its prototype and label as tomorrow's anchor.  Anchors
        from previous days that were not re-observed today survive until
        their TTL lapses, so a kit that skips a day is still caught warm;
        past that, or past ``max_anchors``, the least recently refreshed
        anchors are dropped.
        """
        survivors: List[ClusterAnchor] = []
        fresh_tokens = set()
        for report in reports:
            cluster = report.cluster
            label = report.label
            tokens = cluster.prototype.tokens
            fresh_tokens.add(tokens)
            survivors.append(ClusterAnchor(
                tokens=tokens, kit=label.kit, overlap=label.overlap,
                best_family=label.best_family, layers=label.layers,
                last_seen=date, weight=cluster.weighted_size))
        horizon = date - datetime.timedelta(days=self.ttl_days)
        for anchor in self.anchors:
            if anchor.tokens in fresh_tokens:
                continue
            if anchor.last_seen >= horizon:
                survivors.append(anchor)
        survivors.sort(key=lambda a: (a.last_seen, a.weight), reverse=True)
        self.anchors = survivors[:self.max_anchors]
