"""Clustering of abstract token strings.

Kizzle applies DBSCAN with normalized token edit distance and an epsilon of
0.10, runs it per partition on a cluster of machines, and reconciles the
per-partition clusters in a reduce step (paper, Section III-A).
"""

from repro.clustering.dbscan import DBSCAN, DBSCANResult, NOISE
from repro.clustering.partition import (
    ClusteredSample,
    Cluster,
    partition_samples,
    cluster_partition,
    DistributedClusterer,
)
from repro.clustering.carryforward import CarryForwardIndex, ClusterAnchor
from repro.clustering.merge import merge_clusters
from repro.clustering.prototypes import select_prototype, medoid_index

__all__ = [
    "CarryForwardIndex",
    "ClusterAnchor",
    "DBSCAN",
    "DBSCANResult",
    "NOISE",
    "ClusteredSample",
    "Cluster",
    "partition_samples",
    "cluster_partition",
    "DistributedClusterer",
    "merge_clusters",
    "select_prototype",
    "medoid_index",
]
