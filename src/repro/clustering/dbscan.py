"""From-scratch DBSCAN over an arbitrary distance metric.

DBSCAN (Ester et al., KDD 1996) groups points that are density-reachable:
a *core point* has at least ``min_points`` neighbours within ``epsilon``;
clusters are maximal sets of points connected through core points; everything
else is noise.  The paper clusters abstract token strings with
``epsilon = 0.10`` (normalized edit distance).

Because our points are variable-length sequences rather than vectors, there
is no spatial index to lean on.  Instead the implementation exploits the
structural properties of the workload:

* exact duplicates are extremely common in a grayware stream (the same ad
  script or packer output appears thousands of times), so points are
  de-duplicated before the quadratic neighbour search and re-expanded
  afterwards;
* the epsilon-neighbourhood graph is built in one batched query against
  :class:`~repro.distance.engine.DistanceEngine`, which evaluates every
  unordered pair exactly once behind layered exact prefilters, a bounded
  memo cache and (for large batches) a process pool.

Passing a custom ``metric`` falls back to the original per-point pairwise
scan, so non-edit-distance metrics keep working unchanged.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.distance.engine import DistanceEngine, DistanceEngineConfig
from repro.distance.metrics import DistanceMetric

#: Cluster id assigned to noise points.
NOISE = -1


@dataclass
class DBSCANResult:
    """Outcome of a DBSCAN run.

    Attributes
    ----------
    labels:
        One cluster id per input point; :data:`NOISE` marks noise points.
    cluster_count:
        Number of clusters found (noise excluded).
    comparisons:
        Number of pairwise distance evaluations performed, reported so the
        distributed simulator can charge realistic work for the run.
    """

    labels: List[int]
    cluster_count: int
    comparisons: int = 0

    def members(self) -> Dict[int, List[int]]:
        """Map cluster id -> list of point indices (noise under ``NOISE``)."""
        groups: Dict[int, List[int]] = defaultdict(list)
        for index, label in enumerate(self.labels):
            groups[label].append(index)
        return dict(groups)


@dataclass
class DBSCAN:
    """Density-based clustering over token strings.

    Parameters
    ----------
    epsilon:
        Maximum normalized distance for two points to be neighbours.  The
        paper determined 0.10 experimentally.
    min_points:
        Minimum neighbourhood size (including the point itself) for a core
        point.  The paper's clusters need enough samples to generate a
        signature, so small values (2-4) are typical.
    metric:
        Optional custom distance metric.  When given, the original pairwise
        scan is used; when omitted, neighbourhoods are batched through the
        distance engine (same labels, far less work).
    engine:
        Distance engine to issue batched queries against; defaults to a
        fresh engine with default config.  Ignored when ``metric`` is given.
    """

    epsilon: float = 0.10
    min_points: int = 3
    metric: Optional[DistanceMetric] = None
    engine: Optional[DistanceEngine] = None
    _comparisons: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if self.min_points < 1:
            raise ValueError("min_points must be at least 1")
        if self.metric is None and self.engine is None:
            self.engine = DistanceEngine(DistanceEngineConfig())

    # ------------------------------------------------------------------
    def fit(self, points: Sequence[Tuple[str, ...]],
            weights: Optional[Sequence[int]] = None) -> DBSCANResult:
        """Cluster the given token strings.

        ``weights`` optionally assigns each point a multiplicity toward the
        ``min_points`` density requirement (default 1).  The incremental
        pipeline uses this to cluster *sentinel* points that stand in for a
        whole group of shed duplicates: a sentinel with weight ``w`` behaves
        exactly like ``w`` co-located copies, which is also how exact
        duplicates are already handled internally.
        """
        self._comparisons = 0
        unique_points, owners = self._deduplicate(points)
        if weights is None:
            unique_weights = [len(indices) for indices in owners]
        else:
            if len(weights) != len(points):
                raise ValueError("weights must match points")
            unique_weights = [sum(weights[index] for index in indices)
                              for indices in owners]
        unique_labels = self._cluster_unique(unique_points, unique_weights)
        labels = [NOISE] * len(points)
        for unique_index, point_indices in enumerate(owners):
            for point_index in point_indices:
                labels[point_index] = unique_labels[unique_index]
        cluster_count = len({label for label in labels if label != NOISE})
        return DBSCANResult(labels=labels, cluster_count=cluster_count,
                            comparisons=self._comparisons)

    # ------------------------------------------------------------------
    def _deduplicate(self, points: Sequence[Tuple[str, ...]]
                     ) -> Tuple[List[Tuple[str, ...]], List[List[int]]]:
        seen: Dict[Tuple[str, ...], int] = {}
        unique_points: List[Tuple[str, ...]] = []
        owners: List[List[int]] = []
        for index, point in enumerate(points):
            key = tuple(point)
            if key in seen:
                owners[seen[key]].append(index)
            else:
                seen[key] = len(unique_points)
                unique_points.append(key)
                owners.append([index])
        return unique_points, owners

    def _neighbours(self, points: List[Tuple[str, ...]],
                    weights: List[int], index: int) -> List[int]:
        """Legacy per-point neighbour scan for custom metrics."""
        neighbours = []
        target = points[index]
        for other in range(len(points)):
            if other == index:
                continue
            self._comparisons += 1
            if self.metric.within(target, points[other], self.epsilon):
                neighbours.append(other)
        return neighbours

    def _neighbourhoods(self, points: List[Tuple[str, ...]]
                        ) -> List[List[int]]:
        """Epsilon-neighbourhood adjacency for every unique point.

        One batched engine query evaluates each unordered pair once; the
        legacy path evaluates each ordered pair for a custom metric.
        """
        if self.metric is not None:
            return [self._neighbours(points, [], index)
                    for index in range(len(points))]
        adjacency, comparisons = self.engine.neighbourhoods(points,
                                                            self.epsilon)
        self._comparisons += comparisons
        return adjacency

    def _cluster_unique(self, points: List[Tuple[str, ...]],
                        weights: List[int]) -> List[int]:
        # Weights: how many original samples each unique point represents.
        # They count toward the min_points density requirement.
        if not points:
            return []
        neighbourhoods = self._neighbourhoods(points)
        labels = [None] * len(points)  # type: List[Optional[int]]
        cluster_id = 0

        for index in range(len(points)):
            if labels[index] is not None:
                continue
            neighbours = neighbourhoods[index]
            density = weights[index] + sum(weights[n] for n in neighbours)
            if density < self.min_points:
                labels[index] = NOISE
                continue
            labels[index] = cluster_id
            seeds = list(neighbours)
            position = 0
            while position < len(seeds):
                candidate = seeds[position]
                position += 1
                if labels[candidate] == NOISE:
                    labels[candidate] = cluster_id
                if labels[candidate] is not None:
                    continue
                labels[candidate] = cluster_id
                candidate_neighbours = neighbourhoods[candidate]
                candidate_density = weights[candidate] + sum(
                    weights[n] for n in candidate_neighbours)
                if candidate_density >= self.min_points:
                    for extra in candidate_neighbours:
                        if labels[extra] is None or labels[extra] == NOISE:
                            seeds.append(extra)
            cluster_id += 1
        return [label if label is not None else NOISE for label in labels]
