"""Distributed clustering: partitioning, per-partition DBSCAN, and the driver.

The first stage of Kizzle's pipeline randomly partitions the daily sample
batch across a cluster of machines, tokenizes and clusters each partition
independently, and reconciles the per-partition clusters in a reduce step
(paper, Section III-A and Figure 7).  :class:`DistributedClusterer` wires the
real clustering code into the :mod:`repro.distsim` simulator so that both the
clusters and the timing breakdown are produced in one run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, \
    TYPE_CHECKING

from repro.clustering.dbscan import DBSCAN, NOISE
from repro.clustering.merge import merge_clusters
from repro.clustering.prototypes import select_prototype
from repro.distance.engine import DistanceEngine, DistanceEngineConfig, \
    EngineStats
from repro.distsim.mapreduce import MapReduceReport, SimCluster
from repro.jstoken.normalizer import abstract_token_string

if TYPE_CHECKING:
    from repro.core.prepared import PreparedCache
    from repro.exec.backend import ExecutionBackend


@dataclass
class ClusteredSample:
    """A sample together with its tokenized representation.

    Attributes
    ----------
    sample_id:
        Opaque identifier supplied by the caller (e.g. telemetry record id).
    content:
        The raw sample (HTML document or JavaScript source).
    tokens:
        The abstract token string; computed lazily by the pipeline if not
        supplied.
    weight:
        Multiplicity of the sample.  Ordinary samples weigh 1; the
        incremental pipeline collapses a group of shed near-duplicates into
        one *sentinel* sample whose weight is the group size, so density and
        prototype selection behave as if every copy were present.
    """

    sample_id: str
    content: str
    tokens: Tuple[str, ...] = field(default_factory=tuple)
    weight: int = 1

    @classmethod
    def from_content(cls, sample_id: str, content: str) -> "ClusteredSample":
        return cls(sample_id=sample_id, content=content,
                   tokens=abstract_token_string(content))

    def ensure_tokens(self) -> "ClusteredSample":
        if self.tokens:
            return self
        return ClusteredSample(sample_id=self.sample_id, content=self.content,
                               tokens=abstract_token_string(self.content),
                               weight=self.weight)


@dataclass
class Cluster:
    """A group of similar samples produced by the clustering stage."""

    cluster_id: int
    samples: List[ClusteredSample]
    prototype_index: int = 0

    @property
    def size(self) -> int:
        return len(self.samples)

    @property
    def weighted_size(self) -> int:
        """Total multiplicity including sentinel weights."""
        return sum(sample.weight for sample in self.samples)

    @property
    def prototype(self) -> ClusteredSample:
        return self.samples[self.prototype_index]

    def token_strings(self) -> List[Tuple[str, ...]]:
        return [sample.tokens for sample in self.samples]

    def contents(self) -> List[str]:
        return [sample.content for sample in self.samples]


def partition_samples(samples: Sequence[ClusteredSample], partitions: int,
                      seed: int = 0) -> List[List[ClusteredSample]]:
    """Randomly partition samples into roughly equal buckets.

    The shuffle is seeded so experiment runs are reproducible.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    shuffled = list(samples)
    random.Random(seed).shuffle(shuffled)
    buckets: List[List[ClusteredSample]] = [[] for _ in range(partitions)]
    for index, sample in enumerate(shuffled):
        buckets[index % partitions].append(sample)
    return [bucket for bucket in buckets if bucket]


def cluster_partition(samples: Sequence[ClusteredSample],
                      epsilon: float = 0.10,
                      min_points: int = 3,
                      engine: Optional[DistanceEngine] = None
                      ) -> Tuple[List[Cluster], int]:
    """Run DBSCAN over one partition.

    All neighbour queries are issued as one batch against ``engine`` (a
    fresh default engine when not supplied, so standalone callers keep
    working).  Returns the clusters found in this partition (noise points
    dropped) and the number of distance comparisons performed (the work
    accounting used by the simulator).
    """
    prepared = [sample.ensure_tokens() for sample in samples]
    if not prepared:
        return [], 0
    engine = engine or DistanceEngine()
    result = DBSCAN(epsilon=epsilon, min_points=min_points,
                    engine=engine).fit(
        [sample.tokens for sample in prepared],
        weights=[sample.weight for sample in prepared])
    clusters: List[Cluster] = []
    for label, indices in sorted(result.members().items()):
        if label == NOISE:
            continue
        members = [prepared[i] for i in indices]
        prototype_index = select_prototype([m.tokens for m in members],
                                           engine=engine,
                                           weights=[m.weight for m in members])
        clusters.append(Cluster(cluster_id=label, samples=members,
                                prototype_index=prototype_index))
    return clusters, result.comparisons


def partition_map_cost(samples: Sequence[ClusteredSample],
                       comparisons: int, epsilon: float) -> float:
    """Abstract work units of one partition's map: comparisons weighted by
    the typical banded-DP cost per pair.  One formula shared by the inline
    map and the partition-parallel workers, so the simulated machine time a
    backend charges never depends on where the map actually ran."""
    average_length = (sum(len(sample.tokens) for sample in samples)
                      / max(1, len(samples)))
    return comparisons * max(1.0, epsilon * average_length) * average_length


@dataclass
class PartitionMapResult:
    """What one per-partition map task sends back to the driver.

    Besides the clusters themselves, the worker ships its distance-engine
    accounting (:attr:`stats`) and every exact distance it computed
    (:attr:`cache_entries`) so the parent engine can merge both: the stats
    keep the per-layer attribution whole, and the cache entries let the
    reduce step reuse distances the map phase already paid for — the same
    benefit the inline path gets from sharing one engine.
    """

    index: int
    clusters: List[Cluster]
    comparisons: int
    cost: float
    output_bytes: float
    stats: Dict[str, int] = field(default_factory=dict)
    cache_entries: List[Tuple[Tuple[str, ...], Tuple[str, ...], int]] = \
        field(default_factory=list)
    #: Which worker produced this result (cluster backend fills it in from
    #: the lease; local pool results leave it ``None``).  Drives per-worker
    #: stats attribution in :meth:`DistanceEngine.absorb_remote`.
    worker_id: Optional[str] = None


@dataclass
class PartitionMapTask:
    """One whole per-partition map, shippable to a child process.

    Self-contained and picklable: the samples (already tokenized by the
    prepare stage), the DBSCAN parameters, and a worker-safe engine
    configuration travel with the task, so a persistent pool needs no
    per-day re-initialization.  :meth:`run` is the single execution path —
    pool workers and the serial fallback call exactly the same code, which
    is what makes partition-parallel execution byte-identical to inline by
    construction.
    """

    index: int
    samples: List[ClusteredSample]
    epsilon: float
    min_points: int
    engine_config: DistanceEngineConfig
    seed: int = 0

    def worker_engine(self) -> DistanceEngine:
        """A fresh engine for this task: strictly in-process (a pool worker
        is daemonic and must never fork its own pool) with a private cache
        whose exact distances are exported back to the parent."""
        return DistanceEngine(replace(self.engine_config, workers=1,
                                      shared_cache=False))

    def run(self, engine: Optional[DistanceEngine] = None,
            prepared: Optional["PreparedCache"] = None) -> PartitionMapResult:
        """Execute the map.  ``engine`` optionally supplies a caller-built
        engine (cluster workers pass one wrapping their persistent distance
        cache); ``prepared`` optionally supplies a tokenization cache —
        samples shipped without tokens (slim warm-affinity leases) re-derive
        them through it, and samples shipped with tokens seed it for the
        next day.  Tokens are a pure function of content either way, so
        every combination of arguments produces byte-identical results.
        """
        from repro.exec.process import chunk_seed

        random.seed(chunk_seed(self.seed, self.index))
        if engine is None:
            engine = self.worker_engine()
        # Tokenization is part of the map (the paper's per-machine work):
        # partitions arrive raw from a cold start and prepared from the
        # warm path's cache, and either way the tokenized forms feed both
        # DBSCAN below and the cost accounting.
        if prepared is None:
            ready = [sample.ensure_tokens() for sample in self.samples]
        else:
            ready = []
            for sample in self.samples:
                if sample.tokens:
                    prepared.seed_abstract(sample.content, sample.tokens)
                    ready.append(sample)
                else:
                    ready.append(replace(
                        sample,
                        tokens=prepared.abstract_tokens(sample.content)))
        clusters, comparisons = cluster_partition(
            ready, epsilon=self.epsilon, min_points=self.min_points,
            engine=engine)
        return PartitionMapResult(
            index=self.index,
            clusters=clusters,
            comparisons=comparisons,
            cost=partition_map_cost(ready, comparisons, self.epsilon),
            output_bytes=float(sum(len(cluster.prototype.content)
                                   for cluster in clusters)),
            stats=engine.stats.as_dict(),
            cache_entries=engine.export_cache())


class DistributedClusterer:
    """Partition + cluster + merge, executed through a pluggable backend.

    Parameters
    ----------
    epsilon, min_points:
        DBSCAN parameters (paper defaults: 0.10 and a small density
        requirement).
    sim_cluster:
        Legacy construction path: a simulated machine pool, wrapped in a
        :class:`~repro.exec.distsim.DistsimBackend` when no ``backend`` is
        given.  Defaults to the paper's 50 machines.
    seed:
        Seed for the random partitioning.
    engine_config:
        Distance-engine settings (worker count, prefilter toggles, cache
        size).  One engine is shared across the map and reduce phases so
        the reduce step reuses distances the map phase already computed.
    backend:
        The :class:`~repro.exec.backend.ExecutionBackend` the map/reduce
        structure and the engine fan-out run through.  Defaults to a
        distsim backend over ``sim_cluster`` — the seed reproduction's
        behaviour.
    machines:
        Logical machine count governing the *default partition count*.
        Deliberately independent of the backend: partitioning shapes the
        clustering output (per-partition DBSCAN + merge), so it must be
        identical whether the partitions run inline, on a pool, or on the
        simulator.  Defaults to the simulated pool size.
    """

    #: Target number of samples per partition when the caller does not pin
    #: the partition count.  Partitioning a small batch across all machines
    #: would starve every partition below the DBSCAN density requirement and
    #: turn everything into noise, so the default adapts to the batch size.
    MIN_SAMPLES_PER_PARTITION = 50

    #: Minimum partition size (samples) before *pre-tokenized* buckets are
    #: worth shipping to the partition pool: below this the per-partition
    #: DBSCAN is so cheap that pickling the contents out costs more than
    #: the overlap buys.  Untokenized buckets always fan out — lexing
    #: dominates and parallelizes perfectly.  Instance-tunable for tests.
    pooled_partition_min = 256

    def __init__(self, epsilon: float = 0.10, min_points: int = 3,
                 sim_cluster: Optional[SimCluster] = None,
                 seed: int = 0,
                 engine_config: Optional[DistanceEngineConfig] = None,
                 backend: Optional["ExecutionBackend"] = None,
                 machines: Optional[int] = None) -> None:
        from repro.exec.distsim import DistsimBackend

        self.epsilon = epsilon
        self.min_points = min_points
        if backend is None:
            backend = DistsimBackend.from_cluster(
                sim_cluster or SimCluster(machine_count=machines or 50),
                seed=seed)
        self.backend = backend
        if machines is not None:
            self.machines = machines
        else:
            # The logical machine count must not depend on the backend
            # kind: read the simulated pool when there is one, otherwise
            # the same configured value a distsim backend would have used.
            cluster = getattr(backend, "sim_cluster", None)
            if cluster is not None:
                self.machines = cluster.machine_count
            elif backend.config.machines is not None:
                self.machines = backend.config.machines
            else:
                self.machines = 50
        self.seed = seed
        self.engine = DistanceEngine(
            backend.engine_config(engine_config or DistanceEngineConfig()),
            executor=backend.pair_executor())

    @property
    def sim_cluster(self) -> SimCluster:
        """The simulated pool (a synthetic one for non-distsim backends)."""
        cluster = getattr(self.backend, "sim_cluster", None)
        if cluster is not None:
            return cluster
        return SimCluster(machine_count=self.machines)

    def run(self, samples: Sequence[ClusteredSample],
            partitions: Optional[int] = None
            ) -> Tuple[List[Cluster], MapReduceReport]:
        """Cluster a daily batch of samples.

        The map-over-partitions runs on the backend's partition executor
        (a persistent process pool) when one is supplied and the batch is
        worth fanning out; otherwise it runs inline through the backend's
        map/reduce driver.  Both paths execute the same per-partition code
        against the same buckets, so the merged clusters are byte-identical.
        Returns the final merged clusters (with globally unique ids) and the
        map/reduce timing report.
        """
        # Tokenization belongs to the *map*: each partition tokenizes its
        # own bucket (inline or in a pool worker), which is both what the
        # paper distributes and what lets the partition pool parallelize a
        # cold day's dominant cost.  Partitioning only shuffles by seeded
        # index, so bucket membership is independent of token state.
        if partitions is not None:
            partition_count = partitions
        else:
            partition_count = min(
                self.machines,
                max(1, len(samples) // self.MIN_SAMPLES_PER_PARTITION))
        buckets = partition_samples(list(samples), partition_count,
                                    seed=self.seed)

        def map_function(partition_items: Sequence[List[ClusteredSample]]
                         ) -> Tuple[List[Cluster], float, float]:
            # The map/reduce driver hands each partition a list of items; our
            # items are the pre-shuffled buckets, so flatten them back into a
            # single list of samples for this partition.
            bucket: List[ClusteredSample] = [
                sample.ensure_tokens() for item in partition_items
                for sample in item]
            clusters, comparisons = cluster_partition(
                bucket, epsilon=self.epsilon, min_points=self.min_points,
                engine=self.engine)
            cost = partition_map_cost(bucket, comparisons, self.epsilon)
            output_bytes = sum(len(cluster.prototype.content)
                               for cluster in clusters)
            return clusters, cost, output_bytes

        def reduce_function(per_partition: List[List[Cluster]]
                            ) -> Tuple[List[Cluster], float]:
            merged, comparisons = merge_clusters(per_partition,
                                                 epsilon=self.epsilon,
                                                 engine=self.engine)
            average_length = 1.0
            all_clusters = [cluster for part in per_partition for cluster in part]
            if all_clusters:
                average_length = sum(len(c.prototype.tokens)
                                     for c in all_clusters) / len(all_clusters)
            cost = comparisons * max(1.0, self.epsilon * average_length) \
                * average_length
            return merged, cost

        def item_bytes(bucket: List[ClusteredSample]) -> float:
            return float(sum(len(sample.content) for sample in bucket))

        before = EngineStats(**self.engine.stats.as_dict())
        executor = self.backend.partition_executor()
        if executor is not None and executor.should_engage(len(buckets)) \
                and self._worth_fanning_out(buckets):
            report = self._run_partition_parallel(buckets, executor,
                                                  reduce_function, item_bytes)
        else:
            report = self.backend.run_mapreduce(
                buckets, map_function, reduce_function, item_bytes=item_bytes)
        delta = EngineStats(**{
            name: value - getattr(before, name)
            for name, value in self.engine.stats.as_dict().items()})
        report.distance_stats = delta.as_dict()
        merged: List[Cluster] = report.reduce_value or []
        return merged, report

    def _worth_fanning_out(self, buckets: List[List[ClusteredSample]]
                           ) -> bool:
        """Whether shipping these buckets to the pool can pay for itself.

        Raw (untokenized) buckets always do — the map then carries the
        lexer, a cold day's dominant cost.  Pre-tokenized buckets (the warm
        path's cache output) only fan out when partitions are big enough
        for DBSCAN itself to outweigh the serialization overhead.
        """
        if any(not sample.tokens for bucket in buckets for sample in bucket):
            return True
        return max(len(bucket) for bucket in buckets) \
            >= self.pooled_partition_min

    def _run_partition_parallel(
            self, buckets: List[List[ClusteredSample]], executor,
            reduce_function: Callable[[List[List[Cluster]]],
                                      Tuple[List[Cluster], float]],
            item_bytes: Callable[[List[ClusteredSample]], float]
            ) -> MapReduceReport:
        """Fan the whole per-partition map out over the partition executor.

        Each partition's tokenize/DBSCAN/prototype work runs in a child
        process; the clusters come back with the worker's engine stats and
        every exact distance it computed, which are merged into the parent
        engine (so the reduce step reuses the map phase's distance work, as
        the inline path does through its shared engine).  The reduce itself
        stays in-process on the shared engine.
        """
        tasks = [PartitionMapTask(index=index, samples=bucket,
                                  epsilon=self.epsilon,
                                  min_points=self.min_points,
                                  engine_config=self.engine.config,
                                  seed=self.seed)
                 for index, bucket in enumerate(buckets)]
        results, pool_seconds = executor.run(tasks)
        for result in results:
            self.engine.absorb_remote(result.stats, result.cache_entries,
                                      worker=result.worker_id)
        return self.backend.run_partition_map(
            buckets, results, pool_seconds, executor.pool_width(),
            reduce_function, item_bytes)
