"""Prototype (representative sample) selection for clusters.

Kizzle unpacks and labels a *single prototype sample* per cluster (paper,
Section III-A), so the prototype should be the sample most representative of
the cluster.  We use the medoid: the member minimizing the sum of distances
to all other members.  For large clusters an exact medoid is quadratic, so a
seeded subsample is used beyond a size threshold — prototypes only need to be
"typical", not optimal.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.distance.engine import DistanceEngine

#: Above this cluster size the medoid is computed over a random subsample.
_EXACT_MEDOID_LIMIT = 40


def medoid_index(token_strings: Sequence[Tuple[str, ...]],
                 candidates: Optional[Sequence[int]] = None,
                 engine: Optional[DistanceEngine] = None) -> int:
    """Index of the medoid of the given token strings.

    ``candidates`` restricts both the candidate prototypes and the reference
    set (used for the subsampled approximation).  Distances go through the
    engine's memoized exact kernel — medoid computation touches each pair
    twice and duplicate members are the norm, so the cache pays off
    immediately.
    """
    if not token_strings:
        raise ValueError("cannot compute a medoid of an empty cluster")
    indices = list(candidates) if candidates is not None \
        else list(range(len(token_strings)))
    if len(indices) == 1:
        return indices[0]
    engine = engine or DistanceEngine()
    best_index = indices[0]
    best_total = float("inf")
    for i in indices:
        total = 0.0
        for j in indices:
            if i == j:
                continue
            total += engine.distance(token_strings[i], token_strings[j])
            if total >= best_total:
                break
        if total < best_total:
            best_total = total
            best_index = i
    return best_index


def select_prototype(token_strings: Sequence[Tuple[str, ...]],
                     seed: int = 0,
                     engine: Optional[DistanceEngine] = None) -> int:
    """Pick the prototype index for a cluster.

    Exact medoid for small clusters; medoid over a seeded subsample for
    large ones.  Duplicate-heavy clusters (the common case in grayware) are
    handled by always including the most frequent token string among the
    candidates.
    """
    if not token_strings:
        raise ValueError("cannot select a prototype from an empty cluster")
    if len(token_strings) <= _EXACT_MEDOID_LIMIT:
        return medoid_index(token_strings, engine=engine)

    rng = random.Random(seed)
    candidates = rng.sample(range(len(token_strings)),
                            _EXACT_MEDOID_LIMIT)
    # Make sure the modal token string is represented.
    counts: dict = {}
    for index, tokens in enumerate(token_strings):
        counts.setdefault(tokens, []).append(index)
    modal_indices: List[int] = max(counts.values(), key=len)
    if not any(index in candidates for index in modal_indices):
        candidates[0] = modal_indices[0]
    return medoid_index(token_strings, candidates=candidates, engine=engine)
