"""Prototype (representative sample) selection for clusters.

Kizzle unpacks and labels a *single prototype sample* per cluster (paper,
Section III-A), so the prototype should be the sample most representative of
the cluster.  We use the medoid: the member minimizing the sum of distances
to all other members.  For large clusters an exact medoid is quadratic, so a
seeded subsample is used beyond a size threshold — prototypes only need to be
"typical", not optimal.

Members may carry *weights* (multiplicities): the incremental pipeline
collapses a group of shed duplicates into one sentinel member of weight
``w``, and the medoid of the weighted members equals the medoid of the
expanded cluster, so warm and cold runs pick the same prototypes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.distance.engine import DistanceEngine

#: Above this cluster size the medoid is computed over a random subsample.
_EXACT_MEDOID_LIMIT = 40


def medoid_index(token_strings: Sequence[Tuple[str, ...]],
                 candidates: Optional[Sequence[int]] = None,
                 engine: Optional[DistanceEngine] = None,
                 weights: Optional[Sequence[int]] = None) -> int:
    """Index of the medoid of the given token strings.

    ``candidates`` restricts both the candidate prototypes and the reference
    set (used for the subsampled approximation).  ``weights`` multiplies each
    reference's contribution to a candidate's distance total.  Distances go
    through the engine's memoized exact kernel — medoid computation touches
    each pair twice and duplicate members are the norm, so the cache pays off
    immediately.
    """
    if not token_strings:
        raise ValueError("cannot compute a medoid of an empty cluster")
    indices = list(candidates) if candidates is not None \
        else list(range(len(token_strings)))
    if len(indices) == 1:
        return indices[0]
    engine = engine or DistanceEngine()
    best_index = indices[0]
    best_total = float("inf")
    for i in indices:
        total = 0.0
        for j in indices:
            if i == j:
                continue
            multiplier = weights[j] if weights is not None else 1
            total += engine.distance(token_strings[i], token_strings[j]) \
                * multiplier
            if total >= best_total:
                break
        if total < best_total:
            best_total = total
            best_index = i
    return best_index


def _weighted_modal_indices(token_strings: Sequence[Tuple[str, ...]],
                            weights: Optional[Sequence[int]]) -> List[int]:
    """Indices sharing the (weight-)most frequent token string."""
    counts: dict = {}
    totals: dict = {}
    for index, tokens in enumerate(token_strings):
        counts.setdefault(tokens, []).append(index)
        totals[tokens] = totals.get(tokens, 0) \
            + (weights[index] if weights is not None else 1)
    modal_tokens = max(totals, key=lambda tokens: totals[tokens])
    return counts[modal_tokens]


def select_prototype(token_strings: Sequence[Tuple[str, ...]],
                     seed: int = 0,
                     engine: Optional[DistanceEngine] = None,
                     weights: Optional[Sequence[int]] = None) -> int:
    """Pick the prototype index for a cluster.

    Exact medoid for small clusters; medoid over a seeded subsample for
    large ones.  Duplicate-heavy clusters (the common case in grayware) are
    handled by always including the most frequent token string among the
    candidates.
    """
    if not token_strings:
        raise ValueError("cannot select a prototype from an empty cluster")
    if len(token_strings) <= _EXACT_MEDOID_LIMIT:
        return medoid_index(token_strings, engine=engine, weights=weights)

    rng = random.Random(seed)
    candidates = rng.sample(range(len(token_strings)),
                            _EXACT_MEDOID_LIMIT)
    # Make sure the modal token string is represented.
    modal_indices = _weighted_modal_indices(token_strings, weights)
    if not any(index in candidates for index in modal_indices):
        candidates[0] = modal_indices[0]
    return medoid_index(token_strings, candidates=candidates, engine=engine,
                        weights=weights)
