"""Cluster labeling against a corpus of known unpacked exploit-kit samples
(paper, Section III-B)."""

from repro.labeling.corpus import KnownKitCorpus, CorpusEntry
from repro.labeling.labeler import ClusterLabeler, ClusterLabel

__all__ = [
    "KnownKitCorpus",
    "CorpusEntry",
    "ClusterLabeler",
    "ClusterLabel",
]
