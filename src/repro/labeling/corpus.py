"""The labeled corpus of known unpacked exploit-kit samples.

Kizzle is seeded with "a set of existing unpacked malware samples which
correspond to exploit kits Kizzle is aiming to detect" (Section III).  The
corpus stores their winnow histograms plus a per-family overlap threshold —
the paper notes the threshold is "malware family specific" and determined
empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.winnowing.fingerprint import DEFAULT_K, DEFAULT_WINDOW
from repro.winnowing.histogram import WinnowHistogram

#: Default per-family overlap thresholds.  RIG's unpacked body churns a lot
#: day over day (Figure 11d), so its threshold is the loosest; the other kits
#: barely change and can afford strict thresholds.
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "nuclear": 0.85,
    "angler": 0.85,
    "sweetorange": 0.80,
    "rig": 0.45,
}
FALLBACK_THRESHOLD = 0.80


@dataclass
class CorpusEntry:
    """One known unpacked kit sample."""

    kit: str
    histogram: WinnowHistogram
    collected: Optional[object] = None  # typically a datetime.date


@dataclass
class KnownKitCorpus:
    """Reference corpus used to label cluster prototypes."""

    k: int = DEFAULT_K
    window: int = DEFAULT_WINDOW
    thresholds: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_THRESHOLDS))
    entries: List[CorpusEntry] = field(default_factory=list)

    def add(self, kit: str, unpacked_text: str,
            collected: Optional[object] = None) -> CorpusEntry:
        """Add a known unpacked sample for a kit."""
        histogram = WinnowHistogram.of(unpacked_text, label=kit,
                                       k=self.k, window=self.window)
        entry = CorpusEntry(kit=kit, histogram=histogram, collected=collected)
        self.entries.append(entry)
        return entry

    def add_many(self, kit: str, unpacked_texts: Iterable[str]) -> None:
        for text in unpacked_texts:
            self.add(kit, text)

    def kits(self) -> List[str]:
        return sorted({entry.kit for entry in self.entries})

    def threshold_for(self, kit: str) -> float:
        return self.thresholds.get(kit, FALLBACK_THRESHOLD)

    def entries_for(self, kit: str) -> List[CorpusEntry]:
        return [entry for entry in self.entries if entry.kit == kit]

    def __len__(self) -> int:
        return len(self.entries)
