"""Labeling cluster prototypes by winnow-overlap against the known corpus."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.labeling.corpus import KnownKitCorpus
from repro.unpack.registry import UnpackerRegistry, default_registry
from repro.winnowing.histogram import WinnowHistogram


@dataclass
class ClusterLabel:
    """The labeling verdict for one cluster.

    ``kit`` is ``None`` for benign clusters.  ``overlap`` is the winnow
    overlap with the best-matching corpus family (reported even when below
    threshold, which is how the Figure 15 false-positive analysis quotes a
    79% overlap for a benign library).
    """

    kit: Optional[str]
    overlap: float
    best_family: Optional[str]
    unpacked: str
    layers: int = 0

    @property
    def is_malicious(self) -> bool:
        return self.kit is not None


class ClusterLabeler:
    """Unpacks a cluster prototype and labels it against the corpus."""

    def __init__(self, corpus: KnownKitCorpus,
                 registry: Optional[UnpackerRegistry] = None) -> None:
        self.corpus = corpus
        self.registry = registry or default_registry()

    def label_prototype(self, prototype_content: str) -> ClusterLabel:
        """Unpack and label a single prototype sample."""
        unpacked, applied = self.registry.unpack(prototype_content)
        histogram = WinnowHistogram.of(unpacked, k=self.corpus.k,
                                       window=self.corpus.window)
        best_family: Optional[str] = None
        best_overlap = 0.0
        for entry in self.corpus.entries:
            overlap = histogram.overlap(entry.histogram)
            if overlap > best_overlap:
                best_overlap = overlap
                best_family = entry.kit
        kit: Optional[str] = None
        if best_family is not None \
                and best_overlap >= self.corpus.threshold_for(best_family):
            kit = best_family
        return ClusterLabel(kit=kit, overlap=best_overlap,
                            best_family=best_family, unpacked=unpacked,
                            layers=len(applied))

    def label_cluster(self, cluster) -> ClusterLabel:
        """Label a :class:`~repro.clustering.partition.Cluster` by its
        prototype."""
        return self.label_prototype(cluster.prototype.content)
