"""Unpacker interface."""

from __future__ import annotations

import abc
from typing import Optional

from repro.jstoken.normalizer import strip_html


class UnpackError(Exception):
    """Raised when an unpacker recognizes its packer but fails to reverse it
    (truncated capture, corrupted payload, unexpected variation)."""


class Unpacker(abc.ABC):
    """Base class for per-kit unpackers.

    An unpacker exposes two operations: :meth:`recognizes` is a cheap check
    for whether the packed sample looks like this unpacker's packer, and
    :meth:`unpack` reverses the packing.  ``unpack`` may raise
    :class:`UnpackError`; it must not silently return wrong output.
    """

    #: Kit family this unpacker targets; informational only (the labeler does
    #: not trust it — labeling is done by winnowing against the corpus).
    kit: str = ""

    @abc.abstractmethod
    def recognizes(self, content: str) -> bool:
        """Cheap structural test for this packer."""

    @abc.abstractmethod
    def unpack(self, content: str) -> str:
        """Reverse the packer and return the inner payload."""

    # ------------------------------------------------------------------
    def try_unpack(self, content: str) -> Optional[str]:
        """Return the unpacked payload, or ``None`` if not recognized/failed."""
        if not self.recognizes(content):
            return None
        try:
            return self.unpack(content)
        except UnpackError:
            return None

    @staticmethod
    def script_of(content: str) -> str:
        """The inline-script portion of a sample (HTML is tolerated)."""
        return strip_html(content)
