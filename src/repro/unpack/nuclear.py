"""Unpacker for the Nuclear encrypted-payload packer (paper, Figure 4b).

The packer carries two long string literals — the digit payload and the
encryption key — plus a decryption loop.  The unpacker locates them (payload:
the long all-digit literal; key: the long literal referenced by the
``charCodeAt`` accumulation loop) and applies the inverse transformation from
:mod:`repro.ekgen.nuclear`.
"""

from __future__ import annotations

import re

from repro.ekgen.nuclear import decrypt_payload
from repro.unpack.base import Unpacker, UnpackError

_STRING_ASSIGN_RE = re.compile(r'var\s+([A-Za-z_$][\w$]*)\s*=\s*"([^"]*)"\s*;')
_DIGITS_RE = re.compile(r'^[0-9]{30,}$')


class NuclearUnpacker(Unpacker):
    """Reverses the Nuclear digit-payload packer."""

    kit = "nuclear"

    def recognizes(self, content: str) -> bool:
        script = self.script_of(content)
        if "charCodeAt" not in script or "fromCharCode" not in script:
            return False
        if "getter" not in script:
            return False
        return self._find_payload(script) is not None

    def unpack(self, content: str) -> str:
        script = self.script_of(content)
        payload = self._find_payload(script)
        if payload is None:
            raise UnpackError("no digit payload literal found")
        key = self._find_key(script, payload)
        if key is None:
            raise UnpackError("no encryption key literal found")
        try:
            return decrypt_payload(payload, key)
        except ValueError as exc:
            raise UnpackError(str(exc)) from exc

    # ------------------------------------------------------------------
    @staticmethod
    def _find_payload(script: str):
        """The longest all-digit string literal (the encrypted payload)."""
        candidates = [value for _name, value in _STRING_ASSIGN_RE.findall(script)
                      if _DIGITS_RE.match(value)]
        if not candidates:
            return None
        return max(candidates, key=len)

    @staticmethod
    def _find_key(script: str, payload: str):
        """The encryption key: the longest non-digit string literal whose
        variable is used in a ``charCodeAt`` accumulation."""
        assignments = _STRING_ASSIGN_RE.findall(script)
        best = None
        for name, value in assignments:
            if value == payload or _DIGITS_RE.match(value):
                continue
            if f"{name}.charCodeAt(" not in script:
                continue
            if best is None or len(value) > len(best):
                best = value
        return best
