"""Unpacker for the RIG char-code/delimiter packer (paper, Figure 4a)."""

from __future__ import annotations

import re

from repro.unpack.base import Unpacker, UnpackError

_DELIM_RE = re.compile(r'var\s+([A-Za-z_$][\w$]*)\s*=\s*"([^"]{1,8})"\s*;')
_SPLIT_RE = re.compile(r'\.split\(\s*([A-Za-z_$][\w$]*)\s*\)')
_FROMCHARCODE_RE = re.compile(r'String\.fromCharCode')
_CALL_RE_TEMPLATE = r'{name}\(\s*"([^"]*)"\s*\)\s*;'


class RigUnpacker(Unpacker):
    """Reverses the RIG ``collect()``/``split``/``fromCharCode`` packer."""

    kit = "rig"

    def recognizes(self, content: str) -> bool:
        script = self.script_of(content)
        return (bool(_FROMCHARCODE_RE.search(script))
                and ".split(" in script
                and "createElement" in script
                and "appendChild" in script
                and self._find_collect_name(script) is not None)

    def unpack(self, content: str) -> str:
        script = self.script_of(content)
        collect_name = self._find_collect_name(script)
        if collect_name is None:
            raise UnpackError("no collect-style accumulator function found")
        delimiter = self._find_delimiter(script)
        if delimiter is None:
            raise UnpackError("no delimiter assignment found")
        call_re = re.compile(_CALL_RE_TEMPLATE.format(name=re.escape(collect_name)))
        chunks = call_re.findall(script)
        if not chunks:
            raise UnpackError("no collect() calls with string arguments found")
        buffer = "".join(chunks)
        pieces = [piece for piece in buffer.split(delimiter) if piece != ""]
        try:
            return "".join(chr(int(piece)) for piece in pieces)
        except ValueError as exc:
            raise UnpackError(f"non-numeric char code in buffer: {exc}") from exc

    # ------------------------------------------------------------------
    @staticmethod
    def _find_collect_name(script: str):
        """Name of the function whose body appends its argument to a buffer."""
        match = re.search(
            r'function\s+([A-Za-z_$][\w$]*)\s*\(\s*([A-Za-z_$][\w$]*)\s*\)\s*'
            r'\{\s*([A-Za-z_$][\w$]*)\s*\+=\s*\2\s*;?\s*\}',
            script)
        return match.group(1) if match else None

    @staticmethod
    def _find_delimiter(script: str):
        """The delimiter: the short string variable later passed to split()."""
        split_match = _SPLIT_RE.search(script)
        if not split_match:
            return None
        delim_variable = split_match.group(1)
        for name, value in _DELIM_RE.findall(script):
            if name == delim_variable:
                return value
        return None
