"""Per-kit unpackers.

The paper unpacks each cluster's prototype before labeling it.  Rather than
hooking a JavaScript engine's ``eval`` loop, the authors "implemented
unpackers for all kits under investigation" (Section III-A) — we do exactly
the same: each unpacker statically recognizes its kit's packer idiom in the
packed sample and reverses it.  A registry tries every unpacker in turn and a
driver iterates until no unpacker applies (kits sometimes pack in multiple
layers).
"""

from repro.unpack.base import Unpacker, UnpackError
from repro.unpack.rig import RigUnpacker
from repro.unpack.nuclear import NuclearUnpacker
from repro.unpack.angler import AnglerUnpacker
from repro.unpack.sweetorange import SweetOrangeUnpacker
from repro.unpack.registry import UnpackerRegistry, default_registry, unpack_sample

__all__ = [
    "Unpacker",
    "UnpackError",
    "RigUnpacker",
    "NuclearUnpacker",
    "AnglerUnpacker",
    "SweetOrangeUnpacker",
    "UnpackerRegistry",
    "default_registry",
    "unpack_sample",
]
