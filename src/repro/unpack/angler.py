"""Unpacker for the Angler hex-string packer."""

from __future__ import annotations

import re

from repro.ekgen.angler import hex_decode
from repro.unpack.base import Unpacker, UnpackError

_HEX_CONCAT_RE = re.compile(
    r'var\s+[A-Za-z_$][\w$]*\s*=\s*((?:"[0-9a-fA-F]+"\s*\+?\s*\n?\s*)+);')
_HEX_LITERAL_RE = re.compile(r'"([0-9a-fA-F]+)"')
_EVAL_TRIGGER_RE = re.compile(r'window\[\s*"ev"\s*\+\s*"al"\s*\]')


class AnglerUnpacker(Unpacker):
    """Reverses the Angler hex-encoded payload packer."""

    kit = "angler"

    def recognizes(self, content: str) -> bool:
        script = self.script_of(content)
        return (bool(_EVAL_TRIGGER_RE.search(script))
                and "parseInt(" in script
                and bool(_HEX_CONCAT_RE.search(script)))

    def unpack(self, content: str) -> str:
        script = self.script_of(content)
        match = _HEX_CONCAT_RE.search(script)
        if not match:
            raise UnpackError("no hex payload concatenation found")
        pieces = _HEX_LITERAL_RE.findall(match.group(1))
        if not pieces:
            raise UnpackError("hex payload is empty")
        encoded = "".join(pieces)
        try:
            return hex_decode(encoded)
        except ValueError as exc:
            raise UnpackError(str(exc)) from exc
