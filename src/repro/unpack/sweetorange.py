"""Unpacker for the Sweet Orange chunk-array/junk-token packer (Figure 10b).

The packer stores the payload as an array of JSON-style string chunks with a
junk token interleaved, joins them and strips the junk with a ``new RegExp``
replace.  The unpacker finds the chunk array (the array literal that is
``join``-ed), decodes the string literals, joins them and removes the junk
token found in the ``new RegExp([["...", "g"]])`` table.

The chunk strings may themselves contain brackets and escaped quotes (they
carry arbitrary JavaScript), so the array body is extracted with a small
bracket-matching scanner that is string-literal aware rather than with a
regular expression.
"""

from __future__ import annotations

import json
import re
from typing import List, Optional

from repro.ekgen.sweetorange import remove_junk
from repro.unpack.base import Unpacker, UnpackError

_STRING_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
_JUNK_TABLE_RE = re.compile(
    r'\[\s*\[\s*"((?:[^"\\]|\\.)+)"\s*,\s*"g"\s*\]\s*\]')
_MATH_SQRT_RE = re.compile(r'Math\.sqrt\(\s*\d+\s*\)')


class SweetOrangeUnpacker(Unpacker):
    """Reverses the Sweet Orange chunk/junk packer."""

    kit = "sweetorange"

    def recognizes(self, content: str) -> bool:
        script = self.script_of(content)
        return ("new RegExp(" in script
                and ".join(" in script
                and bool(_MATH_SQRT_RE.search(script))
                and bool(_JUNK_TABLE_RE.search(script)))

    def unpack(self, content: str) -> str:
        script = self.script_of(content)
        junk_match = _JUNK_TABLE_RE.search(script)
        if not junk_match:
            raise UnpackError("no junk-token table found")
        junk = junk_match.group(1)

        array_variable = self._joined_array_variable(script)
        if array_variable is None:
            raise UnpackError("no join()-ed array found")
        body = self._array_body(script, array_variable)
        if body is None:
            raise UnpackError(f"could not extract the {array_variable} array body")
        literals = _STRING_LITERAL_RE.findall(body)
        if not literals:
            raise UnpackError("chunk array contains no string literals")
        try:
            decoded = "".join(json.loads(f'"{literal}"') for literal in literals)
        except json.JSONDecodeError as exc:
            raise UnpackError(f"malformed chunk literal: {exc}") from exc
        return remove_junk(decoded, junk)

    # ------------------------------------------------------------------
    @staticmethod
    def _joined_array_variable(script: str) -> Optional[str]:
        """The variable name of the first array that gets ``join("")``-ed and
        is declared as an array literal (skips selector arrays of calls)."""
        candidates: List[str] = re.findall(
            r'([A-Za-z_$][\w$]*)\.join\(\s*""\s*\)', script)
        for name in candidates:
            if re.search(rf'var\s+{re.escape(name)}\s*=\s*\[\s*"', script):
                return name
        return candidates[0] if candidates else None

    @staticmethod
    def _array_body(script: str, variable: str) -> Optional[str]:
        """Extract the balanced ``[...]`` body of ``var <variable> = [...]``.

        The scanner tracks string literals and escapes so brackets inside the
        chunk strings do not terminate the array early.
        """
        declaration = re.search(rf'var\s+{re.escape(variable)}\s*=\s*\[', script)
        if not declaration:
            return None
        start = declaration.end()  # position just after the opening '['
        depth = 1
        in_string = False
        escaped = False
        for position in range(start, len(script)):
            char = script[position]
            if in_string:
                if escaped:
                    escaped = False
                elif char == "\\":
                    escaped = True
                elif char == '"':
                    in_string = False
                continue
            if char == '"':
                in_string = True
            elif char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth == 0:
                    return script[start:position]
        return None
