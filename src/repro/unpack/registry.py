"""Unpacker registry and the multi-layer unpacking driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.unpack.angler import AnglerUnpacker
from repro.unpack.base import Unpacker
from repro.unpack.nuclear import NuclearUnpacker
from repro.unpack.rig import RigUnpacker
from repro.unpack.sweetorange import SweetOrangeUnpacker


@dataclass
class UnpackerRegistry:
    """Ordered collection of unpackers.

    ``unpack`` walks the packed sample through as many layers as the
    registered unpackers recognize — exploit kits occasionally pack twice,
    and the onion metaphor of the paper explicitly allows multiple layers.
    """

    unpackers: List[Unpacker] = field(default_factory=list)
    max_layers: int = 4

    def register(self, unpacker: Unpacker) -> None:
        self.unpackers.append(unpacker)

    def unpack(self, content: str) -> Tuple[str, List[str]]:
        """Unpack as many layers as possible.

        Returns ``(innermost_payload, applied_unpacker_kits)``.  If nothing
        recognizes the sample, the original content is returned with an empty
        list — the sample is simply "not packed" as far as Kizzle can tell.
        """
        current = content
        applied: List[str] = []
        for _layer in range(self.max_layers):
            next_payload: Optional[str] = None
            for unpacker in self.unpackers:
                payload = unpacker.try_unpack(current)
                if payload is not None:
                    next_payload = payload
                    applied.append(unpacker.kit)
                    break
            if next_payload is None:
                break
            current = next_payload
        return current, applied


def default_registry() -> UnpackerRegistry:
    """Registry with the four kit unpackers the paper implements."""
    registry = UnpackerRegistry()
    registry.register(RigUnpacker())
    registry.register(NuclearUnpacker())
    registry.register(AnglerUnpacker())
    registry.register(SweetOrangeUnpacker())
    return registry


def unpack_sample(content: str) -> str:
    """Convenience: fully unpack one sample with the default registry."""
    payload, _applied = default_registry().unpack(content)
    return payload
