"""Reproduction of *Kizzle: A Signature Compiler for Detecting Exploit Kits*
(Stock, Livshits, Zorn — DSN 2016).

The top-level package re-exports the public entry points a downstream user
needs: the :class:`~repro.core.pipeline.Kizzle` driver and its configuration,
the synthetic telemetry generator used in place of the paper's proprietary
IE telemetry, and the simulated commercial AV baseline.  The substrates
(tokenizer, clustering, winnowing, unpackers, signatures, scanner, cluster
simulator) live in their own subpackages; see DESIGN.md for the map.
"""

from repro.core.config import KizzleConfig
from repro.core.pipeline import Kizzle
from repro.core.results import ClusterReport, DailyResult
from repro.core.stages import Stage, StageGraph
from repro.ekgen.telemetry import DailyBatch, StreamConfig, TelemetryGenerator
from repro.exec.backend import BackendConfig, create_backend
from repro.scanner.avbaseline import SimulatedCommercialAV, default_av_baseline
from repro.signatures.signature import Signature

__version__ = "1.0.0"

__all__ = [
    "Kizzle",
    "KizzleConfig",
    "BackendConfig",
    "create_backend",
    "ClusterReport",
    "DailyResult",
    "Stage",
    "StageGraph",
    "TelemetryGenerator",
    "StreamConfig",
    "DailyBatch",
    "SimulatedCommercialAV",
    "default_av_baseline",
    "Signature",
    "__version__",
]
