"""Partition-level map executor: a persistent pool for whole map tasks.

The pair executors in :mod:`repro.exec.process` parallelize *inside* one
partition's distance workload; this module parallelizes *across* partitions
— the embarrassingly parallel map stage the paper distributes over a
cluster.  A :class:`PartitionPoolExecutor` owns one long-lived
:mod:`multiprocessing` pool and ships whole
:class:`~repro.clustering.partition.PartitionMapTask` objects to it: each
child process tokenizes (a no-op for pre-prepared samples), runs DBSCAN and
selects prototypes for its partition, then sends the clusters back together
with its engine stats and exact-distance cache so the parent can merge both.

The pool is created lazily on the first batch that is worth fanning out and
then reused day over day (fork/spawn cost is paid once per pipeline, not
once per day); tasks are self-contained, so nothing is re-initialized
between batches.  Small batches — fewer than two partitions, or a
single-worker configuration — run the very same ``task.run()`` code inline,
which keeps results byte-identical by construction and is also the fallback
for forkless environments.

Determinism mirrors the pair executors: every task re-seeds the
:mod:`random` module from ``(seed, partition_index)`` at the start of
``run()`` (see :meth:`PartitionMapTask.run`), so any worker-side randomness
is reproducible for every pool width and task placement.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:
    import multiprocessing.pool

    from repro.clustering.partition import PartitionMapResult, \
        PartitionMapTask


def _run_partition_task(task: "PartitionMapTask") -> "PartitionMapResult":
    """Pool worker entry point (top-level so it pickles under spawn)."""
    return task.run()


class PartitionPoolExecutor:
    """A persistent process pool executing whole per-partition map tasks.

    Parameters
    ----------
    workers:
        Pool width.  ``0`` auto-detects (``cpu_count``); ``1`` never forks
        — every batch takes the inline fallback.
    seed:
        Recorded for introspection; the per-task RNG seed ships inside each
        task, so the pool itself carries no seeding state.
    """

    name = "partition-pool"

    def __init__(self, workers: int = 0, seed: int = 0) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers
        self.seed = seed
        self._pool: Optional["multiprocessing.pool.Pool"] = None
        # Registered once here, not per pool creation: close() is
        # idempotent, and re-registering on every lazy re-create would pin
        # one handler (and this executor) per close()/run cycle.
        atexit.register(self.close)
        #: Batches executed on the real pool (telemetry for tests).
        self.pooled_batches = 0
        #: Batches that took the inline fallback.
        self.inline_batches = 0

    # -- sizing ---------------------------------------------------------
    def pool_width(self) -> int:
        """The worker count a pooled batch runs with."""
        if self.workers == 0:
            return multiprocessing.cpu_count()
        return self.workers

    def should_engage(self, task_count: int) -> bool:
        """Whether a batch of ``task_count`` partitions is worth forking
        for.  One partition has nothing to overlap, and one worker would
        only add shipping overhead to serial execution."""
        return task_count >= 2 and self.pool_width() > 1

    # -- execution ------------------------------------------------------
    def run(self, tasks: Sequence["PartitionMapTask"]
            ) -> Tuple[List["PartitionMapResult"], float]:
        """Execute the batch; returns ``(results, wall_seconds)``.

        Results come back in task order regardless of which worker ran
        what.  Batches below the engagement threshold run inline through
        the identical ``task.run()`` path.
        """
        started = time.perf_counter()
        if not self.should_engage(len(tasks)):
            self.inline_batches += 1
            results = [task.run() for task in tasks]
        else:
            self.pooled_batches += 1
            results = self._ensure_pool().map(_run_partition_task,
                                              list(tasks))
        return results, time.perf_counter() - started

    def _ensure_pool(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self.pool_width())
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent); the next batch re-creates it."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
