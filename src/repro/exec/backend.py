"""The pluggable execution-backend interface.

The stage-graph pipeline (:mod:`repro.core.stages`) describes *what* the
daily loop does; an :class:`ExecutionBackend` decides *where* the work runs.
Three implementations share the interface:

* :class:`~repro.exec.serial.SerialBackend` — everything inline in one
  process, no simulation; the reference substrate every other backend must
  match byte for byte.
* :class:`~repro.exec.process.ProcessBackend` — the distance-pair fan-out
  runs on a real :mod:`multiprocessing` pool (the machinery that used to be
  private to :mod:`repro.distance.engine`), with deterministic per-chunk
  RNG seeding so any worker count produces identical results.
* :class:`~repro.exec.distsim.DistsimBackend` — drives the
  :mod:`repro.distsim` scheduler/map-reduce simulator, so makespan and
  utilization reports come from real scheduled stage tasks rather than
  side-channel cost charging.  This is the default (it reproduces the
  paper's 50-machine timing model, and it is what the seed reproduction
  always did).
* :class:`~repro.exec.cluster.ClusterBackend` — true multi-machine
  execution: a TCP coordinator leases whole partition map tasks and
  pair-decision chunks to :mod:`repro.exec.worker` processes on this or
  other hosts, with heartbeats, per-task deadlines and re-dispatch on
  worker loss (``tests/test_cluster_faults.py`` proves byte-identity
  under injected failures).

Backends only change *where and how fast* work executes, never its result:
cluster labels, signatures and per-day FP/FN are byte-identical across all
of them (asserted in ``tests/test_backends.py``).  Anything that affects
results — partition counts, shuffle seeds, epsilon — stays in
:class:`~repro.core.config.KizzleConfig` and is shared by every backend.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.distsim.machine import MachineSpec
from repro.distsim.mapreduce import MapReduceReport

#: Recognized backend kinds, in CLI/help order.
BACKEND_KINDS = ("serial", "process", "distsim", "cluster")


@dataclass(frozen=True)
class BackendConfig:
    """Execution-substrate settings, resolved by the pipeline.

    Attributes
    ----------
    kind:
        ``"serial"``, ``"process"``, ``"distsim"`` (the default; it
        reproduces the seed behaviour, including the simulated timing
        model *and* the process-pool distance fan-out) or ``"cluster"``
        (real multi-machine execution over TCP workers; see
        :mod:`repro.exec.cluster`).
    machines:
        Size of the simulated machine pool (distsim) and the unit count
        extra stages are charged over.  ``None`` inherits
        ``KizzleConfig.machines``.  Note the *partition* count of the
        clustering stage always comes from ``KizzleConfig.machines`` so
        that clustering output never depends on the backend.
    workers:
        Process-pool width for the distance fan-out (process/distsim
        backends).  ``0`` auto-detects; ``None`` inherits
        ``DistanceEngineConfig.workers``.
    partition_parallel:
        Run the *partition-level* map (tokenize + DBSCAN per partition) on
        a persistent worker pool instead of inline (process/distsim
        backends; the serial backend always runs inline).  On by default —
        results are byte-identical either way, and batches too small to
        amortize a fan-out (one partition, or one worker) stay inline
        automatically.
    seed:
        Base seed for deterministic per-chunk worker RNG seeding.  ``None``
        inherits ``KizzleConfig.seed``.
    listen:
        Cluster backend only: ``"host:port"`` the TCP coordinator binds
        (``None`` means loopback with an OS-assigned port; read the real
        address from ``ClusterBackend.address``).
    spawn_workers:
        Cluster backend only: localhost worker subprocesses the backend
        launches itself (``0`` means all workers are external — started
        by hand with ``python -m repro.exec.worker --connect host:port``).
    task_deadline_s / heartbeat_timeout_s / max_task_retries:
        Cluster backend only: per-lease execution deadline, maximum worker
        silence before it is declared dead, and the re-dispatch budget per
        task (see :class:`~repro.exec.cluster.ClusterCoordinator`).
    secret:
        Cluster backend only: shared wire secret — every frame between
        coordinator and workers is HMAC-authenticated under it and peers
        that cannot tag correctly are rejected before payload decode.
        ``None`` falls back to the ``REPRO_CLUSTER_SECRET`` environment
        variable; with neither set the wire still integrity-checks frames
        under a public default key (single-host development mode).
    affinity:
        Cluster backend only: prefer re-leasing repeat partitions to the
        worker that served them last and ship such leases token-stripped
        (the worker's persistent caches re-derive them).  Purely a
        warm-path optimization — results are byte-identical either way.
    """

    kind: str = "distsim"
    machines: Optional[int] = None
    workers: Optional[int] = None
    partition_parallel: bool = True
    seed: Optional[int] = None
    listen: Optional[str] = None
    spawn_workers: int = 0
    task_deadline_s: float = 60.0
    heartbeat_timeout_s: float = 10.0
    max_task_retries: int = 3
    secret: Optional[str] = None
    affinity: bool = True

    def __post_init__(self) -> None:
        if self.kind not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend kind {self.kind!r}; "
                f"expected one of {', '.join(BACKEND_KINDS)}")
        if self.machines is not None and self.machines < 1:
            raise ValueError("machines must be at least 1")
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.spawn_workers < 0:
            raise ValueError("spawn_workers must be non-negative")
        if self.task_deadline_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ValueError("cluster deadlines must be positive")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be non-negative")

    def resolved(self, machines: int, workers: int,
                 seed: int) -> "BackendConfig":
        """A copy with every ``None`` field filled from pipeline defaults."""
        return BackendConfig(
            kind=self.kind,
            machines=self.machines if self.machines is not None else machines,
            workers=self.workers if self.workers is not None else workers,
            partition_parallel=self.partition_parallel,
            seed=self.seed if self.seed is not None else seed,
            listen=self.listen,
            spawn_workers=self.spawn_workers,
            task_deadline_s=self.task_deadline_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            max_task_retries=self.max_task_retries,
            secret=self.secret,
            affinity=self.affinity)


class ExecutionBackend(abc.ABC):
    """Where stage work runs: inline, on a process pool, or simulated.

    The interface has four load-bearing methods:

    * :meth:`run_mapreduce` executes the clustering stage's scatter/map/
      gather/reduce structure and returns a
      :class:`~repro.distsim.mapreduce.MapReduceReport` (with
      ``reduce_value`` holding the merged clusters);
    * :meth:`simulate_stage` accounts an extra perfectly-parallel stage
      (shedding, carry-forward probes) against the backend's notion of the
      machine pool, recording virtual seconds in the report;
    * :meth:`pair_executor` supplies the
      :class:`~repro.distance.engine.DistanceEngine` with its batch
      fan-out substrate (``None`` keeps the engine serial);
    * :meth:`partition_executor` supplies the partition-level map executor
      (``None`` keeps the map-over-partitions inline); backends whose
      executor engaged report the finished map through
      :meth:`run_partition_map`, which charges/records timing without
      re-executing the work.
    """

    #: Short identifier, also the CLI ``--backend`` value.
    name: str = "abstract"

    def __init__(self, config: BackendConfig) -> None:
        self.config = config

    # -- substrate ------------------------------------------------------
    @property
    def machine_spec(self) -> MachineSpec:
        """The machine model stage costs are converted with."""
        return MachineSpec()

    @property
    def charge_units(self) -> int:
        """Parallel width extra stage costs are spread over."""
        return 1

    def pair_executor(self):
        """Distance-pair batch executor for the engine (``None`` = serial)."""
        return None

    def partition_executor(self):
        """Partition-level map executor (``None`` = map runs inline).

        When supplied, the clustering driver ships whole per-partition map
        tasks (tokenize + DBSCAN + prototypes) to the executor's persistent
        pool and hands the finished results to :meth:`run_partition_map`.
        """
        return None

    def close(self) -> None:
        """Release pooled resources (idempotent).  Backends without
        persistent substrate state have nothing to do."""

    def engine_config(self, base):
        """The distance-engine configuration this backend runs with.

        The default keeps the pipeline's configuration untouched; the
        serial backend forces ``workers=1`` so even paper-scale batches
        stay in-process.
        """
        return base

    # -- execution ------------------------------------------------------
    @abc.abstractmethod
    def run_mapreduce(self, buckets: Sequence[Any],
                      map_function: Callable[[Sequence[Any]], Any],
                      reduce_function: Callable[[List[Any]], Any],
                      item_bytes: Callable[[Any], float]) -> MapReduceReport:
        """Execute one map/reduce over pre-partitioned buckets.

        ``map_function`` receives a list of items (the backend hands each
        bucket through as a single item, matching
        :class:`~repro.distsim.mapreduce.MapReduceJob` semantics) and must
        return ``(value, cost, output_bytes)``; ``reduce_function`` receives
        the list of map values and returns ``(value, cost)``.  The report's
        ``reduce_value`` carries the reduce result.
        """

    @abc.abstractmethod
    def simulate_stage(self, report: MapReduceReport, name: str,
                       cost: float) -> float:
        """Account an extra perfectly-parallel stage of ``cost`` work units.

        Records the stage's virtual seconds in ``report.stage_seconds`` (and,
        for the simulator backend, per-stage utilization from the real
        scheduled tasks).  Returns the seconds charged.
        """

    def run_partition_map(self, buckets: Sequence[Any],
                          results: Sequence[Any], pool_seconds: float,
                          pool_width: int,
                          reduce_function: Callable[[List[Any]], Any],
                          item_bytes: Callable[[Any], float]
                          ) -> MapReduceReport:
        """Account a partition map that already ran on the partition pool.

        ``results`` carries one finished
        :class:`~repro.clustering.partition.PartitionMapResult` per bucket,
        in bucket order.  The map/reduce structure is replayed through
        :meth:`run_mapreduce` with a map function that simply returns each
        bucket's precomputed ``(clusters, cost, output_bytes)``: the
        simulator backend thereby keeps charging the recorded costs as
        simulated machine time (the paper's timing model is preserved even
        though the work ran on the real pool), while the reduce executes
        for real.  ``pool_seconds``/``pool_width`` record the measured wall
        clock and width of the real pool in the report.
        """
        by_bucket = {id(bucket): result
                     for bucket, result in zip(buckets, results)}

        def precomputed_map(partition_items: Sequence[Any]) -> Any:
            result = by_bucket[id(partition_items[0])]
            return result.clusters, result.cost, result.output_bytes

        report = self.run_mapreduce(buckets, precomputed_map,
                                    reduce_function, item_bytes)
        report.map_wall_seconds = pool_seconds
        report.map_workers = pool_width
        return report


class InlineBackend(ExecutionBackend):
    """Shared substrate for backends that execute map/reduce inline.

    Map and reduce run as plain function calls in submission order; the
    report's map/reduce times are measured wall clock and the network
    phases are zero (nothing is shipped anywhere).  Extra stages charge
    through :meth:`MapReduceReport.charge_stage` — the one place the
    cost-to-seconds formula lives — spread over :attr:`charge_units`.
    """

    def run_mapreduce(self, buckets: Sequence[Any],
                      map_function: Callable[[Sequence[Any]], Any],
                      reduce_function: Callable[[List[Any]], Any],
                      item_bytes: Callable[[Any], float]) -> MapReduceReport:
        started = time.perf_counter()
        map_values: List[Any] = []
        for bucket in buckets:
            value, _cost, _output_bytes = map_function([bucket])
            map_values.append(value)
        map_seconds = time.perf_counter() - started

        started = time.perf_counter()
        reduce_value, _reduce_cost = reduce_function(map_values)
        reduce_seconds = time.perf_counter() - started

        return MapReduceReport(
            machine_count=self.charge_units,
            partitions=max(1, len(buckets)),
            scatter_time=0.0,
            map_time=map_seconds,
            gather_time=0.0,
            reduce_time=reduce_seconds,
            reduce_value=reduce_value,
            backend=self.name,
        )

    def simulate_stage(self, report: MapReduceReport, name: str,
                       cost: float) -> float:
        return report.charge_stage(name, cost,
                                   machine_count=self.charge_units,
                                   spec=self.machine_spec)

    def run_partition_map(self, buckets, results, pool_seconds, pool_width,
                          reduce_function, item_bytes) -> MapReduceReport:
        """Inline backends report measured wall clock, so the map time is
        the real pool's wall clock rather than the near-zero cost of
        replaying precomputed values."""
        report = super().run_partition_map(buckets, results, pool_seconds,
                                           pool_width, reduce_function,
                                           item_bytes)
        report.map_time = pool_seconds
        return report


def create_backend(config: BackendConfig) -> ExecutionBackend:
    """Instantiate the backend named by ``config.kind``.

    Imports lazily so that ``repro.exec.backend`` stays importable from the
    configuration layer without dragging in multiprocessing plumbing.
    """
    if config.kind == "serial":
        from repro.exec.serial import SerialBackend
        return SerialBackend(config)
    if config.kind == "process":
        from repro.exec.process import ProcessBackend
        return ProcessBackend(config)
    if config.kind == "distsim":
        from repro.exec.distsim import DistsimBackend
        return DistsimBackend(config)
    if config.kind == "cluster":
        from repro.exec.cluster import ClusterBackend
        return ClusterBackend(config)
    raise ValueError(f"unknown backend kind {config.kind!r}")
