"""Process-pool execution backend and the distance-pair fan-out.

This module owns the :mod:`multiprocessing` plumbing that used to live
privately inside :mod:`repro.distance.engine`: the pool worker globals, the
chunked pair-deciding worker function, and :class:`ProcessPairExecutor` —
the object a :class:`~repro.distance.engine.DistanceEngine` delegates its
batched fan-out to.  Centralizing it here means every backend (and the
engine's own standalone default) shares one implementation, one seeding
policy and one set of worker functions that survive pickling under spawn.

Determinism
-----------
Workers re-seed the :mod:`random` module at the start of **every chunk**,
from ``(base_seed, chunk_index)``.  Chunks are formed and indexed
deterministically by the parent, so any randomness a worker-side computation
may ever use is reproducible regardless of the pool width or which worker a
chunk lands on: runs with ``--workers 1`` and ``--workers N`` are
byte-identical for any ``N`` (asserted in ``tests/test_backends.py``).
"""

from __future__ import annotations

import multiprocessing
import random
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.distance.engine import DistanceEngineConfig, EngineStats, \
    PointProfile, TokenString, decide_profiles
from repro.exec.backend import BackendConfig, InlineBackend

#: One decided pair: ``(i, j, within_epsilon, exact_distance_or_None)``.
PairDecision = Tuple[int, int, bool, Optional[int]]

# ----------------------------------------------------------------------
# pool worker plumbing (top-level so it survives pickling under spawn)
# ----------------------------------------------------------------------
_WORKER_POINTS: List[TokenString] = []
_WORKER_PROFILES: Dict[int, PointProfile] = {}
_WORKER_CONFIG: Optional[DistanceEngineConfig] = None
_WORKER_EPSILON: float = 0.0
_WORKER_SEED: int = 0


def _pool_init(points: List[TokenString], epsilon: float,
               config: DistanceEngineConfig, seed: int) -> None:
    global _WORKER_POINTS, _WORKER_PROFILES, _WORKER_CONFIG, \
        _WORKER_EPSILON, _WORKER_SEED
    _WORKER_POINTS = points
    _WORKER_PROFILES = {}
    _WORKER_CONFIG = config
    _WORKER_EPSILON = epsilon
    _WORKER_SEED = seed


def chunk_seed(base_seed: int, chunk_index: int) -> int:
    """The deterministic RNG seed of one work chunk.

    Derived from the base seed and the chunk's position in the batch — not
    from the worker's identity — so the stream of random numbers any chunk
    sees is the same for every pool width.
    """
    return (base_seed * 1_000_003 + chunk_index) & 0x7FFFFFFF


def _profile_for(points: Sequence[TokenString],
                 profiles: Dict[int, PointProfile], index: int,
                 config: DistanceEngineConfig) -> PointProfile:
    profile = profiles.get(index)
    if profile is None:
        profile = PointProfile(points[index], config.qgram_size)
        profiles[index] = profile
    return profile


def decide_chunk(points: Sequence[TokenString],
                 profiles: Dict[int, PointProfile],
                 indexed_chunk: Tuple[int, Sequence[Tuple[int, int]]],
                 epsilon: float, config: DistanceEngineConfig,
                 seed: int, *, cache: Any = None
                 ) -> Tuple[List[PairDecision], Dict[str, int]]:
    """Decide one indexed chunk of candidate pairs against explicit state.

    Shared by the pool worker (whose state lives in the ``_WORKER_*``
    globals set by :func:`_pool_init`) and the serial executor (whose state
    is local to one ``decide_chunks`` call).  Returns the per-pair decisions
    plus the chunk's stats; exact distances flow back so the caller can seed
    its cache, and the stats merge into the caller's accounting.

    ``cache`` optionally supplies an exact
    :class:`~repro.distance.engine.PairDistanceCache` (cluster workers pass
    their persistent warm store).  Pool workers run cache-less; either way
    the verdicts are identical — the cache stores exact distances, so a hit
    only skips recomputation.
    """
    chunk_index, chunk = indexed_chunk
    random.seed(chunk_seed(seed, chunk_index))
    stats = EngineStats()
    out: List[PairDecision] = []
    for i, j in chunk:
        profile_a = _profile_for(points, profiles, i, config)
        profile_b = _profile_for(points, profiles, j, config)
        threshold = int(epsilon * max(profile_a.length, profile_b.length))
        verdict, distance = decide_profiles(profile_a, profile_b, threshold,
                                            config, cache, stats)
        out.append((i, j, verdict, distance))
    # The triage loop in the parent already counted these pairs.
    stats.pairs = 0
    return out, stats.as_dict()


def _pool_decide_chunk(indexed_chunk: Tuple[int, Sequence[Tuple[int, int]]]
                       ) -> Tuple[List[PairDecision], Dict[str, int]]:
    """Decide one indexed chunk inside a pool worker (global state)."""
    return decide_chunk(_WORKER_POINTS, _WORKER_PROFILES, indexed_chunk,
                        _WORKER_EPSILON, _WORKER_CONFIG, _WORKER_SEED)


# ----------------------------------------------------------------------
# pair executors
# ----------------------------------------------------------------------
class SerialPairExecutor:
    """Decide chunks inline — the executor a forkless environment gets.

    State (points, profiles, config) is local to each ``decide_chunks``
    call, never the ``_WORKER_*`` module globals: the generator is lazy, so
    two engines interleaving their chunk iteration in one process must not
    clobber each other's points mid-batch (the globals are reserved for
    real pool workers, where each process serves exactly one batch).
    """

    name = "serial"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def decide_chunks(self, points: List[TokenString],
                      chunks: Sequence[Sequence[Tuple[int, int]]],
                      epsilon: float, config: DistanceEngineConfig
                      ) -> Iterable[Tuple[List[PairDecision], Dict[str, int]]]:
        profiles: Dict[int, PointProfile] = {}
        for indexed in enumerate(chunks):
            yield decide_chunk(points, profiles, indexed, epsilon, config,
                               self.seed)


class ProcessPairExecutor:
    """Fan chunked pair queries out over a :mod:`multiprocessing` pool.

    A fresh pool is created per batch (matching the engine's historical
    behaviour); workers run cache-less so exact distances flow back to the
    parent's cache, and each chunk re-seeds its RNG deterministically.
    """

    name = "process"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def decide_chunks(self, points: List[TokenString],
                      chunks: Sequence[Sequence[Tuple[int, int]]],
                      epsilon: float, config: DistanceEngineConfig
                      ) -> Iterable[Tuple[List[PairDecision], Dict[str, int]]]:
        workers = config.effective_workers()
        if workers <= 1 or len(chunks) < 2:
            yield from SerialPairExecutor(self.seed).decide_chunks(
                points, chunks, epsilon, config)
            return
        # Workers keep the counting filters (pruning before the kernel) but
        # run cache-less: exact distances flow back and are cached by the
        # engine.
        worker_config = replace(config, shared_cache=False, cache_size=0,
                                workers=1)
        with multiprocessing.Pool(
                processes=min(workers, len(chunks)),
                initializer=_pool_init,
                initargs=(points, epsilon, worker_config, self.seed)) as pool:
            yield from pool.map(_pool_decide_chunk, list(enumerate(chunks)))


# ----------------------------------------------------------------------
# the backend
# ----------------------------------------------------------------------
class ProcessBackend(InlineBackend):
    """Real process-pool parallelism, no simulation.

    The partition-level map (tokenize + DBSCAN per partition) fans out over
    a persistent :class:`~repro.exec.partition.PartitionPoolExecutor` —
    whole partitions ship to child processes and per-partition clusters
    ship back — while batches too small to partition keep the historical
    inline map, whose distance-pair workload fans out over a per-batch pool
    via :class:`ProcessPairExecutor`.  Report times are measured wall
    clock, as with the serial backend.
    """

    name = "process"

    def __init__(self, config: BackendConfig) -> None:
        super().__init__(config)
        self._executor = ProcessPairExecutor(seed=config.seed or 0)
        self._partition_executor = None
        if config.partition_parallel:
            from repro.exec.partition import PartitionPoolExecutor
            self._partition_executor = PartitionPoolExecutor(
                workers=config.workers or 0, seed=config.seed or 0)

    # -- substrate ------------------------------------------------------
    @property
    def charge_units(self) -> int:
        workers = self.config.workers or 0
        if workers == 0:
            return multiprocessing.cpu_count()
        return workers

    def pair_executor(self):
        return self._executor

    def partition_executor(self):
        return self._partition_executor

    def close(self) -> None:
        if self._partition_executor is not None:
            self._partition_executor.close()

    def engine_config(self, base):
        updates: Dict[str, Any] = {}
        if self.config.workers is not None \
                and base.workers != self.config.workers:
            updates["workers"] = self.config.workers
        if self.config.seed is not None and base.seed != self.config.seed:
            updates["seed"] = self.config.seed
        return replace(base, **updates) if updates else base
