"""Simulated-cluster execution backend (the default).

Wraps the :mod:`repro.distsim` discrete-event simulator behind the
:class:`~repro.exec.backend.ExecutionBackend` interface: the clustering
stage runs through :class:`~repro.distsim.mapreduce.MapReduceJob` on a
:class:`~repro.distsim.mapreduce.SimCluster` exactly as the seed
reproduction did, and the extra pipeline stages (shedding, carry-forward
probes) are submitted as *real scheduled tasks* to a
:class:`~repro.distsim.scheduler.Scheduler` over the same machine pool — so
their makespan includes scheduling overhead and their per-machine
utilization is observable, instead of being a side-channel arithmetic
charge.

Real execution still uses real cores (the simulator models machine *time*,
not Python's speed): the partition-level map runs on the same persistent
:class:`~repro.exec.partition.PartitionPoolExecutor` the process backend
uses — with the recorded per-partition costs charged as simulated machine
time through :class:`MapReduceJob` — and the distance-pair fan-out uses the
per-batch process pool.  A distsim day therefore runs as fast as a
process-backend day while also reporting the virtual 50-machine timeline
the paper describes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.distsim.machine import MachineSpec
from repro.distsim.mapreduce import MapReduceJob, MapReduceReport, SimCluster
from repro.distsim.scheduler import Scheduler, Task
from repro.exec.backend import BackendConfig, ExecutionBackend
from repro.exec.partition import PartitionPoolExecutor
from repro.exec.process import ProcessPairExecutor


class DistsimBackend(ExecutionBackend):
    """Execute stages on the simulated machine pool.

    An injected ``sim_cluster`` must agree with ``config.machines`` when
    both are given: the simulated pool size drives ``charge_units`` (what
    stage costs are spread over), so a silent mismatch would desynchronize
    the timing model from the configuration.
    """

    name = "distsim"

    def __init__(self, config: BackendConfig,
                 sim_cluster: Optional[SimCluster] = None) -> None:
        super().__init__(config)
        if sim_cluster is not None and config.machines is not None \
                and sim_cluster.machine_count != config.machines:
            raise ValueError(
                f"injected sim_cluster has {sim_cluster.machine_count} "
                f"machines but the backend config says {config.machines}; "
                f"pass a matching config (or leave machines unset to adopt "
                f"the cluster's size)")
        machines = config.machines if config.machines is not None else 50
        self.sim_cluster = sim_cluster or SimCluster(machine_count=machines)
        self._executor = ProcessPairExecutor(seed=config.seed or 0)
        self._partition_executor = None
        if config.partition_parallel:
            self._partition_executor = PartitionPoolExecutor(
                workers=config.workers or 0, seed=config.seed or 0)

    @classmethod
    def from_cluster(cls, sim_cluster: SimCluster,
                     seed: int = 0) -> "DistsimBackend":
        """Wrap an existing simulated cluster (legacy construction path)."""
        config = BackendConfig(kind="distsim",
                               machines=sim_cluster.machine_count, seed=seed)
        return cls(config, sim_cluster=sim_cluster)

    # -- substrate ------------------------------------------------------
    @property
    def machine_spec(self) -> MachineSpec:
        return self.sim_cluster.machine_spec

    @property
    def charge_units(self) -> int:
        return self.sim_cluster.machine_count

    def pair_executor(self):
        return self._executor

    def partition_executor(self):
        return self._partition_executor

    def close(self) -> None:
        if self._partition_executor is not None:
            self._partition_executor.close()

    def engine_config(self, base):
        # Keep the configured worker pool (the simulator only models
        # virtual time; the real computation still deserves real cores),
        # but propagate the backend seed for deterministic chunk RNG.
        if self.config.seed is not None and base.seed != self.config.seed:
            from dataclasses import replace
            return replace(base, seed=self.config.seed)
        return base

    # -- execution ------------------------------------------------------
    def run_mapreduce(self, buckets: Sequence[Any],
                      map_function: Callable[[Sequence[Any]], Any],
                      reduce_function: Callable[[List[Any]], Any],
                      item_bytes: Callable[[Any], float]) -> MapReduceReport:
        job = MapReduceJob(self.sim_cluster, map_function, reduce_function)
        report = job.run(buckets, partitions=len(buckets),
                         item_bytes=item_bytes)
        report.backend = self.name
        return report

    def simulate_stage(self, report: MapReduceReport, name: str,
                       cost: float) -> float:
        """Schedule the stage as real tasks on the simulated pool.

        The stage is modelled as perfectly parallel: one task per machine,
        each carrying an equal share of the cost.  The recorded seconds are
        the scheduler's makespan (including per-task startup latency), and
        the pool's mean utilization over that makespan is kept in
        ``report.stage_utilization`` — both derived from actual scheduled
        tasks rather than a cost/`machines` division.
        """
        if cost <= 0:
            # A stage that did no work charges nothing — scheduling
            # zero-cost tasks would still bill per-task startup latency.
            report.stage_seconds.setdefault(name, 0.0)
            return 0.0
        machines = self.sim_cluster.machine_count
        scheduler = Scheduler(machines, spec=self.sim_cluster.machine_spec)
        share = cost / machines
        scheduler.run_tasks([
            Task(name=f"{name}-{index}", callable=lambda: None, cost=share)
            for index in range(machines)])
        seconds = scheduler.makespan
        report.stage_seconds[name] = report.stage_seconds.get(name, 0.0) \
            + seconds
        utilization = scheduler.utilization()
        if utilization:
            report.stage_utilization[name] = \
                sum(utilization.values()) / len(utilization)
        return seconds
