"""Serial execution backend: everything inline, one process, no simulation.

The reference substrate.  Map and reduce run as plain function calls in
submission order (see :class:`~repro.exec.backend.InlineBackend`); the
report's virtual times are the measured wall clock, so
``DailyResult.timing.total_time`` remains meaningful (it is simply real
time).  The distance engine is forced onto its serial path regardless of the
configured worker count — a serial run must never fork.
"""

from __future__ import annotations

from dataclasses import replace

from repro.exec.backend import InlineBackend


class SerialBackend(InlineBackend):
    """Run every stage inline in the current process."""

    name = "serial"

    def engine_config(self, base):
        # One process means one worker: even a paper-scale batch must not
        # spin up a pool behind the serial backend's back.
        if base.workers == 1:
            return base
        return replace(base, workers=1)
