"""Standalone cluster worker: ``python -m repro.exec.worker --connect ...``.

One worker process serves one coordinator at a time.  The loop is a pull
model: the worker requests a task, executes it, sends the result, repeats;
a side thread heartbeats over the same socket (sends are serialized by a
lock) so liveness is visible even while a long task computes.  Every frame
either way is HMAC-authenticated and sequence-numbered by the shared
:class:`~repro.exec.wire.FrameCodec` under the secret from
``--cluster-secret`` / ``REPRO_CLUSTER_SECRET`` — a worker with the wrong
secret never gets past ``hello``.

Membership is elastic:

* **Join any time.**  A worker started mid-month registers and starts
  pulling leases immediately.
* **Leave gracefully.**  SIGTERM sets a drain flag: the in-flight task
  finishes, its result is delivered, the worker sends ``goodbye`` and
  exits 0.  The coordinator treats this as departure, not death — no
  re-dispatch, no exclusion-list entry.
* **Reconnect with bounded backoff.**  A dropped connection (coordinator
  restart, network blip) is retried on a jittered exponential schedule
  (:class:`ReconnectPolicy`) until the attempt budget runs out; an
  explicit ``shutdown`` from the coordinator ends the worker for good.

Warmth: the worker keeps a persistent :class:`WorkerCaches` — a
tokenization :class:`~repro.core.prepared.PreparedCache` plus an exact
pair-distance cache — keyed by the coordinator-issued cache epoch.  A
repeat partition leased back to this worker ships *slim* (tokens
stripped); the prepared cache re-derives them, byte-identically, without
the coordinator re-shipping the same strings every day.

Task kinds mirror the coordinator's leases:

* ``partition_map`` — a :class:`~repro.clustering.partition.PartitionMapTask`;
  execution is ``task.run()`` fed with this worker's warm engine and
  prepared cache — the same decision code path the inline and process
  substrates use, which is what keeps cluster execution byte-identical
  by construction.
* ``pair_chunks`` — a :class:`~repro.exec.cluster.PairChunkLease` of
  distance-pair chunks, decided through the shared
  :func:`~repro.exec.process.decide_chunk` with the persistent distance
  cache underneath.

A task that raises is reported back as ``failed`` (the coordinator
re-dispatches it elsewhere); the worker itself stays up.

Fault injection (test harness)
------------------------------
``--fault`` arms one deliberately broken behaviour so the fault-injection
suite can exercise the coordinator's failure handling deterministically:

* ``sigkill-mid-task`` — SIGKILL this very process the moment the first
  task arrives (a machine lost mid-map: no goodbye, no flush);
* ``drop-mid-frame`` — compute the first result, send only half of its
  frame, then sever the connection (a torn write: the coordinator must
  treat the truncated frame as a dead worker, never decode it);
* ``stall-heartbeat`` — accept the first task, then stop heartbeating and
  never answer (a wedged process: only the heartbeat/deadline sweep can
  reclaim the lease);
* ``bad-hmac`` — on the first task, send a frame whose authentication tag
  is tampered (the coordinator must reject it with ``AuthError`` before
  any payload decode and drop us);
* ``replayed-frame`` — send a valid frame, then replay the identical
  bytes (same sequence number twice: ``ReplayError`` before decode);
* ``rogue-pickle`` — send a perfectly framed, correctly authenticated
  payload whose pickle names a forbidden callable (``os.system``); the
  allow-listed decoder must reject it with ``ForbiddenPayload`` without
  ever constructing the object;
* ``drain-mid-task`` — deliver SIGTERM to ourselves the moment the first
  task arrives, proving a drain returns the in-flight result exactly
  once and departs without re-dispatch.

Fault-armed workers never reconnect (each fault is a one-shot scenario).
These flags exist for the test suite; production deployments simply never
pass ``--fault``.
"""

from __future__ import annotations

import argparse
import os
import pickle
import random
import signal
import socket
import sys
import threading
import time
from dataclasses import replace
from typing import Any, Optional, Tuple

from repro.exec import wire
from repro.exec.cluster import (PairChunkLease, SECRET_ENV, parse_address,
                                run_pair_lease)

FAULTS = ("sigkill-mid-task", "drop-mid-frame", "stall-heartbeat",
          "bad-hmac", "replayed-frame", "rogue-pickle", "drain-mid-task")


class ReconnectPolicy:
    """Bounded exponential backoff with jitter for re-dialing a coordinator.

    ``delay(attempt)`` is pure given the policy's RNG: attempt ``n`` waits
    ``min(cap_s, base_s * 2**n)`` scaled by a uniform jitter in
    ``[0.5, 1.0)`` — bounded above by ``cap_s`` always, and never zero, so
    a fleet of workers losing the same coordinator does not reconnect in
    lockstep.  The schedule is unit-testable without sleeping: it returns
    numbers, the caller decides how to wait on them.
    """

    def __init__(self, base_s: float = 0.5, cap_s: float = 30.0,
                 max_attempts: int = 6,
                 rng: Optional[random.Random] = None) -> None:
        if base_s <= 0 or cap_s < base_s:
            raise ValueError("need 0 < base_s <= cap_s")
        if max_attempts < 0:
            raise ValueError("max_attempts must be non-negative")
        self.base_s = base_s
        self.cap_s = cap_s
        self.max_attempts = max_attempts
        self.rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int) -> float:
        """Seconds to wait before reconnect attempt ``attempt`` (0-based)."""
        bounded = min(self.cap_s, self.base_s * (2.0 ** attempt))
        return bounded * (0.5 + 0.5 * self.rng.random())


class WorkerCaches:
    """The worker's persistent warm state, keyed by coordinator epoch.

    * ``prepared`` — memoized tokenization/normalization per content
      string, so a slim (token-stripped) repeat lease re-derives tokens
      from cache instead of the lexer, and the coordinator stops shipping
      them at all.
    * ``distances`` — exact pair-distance results; hits skip the Myers
      kernel on warm days.  Leased engines wrap it in a
      :class:`~repro.distance.engine.DeltaCache` so each task still
      exports only *its own* new entries to the coordinator.

    Both caches survive across tasks and days but never across epochs:
    the coordinator issues its epoch in the welcome and on every lease,
    and :meth:`ensure_epoch` wipes everything on a change (e.g. after a
    coordinator restart or configuration change).  Correctness never
    depends on the caches — they are exact and content-addressed — so a
    wipe only costs warmth.
    """

    def __init__(self, prepared_size: int = 65536,
                 distance_size: int = 262144) -> None:
        from repro.core.prepared import PreparedCache
        from repro.distance.engine import PairDistanceCache

        self.prepared = PreparedCache(max_entries=prepared_size)
        self.distances = PairDistanceCache(maxsize=distance_size)
        self.epoch: Optional[int] = None
        self.wipes = 0

    def ensure_epoch(self, epoch: Optional[int]) -> None:
        if epoch is None or epoch == self.epoch:
            return
        if self.epoch is not None:
            self.prepared.clear()
            self.distances.clear()
            self.wipes += 1
        self.epoch = epoch


def execute_task(kind: str, payload: Any,
                 caches: Optional[WorkerCaches] = None) -> Any:
    """Run one leased task; shared by the worker loop and its tests.

    With ``caches``, partition maps run against a warm engine (persistent
    distance cache behind a delta view, prepared cache for tokenization)
    and pair leases read through the persistent distance cache.  Results
    are byte-identical with or without caches — they are exact and
    content-addressed — warm just skips recomputation and re-shipping.
    """
    if kind == "partition_map":
        if caches is None:
            return payload.run()
        return _run_partition_warm(payload, caches)
    if kind == "pair_chunks":
        if not isinstance(payload, PairChunkLease):
            raise TypeError(f"pair_chunks payload must be a PairChunkLease, "
                            f"got {type(payload).__name__}")
        return run_pair_lease(
            payload, cache=caches.distances if caches is not None else None)
    raise ValueError(f"unknown task kind {kind!r}")


def _run_partition_warm(task: Any, caches: WorkerCaches) -> Any:
    """Execute a ``PartitionMapTask`` against this worker's warm caches.

    The engine gets a :class:`DeltaCache` view over the persistent
    distance cache (so ``export_cache`` ships only this task's new
    entries, not the whole warm store) and the task gets the prepared
    cache to re-derive any stripped tokens.  Prepared-cache hit/miss
    deltas ride home in the result's stats, joining the engine's existing
    per-worker attribution.
    """
    from repro.distance.engine import DeltaCache, DistanceEngine

    before = caches.prepared.stats()
    config = replace(task.engine_config, workers=1, shared_cache=False)
    engine = DistanceEngine(config, cache=DeltaCache(caches.distances))
    result = task.run(engine=engine, prepared=caches.prepared)
    after = caches.prepared.stats()
    if isinstance(result.stats, dict):
        result.stats["prepared_hits"] = (after["tokens_hits"]
                                         - before["tokens_hits"])
        result.stats["prepared_misses"] = (after["tokens_misses"]
                                           - before["tokens_misses"])
    return result


class Worker:
    """A worker process's state across its (possibly several) connections."""

    def __init__(self, address: Tuple[str, int], *,
                 heartbeat_interval: float = 2.0,
                 fault: Optional[str] = None,
                 secret: Optional[str] = None,
                 reconnect: Optional[ReconnectPolicy] = None,
                 warm: bool = True) -> None:
        if fault is not None and fault not in FAULTS:
            raise ValueError(f"unknown fault {fault!r}")
        self.address = address
        self.heartbeat_interval = heartbeat_interval
        self.fault = fault
        self.secret = secret
        self.reconnect = reconnect if reconnect is not None \
            else ReconnectPolicy()
        self.caches: Optional[WorkerCaches] = WorkerCaches() if warm else None
        self.worker_id: Optional[str] = None
        self.tasks_done = 0
        self._sock: Optional[socket.socket] = None
        self._codec: Optional[wire.FrameCodec] = None
        self._send_lock = threading.Lock()
        self._stop_heartbeat = threading.Event()
        self._draining = threading.Event()
        self._welcomed = False

    # -- plumbing -------------------------------------------------------
    def _send(self, payload: Any) -> None:
        with self._send_lock:
            self._codec.send(self._sock, payload)

    def _heartbeat_loop(self, stop: threading.Event, sock: socket.socket,
                        codec: wire.FrameCodec) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                with self._send_lock:
                    codec.send(sock, ("heartbeat", {}))
            except (OSError, wire.WireError):
                return

    def _on_sigterm(self, signum, frame) -> None:  # pragma: no cover - signal
        self._draining.set()

    # -- faults ---------------------------------------------------------
    def _inject_on_task(self, task_id: int) -> None:
        """Fire the armed fault now that a task is leased to us."""
        if self.fault == "sigkill-mid-task":
            os.kill(os.getpid(), signal.SIGKILL)
        if self.fault == "stall-heartbeat":
            self._stop_heartbeat.set()
            # Wedged: hold the lease, answer nothing.  The coordinator's
            # heartbeat sweep must reclaim it; the test harness reaps this
            # process afterwards.
            time.sleep(3600.0)
            sys.exit(1)
        if self.fault == "drain-mid-task":
            # A graceful departure caught mid-lease: the SIGTERM handler
            # sets the drain flag, this task still runs to completion and
            # its result is delivered, then the loop says goodbye.
            self.fault = None
            os.kill(os.getpid(), signal.SIGTERM)
            return
        if self.fault == "bad-hmac":
            with self._send_lock:
                tampered = bytearray(self._codec.encode(("heartbeat", {})))
                tampered[-1] ^= 0xFF  # flip a bit inside the HMAC tag
                self._sock.sendall(bytes(tampered))
            self._await_teardown()
        if self.fault == "replayed-frame":
            with self._send_lock:
                frame = self._codec.encode(("heartbeat", {}))
                self._sock.sendall(frame)
                self._sock.sendall(frame)  # identical bytes, same sequence
            self._await_teardown()
        if self.fault == "rogue-pickle":
            # Correctly framed, correctly authenticated, fresh sequence —
            # but the payload pickle names a callable outside the
            # allow-list.  Only the restricted decoder stands between
            # this and code execution on the coordinator.
            hostile = pickle.dumps(os.system, protocol=4)
            with self._send_lock:
                self._sock.sendall(self._codec.encode_raw(hostile))
            self._await_teardown()

    def _await_teardown(self) -> None:
        """Wait for the coordinator to drop us, then exit nonzero."""
        self._stop_heartbeat.set()
        try:
            self._sock.settimeout(30.0)
            while self._sock.recv(4096):
                pass
        except OSError:
            pass
        sys.exit(1)

    def _send_truncated_result(self, task_id: int, result: Any) -> None:
        with self._send_lock:
            frame = self._codec.encode(("result", {"task_id": task_id,
                                                   "payload": result}))
            self._sock.sendall(frame[:max(1, len(frame) // 2)])
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
        sys.exit(1)

    # -- the loop -------------------------------------------------------
    def run(self) -> int:
        """Serve the coordinator until shutdown, drain, or the reconnect
        budget runs out; returns an exit code."""
        if threading.current_thread() is threading.main_thread():
            signal.signal(signal.SIGTERM, self._on_sigterm)
        attempt = 0
        while True:
            self._welcomed = False
            try:
                outcome = self._serve_once()
                if outcome is not None:
                    return outcome
            except (OSError, wire.WireError):
                pass
            # Connection lost without a verdict: maybe reconnect.
            if self._draining.is_set():
                return 0
            if self.fault is not None:
                return 1  # fault scenarios are one-shot: never rejoin
            if self._welcomed:
                attempt = 0  # we served successfully; restart the schedule
            if attempt >= self.reconnect.max_attempts:
                return 1
            delay = self.reconnect.delay(attempt)
            attempt += 1
            if self._draining.wait(delay):
                return 0

    def _serve_once(self) -> Optional[int]:
        """One connection's conversation.  Returns an exit code when the
        worker should stop for good (shutdown, drain, protocol drift),
        ``None`` or raises ``OSError``/``WireError`` when the connection
        was lost and reconnecting is reasonable."""
        self._sock = socket.create_connection(self.address, timeout=30.0)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Individual reads block at most this long; the coordinator's idle
        # replies keep the stream active, so a long silence means it died.
        self._sock.settimeout(300.0)
        self._codec = wire.FrameCodec(self.secret)
        self._stop_heartbeat = threading.Event()
        stop = self._stop_heartbeat
        try:
            self._send(("hello", {"version": wire.WIRE_VERSION,
                                  "pid": os.getpid()}))
            kind, body = self._codec.recv(self._sock)
            if kind != "welcome":
                return 1
            self.worker_id = body["worker_id"]
            if self.caches is not None:
                self.caches.ensure_epoch(body.get("epoch"))
            self._welcomed = True
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                args=(stop, self._sock, self._codec),
                name="worker-heartbeat", daemon=True)
            heartbeat.start()
            while True:
                if self._draining.is_set():
                    self._send(("goodbye", {}))
                    return 0
                self._send(("request", {}))
                kind, body = self._codec.recv(self._sock)
                if kind == "shutdown":
                    return 0
                if kind == "idle":
                    self._draining.wait(0.05)
                    continue
                if kind != "task":
                    return 1
                task_id = body["task_id"]
                if self.caches is not None:
                    self.caches.ensure_epoch(body.get("epoch"))
                self._inject_on_task(task_id)
                try:
                    result = execute_task(body["kind"], body["payload"],
                                          self.caches)
                except Exception as exc:
                    self._send(("failed", {"task_id": task_id,
                                           "error": f"{type(exc).__name__}: "
                                                    f"{exc}"}))
                    continue
                if self.fault == "drop-mid-frame":
                    self._send_truncated_result(task_id, result)
                try:
                    self._send(("result", {"task_id": task_id,
                                           "payload": result}))
                except wire.FrameTooLarge as exc:
                    # Local encode failure: the socket is untouched and
                    # this worker is healthy — report the task failed
                    # instead of dying over a payload no worker could
                    # frame either.
                    self._send(("failed", {
                        "task_id": task_id,
                        "error": f"result cannot be framed: {exc}"}))
                    continue
                self.tasks_done += 1
        finally:
            stop.set()
            try:
                self._sock.close()
            except OSError:
                pass


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.worker",
        description="Kizzle cluster worker: connect to a coordinator and "
                    "execute leased map tasks")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to register with")
    parser.add_argument("--heartbeat-interval", type=float, default=2.0,
                        help="seconds between heartbeat frames (keep well "
                             "under the coordinator's heartbeat timeout)")
    parser.add_argument("--cluster-secret", default=None,
                        help="shared wire secret (defaults to the "
                             f"{SECRET_ENV} environment variable; must "
                             "match the coordinator's)")
    parser.add_argument("--reconnect-attempts", type=int, default=6,
                        help="reconnect budget after a lost connection "
                             "(0 disables reconnecting)")
    parser.add_argument("--fault", choices=FAULTS, default=None,
                        help="arm one fault-injection behaviour "
                             "(test harness only)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    secret = args.cluster_secret if args.cluster_secret is not None \
        else os.environ.get(SECRET_ENV)
    worker = Worker(parse_address(args.connect),
                    heartbeat_interval=args.heartbeat_interval,
                    fault=args.fault,
                    secret=secret,
                    reconnect=ReconnectPolicy(
                        max_attempts=args.reconnect_attempts))
    return worker.run()


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
