"""Standalone cluster worker: ``python -m repro.exec.worker --connect ...``.

One worker process serves one coordinator connection.  The loop is a pull
model: the worker requests a task, executes it, sends the result, repeats;
a side thread heartbeats over the same socket (sends are serialized by a
lock) so liveness is visible even while a long task computes.  The worker
exits when the coordinator says ``shutdown`` or the connection drops —
a worker never outlives its coordinator on the happy path.

Task kinds mirror the coordinator's leases:

* ``partition_map`` — a :class:`~repro.clustering.partition.PartitionMapTask`;
  execution is exactly ``task.run()``, the same code path the inline and
  process-pool substrates use, which is what makes cluster execution
  byte-identical by construction.
* ``pair_chunks`` — a :class:`~repro.exec.cluster.PairChunkLease` of
  distance-pair chunks, decided through the shared
  :func:`~repro.exec.process.decide_chunk`.

A task that raises is reported back as ``failed`` (the coordinator
re-dispatches it elsewhere); the worker itself stays up.

Fault injection (test harness)
------------------------------
``--fault`` arms one deliberately broken behaviour so the fault-injection
suite can exercise the coordinator's failure handling deterministically:

* ``sigkill-mid-task`` — SIGKILL this very process the moment the first
  task arrives (a machine lost mid-map: no goodbye, no flush);
* ``drop-mid-frame`` — compute the first result, send only half of its
  frame, then sever the connection (a torn write: the coordinator must
  treat the truncated frame as a dead worker, never unpickle it);
* ``stall-heartbeat`` — accept the first task, then stop heartbeating and
  never answer (a wedged process: only the heartbeat/deadline sweep can
  reclaim the lease).

These flags exist for the test suite; production deployments simply never
pass ``--fault``.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
from typing import Any, Optional, Tuple

from repro.exec import wire
from repro.exec.cluster import PairChunkLease, parse_address, run_pair_lease

FAULTS = ("sigkill-mid-task", "drop-mid-frame", "stall-heartbeat")


def execute_task(kind: str, payload: Any) -> Any:
    """Run one leased task; shared by the worker loop and its tests."""
    if kind == "partition_map":
        return payload.run()
    if kind == "pair_chunks":
        if not isinstance(payload, PairChunkLease):
            raise TypeError(f"pair_chunks payload must be a PairChunkLease, "
                            f"got {type(payload).__name__}")
        return run_pair_lease(payload)
    raise ValueError(f"unknown task kind {kind!r}")


class Worker:
    """One coordinator connection's worth of worker state."""

    def __init__(self, address: Tuple[str, int], *,
                 heartbeat_interval: float = 2.0,
                 fault: Optional[str] = None) -> None:
        if fault is not None and fault not in FAULTS:
            raise ValueError(f"unknown fault {fault!r}")
        self.address = address
        self.heartbeat_interval = heartbeat_interval
        self.fault = fault
        self.worker_id: Optional[str] = None
        self.tasks_done = 0
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop_heartbeat = threading.Event()

    # -- plumbing -------------------------------------------------------
    def _send(self, payload: Any) -> None:
        with self._send_lock:
            wire.send_frame(self._sock, payload)

    def _heartbeat_loop(self) -> None:
        while not self._stop_heartbeat.wait(self.heartbeat_interval):
            try:
                self._send(("heartbeat", {}))
            except (OSError, wire.WireError):
                return

    # -- faults ---------------------------------------------------------
    def _inject_on_task(self, task_id: int) -> None:
        """Fire the armed fault now that a task is leased to us."""
        if self.fault == "sigkill-mid-task":
            os.kill(os.getpid(), signal.SIGKILL)
        if self.fault == "stall-heartbeat":
            self._stop_heartbeat.set()
            # Wedged: hold the lease, answer nothing.  The coordinator's
            # heartbeat sweep must reclaim it; the test harness reaps this
            # process afterwards.
            time.sleep(3600.0)
            sys.exit(1)

    def _send_truncated_result(self, task_id: int, result: Any) -> None:
        frame = wire.encode_frame(("result", {"task_id": task_id,
                                              "payload": result}))
        with self._send_lock:
            self._sock.sendall(frame[:max(1, len(frame) // 2)])
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
        sys.exit(1)

    # -- the loop -------------------------------------------------------
    def run(self) -> int:
        """Serve the coordinator until shutdown; returns an exit code."""
        self._sock = socket.create_connection(self.address, timeout=30.0)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Individual reads block at most this long; the coordinator's idle
        # replies keep the stream active, so a long silence means it died.
        self._sock.settimeout(300.0)
        try:
            self._send(("hello", {"version": wire.WIRE_VERSION,
                                  "pid": os.getpid()}))
            kind, body = wire.recv_frame(self._sock)
            if kind != "welcome":
                return 1
            self.worker_id = body["worker_id"]
            heartbeat = threading.Thread(target=self._heartbeat_loop,
                                         name="worker-heartbeat",
                                         daemon=True)
            heartbeat.start()
            while True:
                self._send(("request", {}))
                kind, body = wire.recv_frame(self._sock)
                if kind == "shutdown":
                    return 0
                if kind == "idle":
                    time.sleep(0.05)
                    continue
                if kind != "task":
                    return 1
                task_id = body["task_id"]
                self._inject_on_task(task_id)
                try:
                    result = execute_task(body["kind"], body["payload"])
                except Exception as exc:
                    self._send(("failed", {"task_id": task_id,
                                           "error": f"{type(exc).__name__}: "
                                                    f"{exc}"}))
                    continue
                if self.fault == "drop-mid-frame":
                    self._send_truncated_result(task_id, result)
                try:
                    self._send(("result", {"task_id": task_id,
                                           "payload": result}))
                except wire.FrameTooLarge as exc:
                    # Local encode failure: the socket is untouched and
                    # this worker is healthy — report the task failed
                    # instead of dying over a payload no worker could
                    # frame either.
                    self._send(("failed", {
                        "task_id": task_id,
                        "error": f"result cannot be framed: {exc}"}))
                    continue
                self.tasks_done += 1
        except (OSError, wire.WireError):
            # Coordinator gone (or tore us down): exit quietly.
            return 0
        finally:
            self._stop_heartbeat.set()
            try:
                self._sock.close()
            except OSError:
                pass


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.worker",
        description="Kizzle cluster worker: connect to a coordinator and "
                    "execute leased map tasks")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to register with")
    parser.add_argument("--heartbeat-interval", type=float, default=2.0,
                        help="seconds between heartbeat frames (keep well "
                             "under the coordinator's heartbeat timeout)")
    parser.add_argument("--fault", choices=FAULTS, default=None,
                        help="arm one fault-injection behaviour "
                             "(test harness only)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    worker = Worker(parse_address(args.connect),
                    heartbeat_interval=args.heartbeat_interval,
                    fault=args.fault)
    return worker.run()


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
