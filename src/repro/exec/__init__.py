"""Pluggable execution backends for the stage-graph pipeline.

One interface (:class:`~repro.exec.backend.ExecutionBackend`), four
substrates: inline serial execution, real process-pool fan-out, the
discrete-event cluster simulator, and a true multi-machine cluster over
TCP sockets.  Backends change where work runs and what the timing reports
look like — never the pipeline's results.

Only the interface module loads eagerly; the backend implementations (and
their multiprocessing/simulator dependencies) resolve lazily on first
attribute access, so the configuration layer can import
:class:`~repro.exec.backend.BackendConfig` without paying for them.
"""

from repro.exec.backend import BACKEND_KINDS, BackendConfig, \
    ExecutionBackend, create_backend

__all__ = [
    "BACKEND_KINDS",
    "BackendConfig",
    "ExecutionBackend",
    "create_backend",
    "SerialBackend",
    "ProcessBackend",
    "DistsimBackend",
    "ClusterBackend",
    "ClusterCoordinator",
    "ClusterError",
    "spawn_local_worker",
    "ProcessPairExecutor",
    "SerialPairExecutor",
    "PartitionPoolExecutor",
]

#: Lazily-resolved names -> defining submodule (PEP 562).
_LAZY = {
    "SerialBackend": "repro.exec.serial",
    "ProcessBackend": "repro.exec.process",
    "ProcessPairExecutor": "repro.exec.process",
    "SerialPairExecutor": "repro.exec.process",
    "DistsimBackend": "repro.exec.distsim",
    "PartitionPoolExecutor": "repro.exec.partition",
    "ClusterBackend": "repro.exec.cluster",
    "ClusterCoordinator": "repro.exec.cluster",
    "ClusterError": "repro.exec.cluster",
    "spawn_local_worker": "repro.exec.cluster",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
