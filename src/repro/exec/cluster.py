"""True multi-machine execution: a TCP coordinator and its backend.

The paper ran the daily clustering as map tasks on a real machine cluster;
this module closes that gap.  A :class:`ClusterCoordinator` listens on a
TCP socket, registers :mod:`repro.exec.worker` processes as they connect
(from this host or any other), leases them work — whole
:class:`~repro.clustering.partition.PartitionMapTask` objects for the
partition-level map, :class:`PairChunkLease` bundles for the distance-pair
fan-out — and collects the results.  :class:`ClusterBackend` wraps the
coordinator behind the ordinary
:class:`~repro.exec.backend.ExecutionBackend` interface, so the pipeline
drives a real cluster through exactly the seam the process backend uses.

Trust model
-----------
Every frame on the wire is HMAC-authenticated under a shared secret
(``--cluster-secret`` / ``REPRO_CLUSTER_SECRET``) and carries a
per-connection monotonic sequence number; payloads decode through an
allow-listed, pickle-free codec (:mod:`repro.exec.wire`).  All three
checks run at one boundary *before* any payload is interpreted, so a
hostile peer — or a compromised worker — can tamper, replay, or ship a
code-executing pickle and get nothing but a typed rejection
(:class:`~repro.exec.wire.AuthError` /
:class:`~repro.exec.wire.ReplayError` /
:class:`~repro.exec.wire.ForbiddenPayload`), a dropped connection, and
its lease re-dispatched to a surviving worker.  The coordinator counts
each rejection kind in :attr:`ClusterCoordinator.reject_counts`.

Failure and membership model
----------------------------
Workers lease one task at a time (pull model) and are monitored two ways:
a *heartbeat* timeout (any frame from the worker counts as liveness; the
worker also sends explicit heartbeats while computing) and a *per-task
deadline* on every lease.  A worker that misses either — or whose socket
drops, cleanly or mid-frame — is declared dead: its connection is torn
down and its leased task goes back to the front of the queue with the dead
worker recorded in the task's *exclusion list* and its attempt counter
bumped.  A task that exhausts ``max_task_retries`` re-dispatches fails the
whole submission (:class:`ClusterError`) rather than silently degrading.

The fleet is *elastic*: workers may register at any time — including in
the middle of a map, where a late joiner immediately folds into the lease
pool — and leave gracefully: a SIGTERM'd worker finishes its current
lease, returns the result, sends ``goodbye`` and exits, never tripping
the re-dispatch path.  ``min_workers`` gates only the *initial* fleet
assembly; a fleet that later shrinks below it keeps running, loudly
(``repro.exec.cluster`` logger) but correctly.

Warmth
------
The coordinator remembers which worker last served each partition
(:attr:`ClusterCoordinator._affinity`) and, when that worker asks for
work again, prefers re-leasing it the same partition — and ships the
task *slim*, with token strings stripped, because the worker's persistent
:class:`~repro.core.prepared.PreparedCache` (keyed by the coordinator's
``cache_epoch``) already holds yesterday's tokenizations.  Affinity is a
hint, never a constraint: any worker can take any task, re-dispatch
ignores affinity entirely, and a stripped task re-derives its tokens
deterministically, so results are byte-identical with affinity on, off,
or mid-churn.  :attr:`task_bytes_sent` / :attr:`tokens_stripped_chars`
quantify the shipping saved.

Determinism: task identity — not worker identity — carries the RNG seed
(``PartitionMapTask.run`` seeds from ``(seed, partition_index)``, pair
chunks from ``(seed, chunk_index)``), and results are merged in task order
regardless of completion order, so any worker count, placement, churn, or
mid-map re-dispatch is byte-identical to inline execution.  Effects are
at-most-once *observable*: a re-dispatched task may execute twice, but the
coordinator accepts only the result of the live lease and drops late
duplicates — and task execution is pure, so even the dropped duplicate had
no side effects.
"""

from __future__ import annotations

import logging
import os
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exec import wire
from repro.exec.backend import BackendConfig, InlineBackend
from repro.exec.process import PairDecision, SerialPairExecutor, decide_chunk

logger = logging.getLogger("repro.exec.cluster")

#: Default coordinator bind address: loopback, OS-assigned port.
DEFAULT_LISTEN = "127.0.0.1:0"

#: Environment variable carrying the shared wire secret (the CLI's
#: ``--cluster-secret`` overrides it; worker subprocesses inherit it).
SECRET_ENV = "REPRO_CLUSTER_SECRET"


class ClusterError(RuntimeError):
    """The cluster could not complete a submission (no workers arrived,
    a task exhausted its retry budget, or the overall deadline passed)."""


def parse_address(text: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (IPv4/hostname form)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected host:port, got {text!r}")
    return host, int(port)


@dataclass
class PairChunkLease:
    """One lease of the distance-pair workload: a contiguous run of indexed
    chunks plus everything a remote worker needs to decide them.

    The chunk indices preserve the parent batch's numbering, so the
    per-chunk RNG seeding (``chunk_seed(seed, chunk_index)``) is identical
    to inline execution no matter how chunks are grouped into leases or
    which worker runs them.
    """

    points: List[Tuple[str, ...]]
    chunks: List[Tuple[int, List[Tuple[int, int]]]]
    epsilon: float
    config: Any  # DistanceEngineConfig (kept loose to avoid a cycle)
    seed: int


def run_pair_lease(lease: PairChunkLease, cache: Any = None
                   ) -> List[Tuple[int, List[PairDecision], Dict[str, int]]]:
    """Execute one pair lease (worker side).

    Profiles are shared across the lease's chunks — a pure cache, so
    grouping has no observable effect — and each chunk re-seeds its RNG
    from its own index exactly as the serial and process executors do.
    ``cache`` optionally supplies the worker's persistent exact-distance
    cache (:class:`~repro.distance.engine.PairDistanceCache`): hits skip
    the kernel, and because the cache is exact and content-addressed the
    decisions are byte-identical with or without it.
    """
    profiles: Dict[int, Any] = {}
    out = []
    for index, chunk in lease.chunks:
        decisions, stats = decide_chunk(lease.points, profiles,
                                        (index, chunk), lease.epsilon,
                                        lease.config, lease.seed,
                                        cache=cache)
        out.append((index, decisions, stats))
    return out


def affinity_key(kind: str, payload: Any) -> Optional[Tuple[str, int]]:
    """The warmth key a task leases under: partition index for map tasks,
    leading chunk index for pair leases (``None`` when a payload carries
    no stable identity).  Keys repeat day over day — partition counts are
    pinned by configuration — which is exactly what makes yesterday's
    server a good place to lease today's same-numbered partition."""
    if kind == "partition_map":
        index = getattr(payload, "index", None)
        if index is not None:
            return ("pm", index)
    elif kind == "pair_chunks":
        chunks = getattr(payload, "chunks", None)
        if chunks:
            return ("pc", chunks[0][0])
    return None


def strip_tokens(task: Any) -> Tuple[Any, int]:
    """A copy of a ``PartitionMapTask`` with sample token strings removed.

    Returns ``(slim_task, stripped_chars)``; the original task when there
    is nothing to strip.  Tokens are a pure function of content
    (re-derived by the worker's prepared cache, or the lexer on a miss),
    so a stripped task runs byte-identical to a full one.
    """
    samples = getattr(task, "samples", None)
    if not samples or not any(sample.tokens for sample in samples):
        return task, 0
    stripped_chars = 0
    slim_samples = []
    for sample in samples:
        if sample.tokens:
            stripped_chars += sum(len(token) + 1 for token in sample.tokens)
            slim_samples.append(replace(sample, tokens=()))
        else:
            slim_samples.append(sample)
    return replace(task, samples=slim_samples), stripped_chars


# ----------------------------------------------------------------------
# coordinator internals
# ----------------------------------------------------------------------
@dataclass
class _TaskState:
    """One unit of leased work and its lifecycle bookkeeping."""

    task_id: int
    kind: str
    payload: Any
    affinity: Optional[Tuple[str, int]] = None
    attempts: int = 0
    excluded: set = field(default_factory=set)
    lease_worker: Optional[str] = None
    lease_deadline: float = 0.0
    done: bool = False
    failed: Optional[str] = None
    result: Any = None
    worker_id: Optional[str] = None  # who produced the accepted result


class _WorkerConn:
    """Coordinator-side state of one connected worker."""

    def __init__(self, worker_id: str, conn: socket.socket,
                 address: Tuple[str, int], pid: Optional[int],
                 codec: wire.FrameCodec) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.address = address
        self.pid = pid
        self.codec = codec
        self.last_seen = time.monotonic()
        self.batch_tasks = 0   # tasks leased in the current submission
        self.tasks_done = 0
        self.send_lock = threading.Lock()
        self.alive = True

    def send(self, payload: Any) -> int:
        """Frame-and-send under the send lock; returns bytes written."""
        with self.send_lock:
            return self.codec.send(self.conn, payload)

    def kill_connection(self) -> None:
        """Tear the socket down; unblocks the handler thread's recv."""
        try:
            self.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass


class ClusterCoordinator:
    """TCP coordinator: registers workers, leases tasks, collects results.

    Parameters
    ----------
    host, port:
        Bind address; port 0 asks the OS for a free port (read the real
        one from :attr:`address` after :meth:`start`).
    task_deadline_s:
        Per-lease execution deadline.  A worker holding a lease past this
        is presumed stuck and declared dead.
    heartbeat_timeout_s:
        Maximum silence (no frame of any kind) before a worker is declared
        dead.  Workers heartbeat from a side thread while computing, so a
        long task does not trip this.
    max_task_retries:
        Re-dispatch budget per task; exhausting it fails the submission.
    min_workers:
        Workers the *initial* fleet must reach before the first lease is
        handed out.  Once that many have registered at least once, later
        submissions only require a single live worker — a fleet shrunk by
        failures or graceful departures keeps making progress, with a
        loud degradation warning on the module logger.
    worker_wait_s:
        How long :meth:`submit` waits for ``min_workers`` to arrive.
    secret:
        Shared wire secret: every frame either way is HMAC'd under it and
        a peer that cannot produce valid tags never registers, let alone
        leases work.  ``None`` falls back to the public default key
        (integrity checking only — single-host development mode).
    affinity:
        Prefer re-leasing a partition to the worker that served it last,
        and ship such leases with token strings stripped (the worker's
        epoch-keyed caches re-derive them).  A pure optimization: off by
        flag, results are byte-identical either way.
    """

    #: Monitor thread poll interval (heartbeat/deadline sweep).
    MONITOR_INTERVAL = 0.1

    #: How long :meth:`close` waits on each service thread before
    #: declaring it leaked (loud warning, but shutdown proceeds).
    CLOSE_JOIN_TIMEOUT = 2.0

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 task_deadline_s: float = 60.0,
                 heartbeat_timeout_s: float = 10.0,
                 max_task_retries: int = 3,
                 min_workers: int = 1,
                 worker_wait_s: float = 30.0,
                 secret: Optional[str] = None,
                 affinity: bool = True) -> None:
        if task_deadline_s <= 0 or heartbeat_timeout_s <= 0:
            raise ValueError("deadlines must be positive")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be non-negative")
        if min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        self.task_deadline_s = task_deadline_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_task_retries = max_task_retries
        self.min_workers = min_workers
        self.worker_wait_s = worker_wait_s
        self.secret = secret
        self.affinity = affinity

        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(64)
        #: Resolved ``(host, port)`` the coordinator is reachable on.
        self.address: Tuple[str, int] = self._server.getsockname()[:2]

        self._state = threading.Condition()
        self._workers: Dict[str, _WorkerConn] = {}
        self._pending: "deque[_TaskState]" = deque()
        self._leased: Dict[int, _TaskState] = {}
        self._next_worker = 0
        self._next_task = 0
        self._closed = False
        self._submit_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        #: warmth key -> worker that last completed a task under it.
        self._affinity: Dict[Tuple[str, int], str] = {}

        #: Epoch the worker-side persistent caches are keyed by; issued in
        #: the welcome and in every lease.  Constant for this coordinator's
        #: lifetime unless :meth:`bump_cache_epoch` invalidates the fleet's
        #: caches (e.g. after a configuration change).
        self.cache_epoch = 1

        #: Tasks whose lease was torn down and re-queued (the fault
        #: tests and the nightly benchmark assert on this).
        self.redispatch_count = 0
        #: Results accepted from remote workers.
        self.remote_results = 0
        #: worker_id -> accepted result count.
        self.tasks_by_worker: Dict[str, int] = {}
        #: Workers that ever completed registration.
        self.workers_seen = 0
        #: Workers that said ``goodbye`` (graceful SIGTERM drains).
        self.graceful_departures = 0
        #: Typed wire rejections, counted before any payload decode.
        self.reject_counts: Dict[str, int] = {
            "auth": 0, "replay": 0, "forbidden": 0}
        #: Total encoded bytes of ``task`` frames sent to workers.
        self.task_bytes_sent = 0
        #: Token characters not shipped thanks to warm-affinity leases.
        self.tokens_stripped_chars = 0
        #: Leases shipped slim (token-stripped) vs full.
        self.slim_leases = 0
        self.full_leases = 0

        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Launch the accept and monitor threads; returns the address."""
        if self._started:
            return self.address
        self._started = True
        for target, name in ((self._accept_loop, "cluster-accept"),
                             (self._monitor_loop, "cluster-monitor")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def close(self) -> None:
        """Drain and shut down: tell workers to exit, drop connections,
        stop the service threads.  Idempotent.  Threads that fail to join
        within :attr:`CLOSE_JOIN_TIMEOUT` are reported loudly (and in the
        backend tests, assertively) rather than silently abandoned."""
        with self._state:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._state.notify_all()
        for worker in workers:
            try:
                worker.send(("shutdown", {}))
            except (OSError, wire.WireError):
                pass
            worker.kill_connection()
        # Wake the accept loop (closing the listener alone does not
        # reliably unblock accept() on every platform).
        try:
            poke = socket.create_connection(self.address, timeout=0.5)
            poke.close()
        except OSError:
            pass
        try:
            self._server.close()
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=self.CLOSE_JOIN_TIMEOUT)
        leaked = self.leaked_threads()
        if leaked:
            logger.warning(
                "coordinator close() leaked %d thread(s) still alive after "
                "the %.1fs join window: %s — shutdown proceeds, but this "
                "indicates a stuck connection handler or monitor",
                len(leaked), self.CLOSE_JOIN_TIMEOUT,
                [thread.name for thread in leaked])

    def leaked_threads(self) -> List[threading.Thread]:
        """Service/handler threads still alive (expected empty once
        :meth:`close` returns; the backend tests assert exactly that)."""
        return [thread for thread in self._threads if thread.is_alive()]

    def bump_cache_epoch(self) -> int:
        """Invalidate every worker's persistent caches: the new epoch
        rides the next lease each worker receives, and a worker that sees
        an unfamiliar epoch wipes before executing."""
        with self._state:
            self.cache_epoch += 1
            self._affinity.clear()
            return self.cache_epoch

    @property
    def worker_count(self) -> int:
        with self._state:
            return len(self._workers)

    def wait_for_workers(self, count: int,
                         timeout: Optional[float] = None) -> None:
        """Block until ``count`` workers are registered."""
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.worker_wait_s)
        with self._state:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ClusterError(
                        f"only {len(self._workers)} of {count} workers "
                        f"connected within the wait window")
                self._state.wait(timeout=min(remaining, 0.2))

    # -- submission -----------------------------------------------------
    def submit(self, kind: str, payloads: Sequence[Any],
               timeout: Optional[float] = None
               ) -> List[Tuple[Any, Optional[str]]]:
        """Lease every payload to the worker pool; block for all results.

        Returns ``[(result, worker_id), ...]`` in payload order.  One
        submission runs at a time (the pipeline's stages are sequential);
        raises :class:`ClusterError` on retry exhaustion, worker drought,
        or overall timeout — never hangs.  The default timeout scales with
        the batch: even one surviving worker grinding through every task
        serially, each near its per-lease deadline, stays within it.

        Membership is sampled continuously, not at entry: a worker that
        registers while the batch is in flight starts pulling leases on
        its next request (mid-map joins contribute immediately).
        """
        if timeout is None:
            timeout = self.worker_wait_s + 30.0 + self.task_deadline_s * (
                len(payloads) + self.max_task_retries + 1)
        with self._submit_lock:
            # Assemble the full fleet once; after that, one survivor is
            # enough (shrinkage is the failure model, not a config error).
            if self.workers_seen < self.min_workers:
                self.wait_for_workers(self.min_workers)
            else:
                self.wait_for_workers(1)
            deadline = time.monotonic() + timeout
            with self._state:
                states = []
                for payload in payloads:
                    state = _TaskState(task_id=self._next_task, kind=kind,
                                       payload=payload,
                                       affinity=affinity_key(kind, payload))
                    self._next_task += 1
                    states.append(state)
                    self._pending.append(state)
                # New batch: reset the first-lease fairness counters.
                for worker in self._workers.values():
                    worker.batch_tasks = 0
                self._state.notify_all()
                while True:
                    failed = next((s for s in states if s.failed), None)
                    if failed is not None:
                        self._abort_batch(states)
                        raise ClusterError(
                            f"task {failed.task_id} ({kind}) failed after "
                            f"{failed.attempts} attempt(s): {failed.failed}")
                    if all(s.done for s in states):
                        break
                    if time.monotonic() > deadline:
                        self._abort_batch(states)
                        raise ClusterError(
                            f"submission of {len(states)} {kind} task(s) "
                            f"did not complete within {timeout:.1f}s "
                            f"({sum(s.done for s in states)} done, "
                            f"{len(self._workers)} worker(s) connected)")
                    self._state.wait(timeout=0.2)
                return [(s.result, s.worker_id) for s in states]

    def _abort_batch(self, states: List[_TaskState]) -> None:
        """Withdraw a failed batch's tasks (caller holds the lock)."""
        batch = {s.task_id for s in states}
        self._pending = deque(s for s in self._pending
                              if s.task_id not in batch)
        for task_id in [t for t in self._leased if t in batch]:
            del self._leased[task_id]

    # -- accept/handler/monitor threads ---------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, address = self._server.accept()
            except OSError:
                return
            with self._state:
                if self._closed:
                    conn.close()
                    return
            thread = threading.Thread(
                target=self._serve_worker, args=(conn, address),
                name="cluster-conn", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve_worker(self, conn: socket.socket,
                      address: Tuple[str, int]) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        codec = wire.FrameCodec(self.secret)
        worker: Optional[_WorkerConn] = None
        try:
            hello = codec.recv(conn)
            if not (isinstance(hello, tuple) and len(hello) == 2
                    and hello[0] == "hello" and isinstance(hello[1], dict)):
                conn.close()
                return
            info = hello[1]
            with self._state:
                if self._closed:
                    # Raced with close(): the shutdown snapshot no longer
                    # covers us, so registering now would leak this
                    # handler, socket and worker process past close().
                    conn.close()
                    return
                self._next_worker += 1
                worker = _WorkerConn(f"w{self._next_worker}", conn, address,
                                     info.get("pid"), codec)
                self._workers[worker.worker_id] = worker
                self.workers_seen += 1
                self._state.notify_all()
            logger.info("worker %s registered from %s (pid %s); fleet=%d",
                        worker.worker_id, address, info.get("pid"),
                        self.worker_count)
            worker.send(("welcome", {
                "worker_id": worker.worker_id,
                "heartbeat_timeout_s": self.heartbeat_timeout_s,
                "epoch": self.cache_epoch}))
            while True:
                message = codec.recv(conn)
                if not (isinstance(message, tuple) and len(message) == 2
                        and isinstance(message[1], dict)):
                    break  # protocol drift: drop the peer
                kind, body = message
                with self._state:
                    worker.last_seen = time.monotonic()
                if kind == "heartbeat":
                    continue
                if kind == "request":
                    self._handle_request(worker)
                elif kind == "result":
                    self._handle_result(worker, body)
                elif kind == "failed":
                    self._handle_failed(worker, body)
                elif kind == "goodbye":
                    self._handle_goodbye(worker)
                    return
                else:  # unknown frame kind: protocol drift, drop the peer
                    break
        except wire.AuthError as exc:
            self._record_reject("auth", worker, address, exc)
        except wire.ReplayError as exc:
            self._record_reject("replay", worker, address, exc)
        except wire.ForbiddenPayload as exc:
            self._record_reject("forbidden", worker, address, exc)
        except (wire.WireError, OSError):
            pass
        finally:
            if worker is not None:
                self._mark_dead(worker)
            else:
                try:
                    conn.close()
                except OSError:
                    pass

    def _record_reject(self, category: str, worker: Optional[_WorkerConn],
                       address: Tuple[str, int], exc: Exception) -> None:
        """Count and loudly log a typed wire rejection.  The frame never
        reached payload decode; the connection is torn down by the
        caller's ``finally`` (re-queueing any lease the peer held)."""
        with self._state:
            self.reject_counts[category] += 1
        who = worker.worker_id if worker is not None else "unregistered peer"
        logger.warning("rejected frame from %s at %s before decode "
                       "(%s): %s", who, address, category, exc)

    def _handle_request(self, worker: _WorkerConn) -> None:
        with self._state:
            task = self._next_task_for(worker)
            if task is not None:
                task.lease_worker = worker.worker_id
                task.lease_deadline = time.monotonic() + self.task_deadline_s
                task.attempts += 1
                self._leased[task.task_id] = task
                worker.batch_tasks += 1
                payload, stripped_chars = self._lease_payload(task, worker)
        if task is None:
            worker.send(("idle", {}))
            return
        try:
            # An OSError here means the connection is dead; the handler's
            # recv side hits the same error and _mark_dead re-queues the
            # lease.
            sent = worker.send(("task", {"task_id": task.task_id,
                                         "kind": task.kind,
                                         "payload": payload,
                                         "epoch": self.cache_epoch,
                                         "deadline_s": self.task_deadline_s}))
            with self._state:
                self.task_bytes_sent += sent
                if stripped_chars:
                    self.tokens_stripped_chars += stripped_chars
                    self.slim_leases += 1
                else:
                    self.full_leases += 1
        except wire.FrameTooLarge as exc:
            # Local encode failure: no byte hit the socket, the worker is
            # perfectly healthy, and every other worker would fail the
            # same way — fail the *task*, not the connection (otherwise
            # one oversized payload would serially kill healthy workers
            # and surface as a misleading "worker died").
            with self._state:
                if self._leased.pop(task.task_id, None) is not None:
                    task.lease_worker = None
                    task.failed = f"task payload cannot be framed: {exc}"
                    self._state.notify_all()
            worker.send(("idle", {}))

    def _lease_payload(self, task: _TaskState,
                       worker: _WorkerConn) -> Tuple[Any, int]:
        """The payload to ship for a lease (lock held): slim — token
        strings stripped — when this worker served the same partition
        before in this epoch, full otherwise.  A slim ship is safe because
        the worker's prepared cache (or, on a miss, the lexer) re-derives
        the identical tokens from content."""
        if (self.affinity and task.kind == "partition_map"
                and task.affinity is not None
                and self._affinity.get(task.affinity) == worker.worker_id):
            return strip_tokens(task.payload)
        return task.payload, 0

    def _next_task_for(self, worker: _WorkerConn) -> Optional[_TaskState]:
        """Pop the first pending task this worker should run (lock held).

        First-lease fairness: while some *connected* workers have not
        received any task of the current batch, the last ``k`` pending
        tasks are reserved for those ``k`` workers.  Work still flows —
        a fast worker is only deferred when pending tasks are scarcer
        than unserved workers — but every live worker is guaranteed a
        first lease, which both spreads the map and makes the
        fault-injection tests deterministic (the faulty worker *will*
        hold a task when it dies).

        Within the eligible tasks, warmth affinity orders the choice:
        first a task this worker served last time (its caches are hot and
        the lease ships slim), then a task with no live owner, then —
        rather than ever idling a willing worker — any task at all.  A
        pure preference: it changes which worker computes what, never
        what is computed (results merge in task order)."""
        if not self._pending:
            return None
        unserved = sum(
            1 for other in self._workers.values()
            if other.batch_tasks == 0 and other.worker_id != worker.worker_id)
        if worker.batch_tasks > 0 and len(self._pending) <= unserved:
            return None
        own: Optional[int] = None
        unowned: Optional[int] = None
        fallback: Optional[int] = None
        for index, task in enumerate(self._pending):
            if worker.worker_id in task.excluded:
                continue
            if fallback is None:
                fallback = index
            if not self.affinity:
                break  # affinity off: first eligible wins, as before
            owner = (self._affinity.get(task.affinity)
                     if task.affinity is not None else None)
            if owner == worker.worker_id:
                own = index
                break
            if unowned is None and (owner is None
                                    or owner not in self._workers):
                unowned = index
        choice = own if own is not None else (
            unowned if unowned is not None else fallback)
        if choice is None:
            return None
        task = self._pending[choice]
        del self._pending[choice]
        return task

    def _handle_result(self, worker: _WorkerConn, body: Dict) -> None:
        task_id = body.get("task_id")
        with self._state:
            task = self._leased.get(task_id)
            if task is None or task.lease_worker != worker.worker_id \
                    or task.done:
                # Late duplicate from a lease already torn down and
                # re-dispatched: at-most-once observable effects — drop it.
                return
            del self._leased[task_id]
            task.done = True
            task.result = body.get("payload")
            task.worker_id = worker.worker_id
            task.lease_worker = None
            worker.tasks_done += 1
            self.remote_results += 1
            self.tasks_by_worker[worker.worker_id] = \
                self.tasks_by_worker.get(worker.worker_id, 0) + 1
            if task.affinity is not None:
                self._affinity[task.affinity] = worker.worker_id
            self._state.notify_all()

    def _handle_failed(self, worker: _WorkerConn, body: Dict) -> None:
        """A worker reported a task error without dying: exclude it from
        this task and re-queue (same path as a dead worker's lease)."""
        task_id = body.get("task_id")
        with self._state:
            task = self._leased.get(task_id)
            if task is None or task.lease_worker != worker.worker_id:
                return
            del self._leased[task_id]
            self._requeue(task, worker.worker_id,
                          reason=body.get("error", "worker error"))
            self._state.notify_all()

    def _handle_goodbye(self, worker: _WorkerConn) -> None:
        """A graceful departure: the worker drained its lease (result
        already accepted) and is leaving.  No re-dispatch, no exclusion —
        just removal from the fleet and, if it dropped us below the
        initial assembly size, a loud degradation note."""
        with self._state:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.worker_id, None)
            self.graceful_departures += 1
            # A drained worker holds no lease; if one slipped through
            # (goodbye raced a lease grant), re-queue it like a death.
            for task_id in [t for t, s in self._leased.items()
                            if s.lease_worker == worker.worker_id]:
                task = self._leased.pop(task_id)
                self._requeue(task, worker.worker_id,
                              reason=f"worker {worker.worker_id} left "
                                     f"mid-lease")
            self._state.notify_all()
        logger.info("worker %s left gracefully; fleet=%d",
                    worker.worker_id, self.worker_count)
        worker.kill_connection()
        self._warn_if_degraded()

    def _requeue(self, task: _TaskState, worker_id: str,
                 reason: str) -> None:
        """Return a torn-down lease to the queue front (lock held)."""
        task.lease_worker = None
        task.excluded.add(worker_id)
        self.redispatch_count += 1
        if task.attempts > self.max_task_retries:
            task.failed = reason
        else:
            self._pending.appendleft(task)

    def _mark_dead(self, worker: _WorkerConn) -> None:
        worker.kill_connection()
        with self._state:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.worker_id, None)
            reclaimed = 0
            for task_id in [t for t, s in self._leased.items()
                            if s.lease_worker == worker.worker_id]:
                task = self._leased.pop(task_id)
                self._requeue(task, worker.worker_id,
                              reason=f"worker {worker.worker_id} died or "
                                     f"timed out")
                reclaimed += 1
            self._state.notify_all()
        if not self._closed:
            logger.warning("worker %s died or timed out; %d lease(s) "
                           "re-queued; fleet=%d", worker.worker_id,
                           reclaimed, self.worker_count)
            self._warn_if_degraded()

    def _warn_if_degraded(self) -> None:
        """Loud note when the live fleet is below the assembly size.  The
        cluster keeps running — shrinkage is the failure model — but an
        operator should know the month is grinding on fewer machines."""
        live = self.worker_count
        if self.workers_seen >= self.min_workers and live < self.min_workers:
            logger.warning(
                "cluster degraded: %d live worker(s), below the initial "
                "assembly size min_workers=%d; continuing with re-dispatch "
                "onto the survivors", live, self.min_workers)

    def _monitor_loop(self) -> None:
        """Sweep heartbeats and lease deadlines; killing the connection of
        an expired worker unblocks its handler thread, which re-queues the
        lease through :meth:`_mark_dead`."""
        while True:
            with self._state:
                if self._closed:
                    return
                now = time.monotonic()
                expired = [
                    worker for worker in self._workers.values()
                    if now - worker.last_seen > self.heartbeat_timeout_s]
                overdue = [
                    self._workers[state.lease_worker]
                    for state in self._leased.values()
                    if state.lease_worker in self._workers
                    and now > state.lease_deadline]
            for worker in {w.worker_id: w
                           for w in expired + overdue}.values():
                worker.kill_connection()
            time.sleep(self.MONITOR_INTERVAL)


# ----------------------------------------------------------------------
# local worker spawning (tests, examples, and the CLI's convenience path)
# ----------------------------------------------------------------------
def spawn_local_worker(address: Tuple[str, int], *,
                       heartbeat_interval: float = 2.0,
                       fault: Optional[str] = None,
                       secret: Optional[str] = None,
                       python: Optional[str] = None,
                       capture_output: bool = False,
                       extra_args: Sequence[str] = ()) -> subprocess.Popen:
    """Launch ``python -m repro.exec.worker --connect host:port`` locally.

    The child inherits the environment with this package's ``src`` root
    prepended to ``PYTHONPATH`` (the worker must import the very same code
    the coordinator frames tasks from) and, when ``secret`` is given, the
    shared wire secret via ``REPRO_CLUSTER_SECRET`` (environment, not
    argv, so it never shows in a process listing).  ``fault`` forwards a
    fault-injection flag (test harness only; see :mod:`repro.exec.worker`).
    """
    import repro

    host, port = address
    # Locally spawned workers share the coordinator's fate, so a long
    # reconnect schedule only delays teardown; external workers keep the
    # CLI's larger default budget.
    command = [python or sys.executable, "-m", "repro.exec.worker",
               "--connect", f"{host}:{port}",
               "--heartbeat-interval", str(heartbeat_interval),
               "--reconnect-attempts", "2"]
    if fault:
        command += ["--fault", fault]
    command += list(extra_args)
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    if secret is not None:
        env[SECRET_ENV] = secret
    sink = subprocess.PIPE if capture_output else subprocess.DEVNULL
    return subprocess.Popen(command, env=env, stdout=sink, stderr=sink)


# ----------------------------------------------------------------------
# executors over the coordinator
# ----------------------------------------------------------------------
class ClusterPartitionExecutor:
    """Partition-level map executor running on the worker cluster.

    Drop-in for :class:`~repro.exec.partition.PartitionPoolExecutor`: the
    clustering driver ships whole ``PartitionMapTask`` objects and gets
    ``PartitionMapResult`` objects back in task order, each annotated with
    the worker that produced it (``result.worker_id``) so the distance
    engine can attribute remote stats per worker.
    """

    name = "cluster"

    def __init__(self, coordinator: ClusterCoordinator) -> None:
        self.coordinator = coordinator
        #: Batches submitted to the cluster (there is no inline fallback
        #: here — engagement gating lives in the clustering driver).
        self.pooled_batches = 0

    def pool_width(self) -> int:
        return max(1, self.coordinator.worker_count)

    def should_engage(self, task_count: int) -> bool:
        """Two or more partitions are worth distributing; worker arrival is
        awaited at dispatch (workers may still be connecting)."""
        return task_count >= 2

    def run(self, tasks: Sequence[Any]) -> Tuple[List[Any], float]:
        started = time.perf_counter()
        self.pooled_batches += 1
        outcomes = self.coordinator.submit("partition_map", list(tasks))
        results = []
        for result, worker_id in outcomes:
            result.worker_id = worker_id
            results.append(result)
        return results, time.perf_counter() - started


class ClusterPairExecutor:
    """Distance-pair batch executor over the worker cluster.

    Chunks are grouped into one contiguous lease per expected worker;
    indices ride along so the per-chunk RNG seeding — and therefore every
    decision — is identical to the serial and process executors.  Falls
    back to the in-process serial path when the batch is too small to
    ship or no worker is connected (byte-identical either way).
    """

    name = "cluster"

    def __init__(self, coordinator: ClusterCoordinator, seed: int = 0) -> None:
        self.coordinator = coordinator
        self.seed = seed

    def decide_chunks(self, points: List[Tuple[str, ...]],
                      chunks: Sequence[Sequence[Tuple[int, int]]],
                      epsilon: float, config: Any
                      ) -> Iterable[Tuple[List[PairDecision],
                                          Dict[str, int]]]:
        workers = self.coordinator.worker_count
        if len(chunks) < 2 or workers < 1:
            yield from SerialPairExecutor(self.seed).decide_chunks(
                points, chunks, epsilon, config)
            return
        worker_config = replace(config, shared_cache=False, cache_size=0,
                                workers=1)
        indexed = list(enumerate(list(chunk) for chunk in chunks))
        lease_count = min(workers, len(indexed))
        size, remainder = divmod(len(indexed), lease_count)
        leases, cursor = [], 0
        for index in range(lease_count):
            take = size + (1 if index < remainder else 0)
            leases.append(PairChunkLease(
                points=list(points), chunks=indexed[cursor:cursor + take],
                epsilon=epsilon, config=worker_config, seed=self.seed))
            cursor += take
        by_index: Dict[int, Tuple[List[PairDecision], Dict[str, int]]] = {}
        for outcome, _worker in self.coordinator.submit("pair_chunks",
                                                        leases):
            for chunk_index, decisions, stats in outcome:
                by_index[chunk_index] = (decisions, stats)
        for chunk_index in range(len(chunks)):
            yield by_index[chunk_index]


# ----------------------------------------------------------------------
# the backend
# ----------------------------------------------------------------------
class ClusterBackend(InlineBackend):
    """Real multi-machine execution behind the standard backend seam.

    The coordinator starts (and binds) at construction, so callers can
    read :attr:`address` and point external workers at it before the
    first day is processed; ``config.spawn_workers`` optionally launches
    that many localhost worker subprocesses for single-host use (the CI
    and example path).  The wire secret resolves from ``config.secret``
    or the ``REPRO_CLUSTER_SECRET`` environment variable and is handed to
    spawned workers through their environment.  Report times are measured
    wall clock, like every inline backend; :attr:`redispatch_count`,
    :attr:`reject_counts` and the per-worker task counts surface the
    failure-handling telemetry the fault tests and the nightly benchmark
    assert on.
    """

    name = "cluster"

    def __init__(self, config: BackendConfig) -> None:
        super().__init__(config)
        host, port = parse_address(config.listen or DEFAULT_LISTEN)
        min_workers = max(1, config.spawn_workers)
        secret = config.secret if config.secret is not None \
            else os.environ.get(SECRET_ENV)
        self.coordinator = ClusterCoordinator(
            host, port,
            task_deadline_s=config.task_deadline_s,
            heartbeat_timeout_s=config.heartbeat_timeout_s,
            max_task_retries=config.max_task_retries,
            min_workers=min_workers,
            secret=secret,
            affinity=config.affinity)
        self.coordinator.start()
        self._procs: List[subprocess.Popen] = [
            spawn_local_worker(
                self.coordinator.address,
                heartbeat_interval=config.heartbeat_timeout_s / 4.0,
                secret=secret)
            for _ in range(config.spawn_workers)]
        self._partition_executor = ClusterPartitionExecutor(self.coordinator)
        self._pair_executor = ClusterPairExecutor(self.coordinator,
                                                  seed=config.seed or 0)

    # -- substrate ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """Where workers should ``--connect``."""
        return self.coordinator.address

    @property
    def charge_units(self) -> int:
        return max(1, self.coordinator.worker_count)

    @property
    def redispatch_count(self) -> int:
        """Leases torn down (dead/timed-out worker) and re-queued."""
        return self.coordinator.redispatch_count

    @property
    def remote_task_count(self) -> int:
        """Results accepted from remote workers (engagement telemetry)."""
        return self.coordinator.remote_results

    @property
    def reject_counts(self) -> Dict[str, int]:
        """Typed wire rejections (auth/replay/forbidden), pre-decode."""
        return dict(self.coordinator.reject_counts)

    def pair_executor(self):
        return self._pair_executor

    def partition_executor(self):
        return self._partition_executor

    def engine_config(self, base):
        updates: Dict[str, Any] = {}
        if self.config.seed is not None and base.seed != self.config.seed:
            updates["seed"] = self.config.seed
        return replace(base, **updates) if updates else base

    def close(self) -> None:
        """Drain the cluster: shut the coordinator down (which tells
        connected workers to exit) and reap spawned local workers."""
        self.coordinator.close()
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        self._procs = []
