"""Authenticated, pickle-free, length-prefixed wire codec (version 2).

Everything the cluster backend sends over a socket — worker registration,
task leases, heartbeats, :class:`~repro.clustering.partition.PartitionMapTask`
payloads and their results — travels as one *frame*::

    +-------+---------+----------+----------------+---------+----------+
    | magic | version | sequence | payload length | payload | HMAC tag |
    | 4 B   | 2 B     | 8 B      | 4 B big-endian | n bytes | 32 B     |
    +-------+---------+----------+----------------+---------+----------+

Validation runs at **one boundary**, in a strict order, and every failure
raises a typed :class:`WireError` subclass *before* any payload byte is
interpreted:

1. **header** — magic, version, declared length bound (:class:`BadMagic`,
   :class:`VersionMismatch`, :class:`FrameTooLarge`), checked before the
   payload is even read off the socket;
2. **authenticity** — the trailing tag is HMAC-SHA256 over the header and
   payload bytes, verified with a constant-time compare
   (:class:`AuthError`); a peer without the shared secret cannot produce a
   frame that passes, so nothing it sends is ever decoded;
3. **freshness** — the header's sequence number must be strictly greater
   than the last one accepted on this connection (:class:`ReplayError`);
   recording and replaying an old authenticated frame buys an attacker
   nothing;
4. **decode** — only now are the payload bytes deserialized, and only
   through an *allow-listed* unpickler (:class:`ForbiddenPayload`): the
   payload may reference nothing but the task dataclasses of
   ``repro.exec``/``repro.clustering``/``repro.distance`` and stdlib
   container scalars.  A malicious or compromised worker can therefore
   never execute code on the coordinator — ``pickle.loads`` of an
   attacker-chosen global is structurally impossible, not merely
   unlikely.  Bytes that pass the allow-list but still fail to decode
   raise :class:`PayloadError`.

Connection state (the send counter and the last accepted receive counter)
lives in :class:`FrameCodec`, one per socket per direction pair.  The
module-level :func:`encode_frame`/:func:`decode_frame`/:func:`send_frame`/
:func:`recv_frame` helpers are the stateless core the codec is built on
(and what the property tests drive); protocol peers always speak through a
codec.

The shared secret comes from ``--cluster-secret`` or the
``REPRO_CLUSTER_SECRET`` environment variable.  Without one, frames are
MAC'd under a fixed, publicly known key: the tag then still catches
corruption and accidents (port scanners, stale peers, torn writes) but
authenticates nothing — single-host development convenience, not a
deployment mode for untrusted networks.

Trust model in one line: the secret authenticates *who* may speak; the
allow-listed decoder bounds *what* they may say; neither protects payload
confidentiality (use a private network or a tunnel for that).

The pickle protocol is pinned to 4 (supported since Python 3.4) so a
coordinator and workers on different interpreter minor versions
interoperate.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
import io
import pickle
import socket
import struct
from typing import Any, Optional, Tuple

#: Frame magic: "Kizzle Wire Frame".
MAGIC = b"KZWF"

#: Protocol generation; bump on any incompatible message-shape change.
#: Version 2: added the sequence-number field, the trailing HMAC-SHA256
#: tag, and the allow-listed (pickle-free) payload decoder.
WIRE_VERSION = 2

#: Default upper bound on one frame's payload (64 MiB — a whole paper-scale
#: partition of raw HTML fits with a wide margin).
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

#: ``magic(4s) version(H) sequence(Q) payload_length(I)``, big-endian.
HEADER = struct.Struct(">4sHQI")

#: HMAC-SHA256 digest size appended to every frame.
TAG_SIZE = 32

#: The key used when no shared secret is configured: a fixed, public
#: string.  The tag then detects corruption (like a checksum) but
#: authenticates nothing — configure a real secret for untrusted networks.
UNAUTHENTICATED_KEY = b"kizzle-wire-v2-unauthenticated"


class WireError(Exception):
    """Base of every framing/codec failure."""


class WireClosed(WireError):
    """The peer closed the stream cleanly on a frame boundary."""


class FrameTruncated(WireError):
    """The stream/buffer ended in the middle of a frame."""


class FrameTooLarge(WireError):
    """A frame's declared payload exceeds the reader's bound."""


class VersionMismatch(WireError):
    """The frame was written by a different protocol generation."""


class BadMagic(WireError):
    """The bytes are not a frame of this protocol at all."""


class AuthError(WireError):
    """The frame's HMAC tag does not verify under the shared secret.

    Raised *before* the payload is decoded: an unauthenticated peer's
    bytes are never interpreted."""


class ReplayError(WireError):
    """The frame's sequence number is not strictly greater than the last
    accepted one on this connection — a replayed (or reordered) frame.

    Raised after authentication but *before* the payload is decoded."""


class ForbiddenPayload(WireError):
    """The payload references a global outside the allow-list (a pickle
    that could execute code or build objects this protocol never ships)."""


class PayloadError(WireError):
    """The framed payload passed the allow-list but does not decode."""


# ----------------------------------------------------------------------
# allow-listed payload decoding
# ----------------------------------------------------------------------
#: The only globals a frame payload may reference: the task dataclasses
#: the protocol actually ships, plus the stdlib containers they embed.
#: Everything else — notably anything callable with side effects — raises
#: :class:`ForbiddenPayload` at the first reference, before construction.
ALLOWED_GLOBALS = frozenset({
    ("collections", "Counter"),
    ("collections", "OrderedDict"),
    ("repro.clustering.partition", "ClusteredSample"),
    ("repro.clustering.partition", "Cluster"),
    ("repro.clustering.partition", "PartitionMapTask"),
    ("repro.clustering.partition", "PartitionMapResult"),
    ("repro.distance.engine", "DistanceEngineConfig"),
    ("repro.distance.engine", "EngineStats"),
    ("repro.exec.cluster", "PairChunkLease"),
})


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that admits only :data:`ALLOWED_GLOBALS`.

    ``find_class`` is the single gate every ``GLOBAL``/``STACK_GLOBAL``
    opcode passes through; rejecting there means a forbidden class is
    never looked up, let alone instantiated or called.  Persistent ids
    and extension codes are refused outright — the protocol uses neither.
    """

    def find_class(self, module: str, name: str):
        if (module, name) in ALLOWED_GLOBALS:
            return super().find_class(module, name)
        raise ForbiddenPayload(
            f"payload references forbidden global {module}.{name}; "
            f"only the cluster task types may travel in frames")

    def persistent_load(self, pid: Any):
        raise ForbiddenPayload("persistent ids are not part of this protocol")


def dumps_payload(payload: Any) -> bytes:
    """Serialize one payload object (pinned pickle protocol 4)."""
    return pickle.dumps(payload, protocol=4)


def loads_payload(data: bytes) -> Any:
    """Decode payload bytes through the allow-listed unpickler.

    :class:`ForbiddenPayload` for disallowed references; every other
    decode failure is a :class:`PayloadError`.
    """
    try:
        return _RestrictedUnpickler(io.BytesIO(data)).load()
    except ForbiddenPayload:
        raise
    except Exception as exc:
        raise PayloadError(f"frame payload does not decode: {exc}") from exc


# ----------------------------------------------------------------------
# keys and tags
# ----------------------------------------------------------------------
def derive_key(secret: Optional[str]) -> bytes:
    """The MAC key for a shared secret (``None`` -> the public default)."""
    if secret is None or secret == "":
        return UNAUTHENTICATED_KEY
    return hashlib.sha256(secret.encode("utf-8")).digest()


def _tag(key: bytes, header: bytes, body: bytes) -> bytes:
    return hmac_module.new(key, header + body, hashlib.sha256).digest()


# ----------------------------------------------------------------------
# pure codec (unit- and property-tested without sockets)
# ----------------------------------------------------------------------
def encode_frame(payload: Any, *, max_bytes: int = DEFAULT_MAX_FRAME,
                 key: bytes = UNAUTHENTICATED_KEY, seq: int = 0) -> bytes:
    """Serialize one object into a framed, authenticated byte string."""
    return encode_frame_raw(dumps_payload(payload), max_bytes=max_bytes,
                            key=key, seq=seq)


def encode_frame_raw(data: bytes, *, max_bytes: int = DEFAULT_MAX_FRAME,
                     key: bytes = UNAUTHENTICATED_KEY, seq: int = 0) -> bytes:
    """Frame pre-serialized payload bytes (the fault harness uses this to
    ship deliberately hostile payloads through a valid envelope)."""
    if len(data) > max_bytes:
        raise FrameTooLarge(
            f"payload of {len(data)} bytes exceeds the {max_bytes}-byte "
            f"frame bound")
    header = HEADER.pack(MAGIC, WIRE_VERSION, seq, len(data))
    return header + data + _tag(key, header, data)


def _check_header(header: bytes, *, max_bytes: int) -> Tuple[int, int]:
    """Validate a complete header; returns ``(seq, payload_length)``."""
    magic, version, seq, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise BadMagic(f"expected magic {MAGIC!r}, got {magic!r}")
    if version != WIRE_VERSION:
        raise VersionMismatch(
            f"frame version {version} != supported version {WIRE_VERSION}")
    if length > max_bytes:
        raise FrameTooLarge(
            f"declared payload of {length} bytes exceeds the "
            f"{max_bytes}-byte frame bound")
    return seq, length


def _authenticate(key: bytes, header: bytes, body: bytes,
                  tag: bytes) -> None:
    """Constant-time tag verification; :class:`AuthError` on mismatch."""
    if not hmac_module.compare_digest(tag, _tag(key, header, body)):
        raise AuthError(
            "frame HMAC tag does not verify (wrong or missing shared "
            "secret, or a tampered frame)")


def _check_fresh(seq: int, last_seq: Optional[int]) -> None:
    if last_seq is not None and seq <= last_seq:
        raise ReplayError(
            f"frame sequence {seq} is not beyond the last accepted "
            f"sequence {last_seq} on this connection (replayed or "
            f"reordered frame)")


def decode_frame(data: bytes, *, max_bytes: int = DEFAULT_MAX_FRAME,
                 key: bytes = UNAUTHENTICATED_KEY,
                 last_seq: Optional[int] = None) -> Any:
    """Decode one complete frame from a byte string.

    The buffer must hold exactly one whole frame; anything shorter raises
    :class:`FrameTruncated` (validation still runs on whatever prefix is
    present, so a bad magic or alien version in a short buffer reports the
    more specific error).  With ``last_seq``, the frame's sequence number
    must land strictly beyond it.  Authentication and freshness are
    checked before the payload is decoded.
    """
    payload, _seq = decode_frame_ex(data, max_bytes=max_bytes, key=key,
                                    last_seq=last_seq)
    return payload


def decode_frame_ex(data: bytes, *, max_bytes: int = DEFAULT_MAX_FRAME,
                    key: bytes = UNAUTHENTICATED_KEY,
                    last_seq: Optional[int] = None) -> Tuple[Any, int]:
    """:func:`decode_frame`, also returning the frame's sequence number."""
    if len(data) < HEADER.size:
        # Validate what we can see: a wrong magic/version is a more useful
        # diagnosis than "truncated" when the prefix is already alien.
        if len(data) >= 4 and data[:4] != MAGIC:
            raise BadMagic(f"expected magic {MAGIC!r}, got {data[:4]!r}")
        raise FrameTruncated(
            f"{len(data)} bytes is shorter than the {HEADER.size}-byte "
            f"header")
    header = data[:HEADER.size]
    seq, length = _check_header(header, max_bytes=max_bytes)
    rest = data[HEADER.size:]
    if len(rest) < length + TAG_SIZE:
        raise FrameTruncated(
            f"frame declares {length} payload bytes plus a {TAG_SIZE}-byte "
            f"tag but only {len(rest)} bytes are present")
    body = rest[:length]
    tag = rest[length:length + TAG_SIZE]
    _authenticate(key, header, body, tag)
    _check_fresh(seq, last_seq)
    return loads_payload(body), seq


# ----------------------------------------------------------------------
# stream transport
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int, *,
                at_boundary: bool) -> bytes:
    """Read exactly ``count`` bytes from a socket.

    ``at_boundary`` marks a read that starts a new frame: a clean EOF there
    is :class:`WireClosed` (the peer hung up between frames), while EOF
    anywhere else is :class:`FrameTruncated` (the peer died mid-send).
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == count:
                raise WireClosed("peer closed the connection")
            raise FrameTruncated(
                f"stream ended {remaining} bytes short of a "
                f"{count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Any, *,
               max_bytes: int = DEFAULT_MAX_FRAME,
               key: bytes = UNAUTHENTICATED_KEY, seq: int = 0) -> int:
    """Frame and send one object over a socket; returns bytes sent."""
    frame = encode_frame(payload, max_bytes=max_bytes, key=key, seq=seq)
    sock.sendall(frame)
    return len(frame)


def recv_frame(sock: socket.socket, *,
               max_bytes: int = DEFAULT_MAX_FRAME,
               key: bytes = UNAUTHENTICATED_KEY,
               last_seq: Optional[int] = None) -> Any:
    """Receive one frame from a socket.

    The header is read and validated first; an oversized declaration raises
    before a single payload byte is read, so a corrupt length can never make
    the reader buffer garbage or block on bytes that will never come (the
    socket's own timeout still governs how long each ``recv`` may wait).
    The tag is verified and the sequence checked before decode.
    """
    payload, _seq = recv_frame_ex(sock, max_bytes=max_bytes, key=key,
                                  last_seq=last_seq)
    return payload


def recv_frame_ex(sock: socket.socket, *,
                  max_bytes: int = DEFAULT_MAX_FRAME,
                  key: bytes = UNAUTHENTICATED_KEY,
                  last_seq: Optional[int] = None) -> Tuple[Any, int]:
    """:func:`recv_frame`, also returning the frame's sequence number."""
    header = _recv_exact(sock, HEADER.size, at_boundary=True)
    seq, length = _check_header(header, max_bytes=max_bytes)
    body_and_tag = _recv_exact(sock, length + TAG_SIZE, at_boundary=False)
    body = body_and_tag[:length]
    _authenticate(key, header, body, body_and_tag[length:])
    _check_fresh(seq, last_seq)
    return loads_payload(body), seq


def read_frame(stream: io.BufferedIOBase, *,
               max_bytes: int = DEFAULT_MAX_FRAME,
               key: bytes = UNAUTHENTICATED_KEY,
               last_seq: Optional[int] = None) -> Any:
    """:func:`recv_frame` for file-like streams (testing convenience)."""
    header = stream.read(HEADER.size)
    if not header:
        raise WireClosed("stream ended on a frame boundary")
    if len(header) < HEADER.size:
        raise FrameTruncated(
            f"stream ended {HEADER.size - len(header)} bytes into the "
            f"header")
    seq, length = _check_header(header, max_bytes=max_bytes)
    body_and_tag = stream.read(length + TAG_SIZE)
    if len(body_and_tag) < length + TAG_SIZE:
        raise FrameTruncated(
            f"stream ended {length + TAG_SIZE - len(body_and_tag)} bytes "
            f"short of the declared payload and tag")
    body = body_and_tag[:length]
    _authenticate(key, header, body, body_and_tag[length:])
    _check_fresh(seq, last_seq)
    return loads_payload(body)


# ----------------------------------------------------------------------
# per-connection state
# ----------------------------------------------------------------------
class FrameCodec:
    """One connection's framing state: the key, a send counter, and the
    last accepted receive counter.

    Sequence numbers start at 1 and increase by one per frame sent; the
    receive side accepts any strictly increasing sequence (gaps cannot
    occur on an in-order stream, but tolerating them keeps the check a
    pure anti-replay property rather than a loss detector).  The two
    directions are independent: each peer numbers its own sends.

    Thread-safety: callers serialize sends themselves (the coordinator
    and worker already hold a send lock around every send), so the codec
    does not lock.
    """

    def __init__(self, secret: Optional[str] = None, *,
                 max_bytes: int = DEFAULT_MAX_FRAME) -> None:
        self.key = derive_key(secret)
        self.max_bytes = max_bytes
        self.send_seq = 0
        self.last_recv_seq = 0

    # -- sending --------------------------------------------------------
    def encode(self, payload: Any, *, seq: Optional[int] = None) -> bytes:
        """Frame one payload, advancing the send counter (unless a
        sequence is pinned explicitly — the replay fault harness does)."""
        if seq is None:
            self.send_seq += 1
            seq = self.send_seq
        return encode_frame(payload, max_bytes=self.max_bytes,
                            key=self.key, seq=seq)

    def encode_raw(self, data: bytes, *, seq: Optional[int] = None) -> bytes:
        """Frame pre-serialized payload bytes (fault harness)."""
        if seq is None:
            self.send_seq += 1
            seq = self.send_seq
        return encode_frame_raw(data, max_bytes=self.max_bytes,
                                key=self.key, seq=seq)

    def send(self, sock: socket.socket, payload: Any) -> int:
        """Frame and send one payload; returns bytes written."""
        frame = self.encode(payload)
        sock.sendall(frame)
        return len(frame)

    # -- receiving ------------------------------------------------------
    def recv(self, sock: socket.socket) -> Any:
        """Receive one authenticated, fresh frame; updates the counter."""
        payload, seq = recv_frame_ex(sock, max_bytes=self.max_bytes,
                                     key=self.key,
                                     last_seq=self.last_recv_seq)
        self.last_recv_seq = seq
        return payload

    def decode(self, data: bytes) -> Any:
        """Decode one authenticated, fresh frame from a byte string."""
        payload, seq = decode_frame_ex(data, max_bytes=self.max_bytes,
                                       key=self.key,
                                       last_seq=self.last_recv_seq)
        self.last_recv_seq = seq
        return payload
