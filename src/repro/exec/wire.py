"""Length-prefixed pickle wire codec with versioned frames.

Everything the cluster backend sends over a socket — worker registration,
task leases, heartbeats, :class:`~repro.clustering.partition.PartitionMapTask`
payloads and their results — travels as one *frame*::

    +-------+---------+----------------+-----------------+
    | magic | version | payload length | pickled payload |
    | 4 B   | 2 B     | 4 B big-endian | length bytes    |
    +-------+---------+----------------+-----------------+

The fixed header is validated **before** any payload byte is read or
unpickled, in this order: magic, version, length bound.  Every malformed
input raises a typed :class:`WireError` subclass — a reader can never hang
on a bad length, allocate an unbounded buffer, or unpickle garbage that
merely *looks* like a frame:

* :class:`BadMagic` — the stream is not speaking this protocol at all;
* :class:`VersionMismatch` — a peer from a different protocol generation
  (the version is checked frame by frame, so a mixed-version cluster fails
  fast instead of corrupting state mid-run);
* :class:`FrameTooLarge` — the declared payload exceeds the reader's bound
  (raised *before* the payload is read);
* :class:`FrameTruncated` — the stream ended mid-frame (a worker died while
  sending, or a buffer was cut short);
* :class:`WireClosed` — clean EOF exactly on a frame boundary (the normal
  way a peer hangs up);
* :class:`PayloadError` — the payload bytes do not unpickle.

Security note: frames carry pickles, so the codec is only suitable between
mutually trusted machines (the paper's deployment: one operator's cluster).
The magic/version/length validation protects against *accidents* — port
scanners, stale peers, torn writes — not against a hostile peer.

The pickle protocol is pinned to 4 (supported since Python 3.4) so a
coordinator and workers on different interpreter minor versions
interoperate.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
from typing import Any

#: Frame magic: "Kizzle Wire Frame".
MAGIC = b"KZWF"

#: Protocol generation; bump on any incompatible message-shape change.
WIRE_VERSION = 1

#: Default upper bound on one frame's payload (64 MiB — a whole paper-scale
#: partition of raw HTML fits with a wide margin).
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

#: ``magic(4s) version(H) payload_length(I)``, big-endian.
HEADER = struct.Struct(">4sHI")


class WireError(Exception):
    """Base of every framing/codec failure."""


class WireClosed(WireError):
    """The peer closed the stream cleanly on a frame boundary."""


class FrameTruncated(WireError):
    """The stream/buffer ended in the middle of a frame."""


class FrameTooLarge(WireError):
    """A frame's declared payload exceeds the reader's bound."""


class VersionMismatch(WireError):
    """The frame was written by a different protocol generation."""


class BadMagic(WireError):
    """The bytes are not a frame of this protocol at all."""


class PayloadError(WireError):
    """The framed payload does not unpickle."""


# ----------------------------------------------------------------------
# pure codec (unit- and property-tested without sockets)
# ----------------------------------------------------------------------
def encode_frame(payload: Any, *, max_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one object into a framed byte string."""
    data = pickle.dumps(payload, protocol=4)
    if len(data) > max_bytes:
        raise FrameTooLarge(
            f"payload of {len(data)} bytes exceeds the {max_bytes}-byte "
            f"frame bound")
    return HEADER.pack(MAGIC, WIRE_VERSION, len(data)) + data


def _check_header(header: bytes, *, max_bytes: int) -> int:
    """Validate a complete header; returns the declared payload length."""
    magic, version, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise BadMagic(f"expected magic {MAGIC!r}, got {magic!r}")
    if version != WIRE_VERSION:
        raise VersionMismatch(
            f"frame version {version} != supported version {WIRE_VERSION}")
    if length > max_bytes:
        raise FrameTooLarge(
            f"declared payload of {length} bytes exceeds the "
            f"{max_bytes}-byte frame bound")
    return length


def _load_payload(data: bytes) -> Any:
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise PayloadError(f"frame payload does not unpickle: {exc}") from exc


def decode_frame(data: bytes, *,
                 max_bytes: int = DEFAULT_MAX_FRAME) -> Any:
    """Decode one complete frame from a byte string.

    The buffer must hold exactly one whole frame; anything shorter raises
    :class:`FrameTruncated` (validation still runs on whatever prefix is
    present, so a bad magic or alien version in a short buffer reports the
    more specific error).
    """
    if len(data) < HEADER.size:
        # Validate what we can see: a wrong magic/version is a more useful
        # diagnosis than "truncated" when the prefix is already alien.
        if len(data) >= 4 and data[:4] != MAGIC:
            raise BadMagic(f"expected magic {MAGIC!r}, got {data[:4]!r}")
        raise FrameTruncated(
            f"{len(data)} bytes is shorter than the {HEADER.size}-byte "
            f"header")
    length = _check_header(data[:HEADER.size], max_bytes=max_bytes)
    body = data[HEADER.size:]
    if len(body) < length:
        raise FrameTruncated(
            f"frame declares {length} payload bytes but only {len(body)} "
            f"are present")
    return _load_payload(body[:length])


# ----------------------------------------------------------------------
# stream transport
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int, *,
                at_boundary: bool) -> bytes:
    """Read exactly ``count`` bytes from a socket.

    ``at_boundary`` marks a read that starts a new frame: a clean EOF there
    is :class:`WireClosed` (the peer hung up between frames), while EOF
    anywhere else is :class:`FrameTruncated` (the peer died mid-send).
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == count:
                raise WireClosed("peer closed the connection")
            raise FrameTruncated(
                f"stream ended {remaining} bytes short of a "
                f"{count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Any, *,
               max_bytes: int = DEFAULT_MAX_FRAME) -> None:
    """Frame and send one object over a socket."""
    sock.sendall(encode_frame(payload, max_bytes=max_bytes))


def recv_frame(sock: socket.socket, *,
               max_bytes: int = DEFAULT_MAX_FRAME) -> Any:
    """Receive one frame from a socket.

    The header is read and validated first; an oversized declaration raises
    before a single payload byte is read, so a corrupt length can never make
    the reader buffer garbage or block on bytes that will never come (the
    socket's own timeout still governs how long each ``recv`` may wait).
    """
    header = _recv_exact(sock, HEADER.size, at_boundary=True)
    length = _check_header(header, max_bytes=max_bytes)
    payload = _recv_exact(sock, length, at_boundary=False) if length else b""
    return _load_payload(payload)


def read_frame(stream: io.BufferedIOBase, *,
               max_bytes: int = DEFAULT_MAX_FRAME) -> Any:
    """:func:`recv_frame` for file-like streams (testing convenience)."""
    header = stream.read(HEADER.size)
    if not header:
        raise WireClosed("stream ended on a frame boundary")
    if len(header) < HEADER.size:
        raise FrameTruncated(
            f"stream ended {HEADER.size - len(header)} bytes into the "
            f"header")
    length = _check_header(header, max_bytes=max_bytes)
    payload = stream.read(length)
    if len(payload) < length:
        raise FrameTruncated(
            f"stream ended {length - len(payload)} bytes short of the "
            f"declared payload")
    return _load_payload(payload)
