"""k-gram hashing and the winnowing selection algorithm.

Winnowing (Schleimer et al., SIGMOD 2003) fingerprints a document by hashing
all k-grams and, within every window of ``w`` consecutive k-gram hashes,
selecting the minimum hash (rightmost occurrence on ties).  The guarantee is
that any shared substring of length at least ``w + k - 1`` produces at least
one shared fingerprint, while the expected density of selected hashes is
``2 / (w + 1)``.

We fingerprint the *normalized text* of unpacked samples: whitespace is
removed and the text is lower-cased, which mirrors how plagiarism detectors
neutralize layout noise and how the paper's Figure 15 false positive shows
overlap being computed on code text.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

DEFAULT_K = 8
DEFAULT_WINDOW = 12

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Normalize text before fingerprinting: drop whitespace, lower-case."""
    return _WHITESPACE_RE.sub("", text).lower()


def kgrams(text: str, k: int = DEFAULT_K) -> Iterator[str]:
    """Yield all k-grams of ``text`` (after normalization by the caller)."""
    if k <= 0:
        raise ValueError("k must be positive")
    for index in range(0, max(0, len(text) - k + 1)):
        yield text[index:index + k]


def _hash_kgram(gram: str) -> int:
    """Stable 64-bit hash of a k-gram.

    ``hash()`` is randomized per process, which would make fingerprints
    non-reproducible across runs, so we use blake2b truncated to 8 bytes.
    """
    digest = hashlib.blake2b(gram.encode("utf-8", "replace"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def kgram_hashes(text: str, k: int = DEFAULT_K) -> List[int]:
    """Hash every k-gram of the (already normalized) text."""
    return [_hash_kgram(gram) for gram in kgrams(text, k)]


def winnow(hashes: Sequence[int], window: int = DEFAULT_WINDOW) -> List[Tuple[int, int]]:
    """Select fingerprints from a hash sequence using winnowing.

    Returns ``(hash, position)`` pairs.  Within each window the minimum hash
    is selected; when the same minimum persists across consecutive windows it
    is only recorded once (the standard "record rightmost minimum only when
    it changes" rule).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if not hashes:
        return []
    if len(hashes) <= window:
        # Degenerate short document: record the single global minimum.
        min_value = min(hashes)
        # rightmost occurrence of the minimum
        position = len(hashes) - 1 - hashes[::-1].index(min_value)
        return [(min_value, position)]

    selected: List[Tuple[int, int]] = []
    last_recorded_position = -1
    for start in range(0, len(hashes) - window + 1):
        window_slice = hashes[start:start + window]
        min_value = min(window_slice)
        # rightmost occurrence inside the window
        offset = window - 1 - window_slice[::-1].index(min_value)
        position = start + offset
        if position != last_recorded_position:
            selected.append((min_value, position))
            last_recorded_position = position
    return selected


@dataclass
class Fingerprint:
    """A winnow fingerprint of a single document.

    Attributes
    ----------
    hashes:
        Multiset of selected fingerprint hashes as a ``hash -> count`` map.
    k, window:
        The parameters used to compute the fingerprint; similarity between
        fingerprints computed with different parameters is rejected.
    size:
        Total number of selected fingerprints (with multiplicity).
    """

    hashes: Dict[int, int] = field(default_factory=dict)
    k: int = DEFAULT_K
    window: int = DEFAULT_WINDOW

    @property
    def size(self) -> int:
        return sum(self.hashes.values())

    @classmethod
    def of(cls, text: str, k: int = DEFAULT_K,
           window: int = DEFAULT_WINDOW) -> "Fingerprint":
        """Fingerprint a document (text is normalized internally)."""
        normalized = normalize_text(text)
        selected = winnow(kgram_hashes(normalized, k), window)
        counts: Dict[int, int] = {}
        for value, _position in selected:
            counts[value] = counts.get(value, 0) + 1
        return cls(hashes=counts, k=k, window=window)

    def merge(self, other: "Fingerprint") -> "Fingerprint":
        """Combine two fingerprints (used to build family reference sets)."""
        self._check_compatible(other)
        merged = dict(self.hashes)
        for value, count in other.hashes.items():
            merged[value] = merged.get(value, 0) + count
        return Fingerprint(hashes=merged, k=self.k, window=self.window)

    def intersection_size(self, other: "Fingerprint") -> int:
        """Size of the multiset intersection of two fingerprints."""
        self._check_compatible(other)
        smaller, larger = (self, other) if len(self.hashes) <= len(other.hashes) \
            else (other, self)
        total = 0
        for value, count in smaller.hashes.items():
            other_count = larger.hashes.get(value, 0)
            if other_count:
                total += min(count, other_count)
        return total

    def _check_compatible(self, other: "Fingerprint") -> None:
        if self.k != other.k or self.window != other.window:
            raise ValueError(
                "cannot compare fingerprints with different parameters: "
                f"(k={self.k}, w={self.window}) vs (k={other.k}, w={other.window})"
            )
