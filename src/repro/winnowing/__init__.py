"""Winnowing document fingerprinting (Schleimer, Wilkerson, Aiken 2003).

Kizzle labels clusters by comparing the winnow fingerprint histogram of each
cluster's unpacked prototype against the histograms of known unpacked exploit
kit samples (paper, Section III-B).  The paper also uses the same machinery to
measure day-over-day similarity of unpacked kit cores (Figure 11).
"""

from repro.winnowing.fingerprint import (
    kgrams,
    kgram_hashes,
    winnow,
    Fingerprint,
)
from repro.winnowing.histogram import WinnowHistogram
from repro.winnowing.similarity import overlap, containment, jaccard

__all__ = [
    "kgrams",
    "kgram_hashes",
    "winnow",
    "Fingerprint",
    "WinnowHistogram",
    "overlap",
    "containment",
    "jaccard",
]
