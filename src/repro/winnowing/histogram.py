"""Winnow histograms: the per-document fingerprint representation Kizzle
compares when labeling clusters.

The paper refers to "winnow histograms" for both the cluster prototype and
the known malware samples (Section III-B).  A :class:`WinnowHistogram` wraps a
:class:`~repro.winnowing.fingerprint.Fingerprint` together with the document
label/metadata, and offers the overlap computation used for labeling and for
the Figure 11 similarity-over-time experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.winnowing.fingerprint import DEFAULT_K, DEFAULT_WINDOW, Fingerprint


@dataclass
class WinnowHistogram:
    """Fingerprint histogram of a single (usually unpacked) document."""

    fingerprint: Fingerprint
    label: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def of(cls, text: str, label: Optional[str] = None,
           k: int = DEFAULT_K, window: int = DEFAULT_WINDOW,
           **metadata: object) -> "WinnowHistogram":
        """Build the histogram of a document."""
        return cls(fingerprint=Fingerprint.of(text, k=k, window=window),
                   label=label, metadata=dict(metadata))

    @property
    def size(self) -> int:
        """Number of fingerprints in the histogram (with multiplicity)."""
        return self.fingerprint.size

    def overlap(self, other: "WinnowHistogram") -> float:
        """Fraction of *this* histogram's fingerprints found in ``other``.

        This is the containment measure used for cluster labeling: a cluster
        prototype that shares a sufficiently high fraction of its
        fingerprints with a known kit sample is labeled with that kit.  The
        value is in ``[0, 1]``; an empty histogram has overlap 0 with
        everything.
        """
        if self.size == 0:
            return 0.0
        return self.fingerprint.intersection_size(other.fingerprint) / self.size

    def symmetric_overlap(self, other: "WinnowHistogram") -> float:
        """Symmetric similarity: intersection over the smaller histogram.

        Used for the day-over-day centroid similarity of Figure 11, where the
        two documents play symmetric roles.
        """
        smaller = min(self.size, other.size)
        if smaller == 0:
            return 0.0
        return self.fingerprint.intersection_size(other.fingerprint) / smaller
