"""Similarity measures over winnow fingerprints.

Free-function equivalents of the methods on
:class:`~repro.winnowing.histogram.WinnowHistogram`, usable directly on raw
text.  These back both cluster labeling and the Figure 11 experiment.
"""

from __future__ import annotations

from repro.winnowing.fingerprint import DEFAULT_K, DEFAULT_WINDOW, Fingerprint


def overlap(query: str, reference: str, k: int = DEFAULT_K,
            window: int = DEFAULT_WINDOW) -> float:
    """Fraction of the query's fingerprints that also appear in the reference.

    Asymmetric containment: ``overlap(a, b)`` answers "how much of *a* is
    found in *b*".  This is the quantity Kizzle thresholds when labeling a
    cluster prototype against known malware (Section III-B), and the quantity
    behind the Figure 15 false positive ("79% overlap with Nuclear").
    """
    fp_query = Fingerprint.of(query, k=k, window=window)
    fp_reference = Fingerprint.of(reference, k=k, window=window)
    if fp_query.size == 0:
        return 0.0
    return fp_query.intersection_size(fp_reference) / fp_query.size


def containment(query: str, reference: str, k: int = DEFAULT_K,
                window: int = DEFAULT_WINDOW) -> float:
    """Alias of :func:`overlap` under its document-fingerprinting name."""
    return overlap(query, reference, k=k, window=window)


def jaccard(a: str, b: str, k: int = DEFAULT_K,
            window: int = DEFAULT_WINDOW) -> float:
    """Jaccard similarity between the fingerprint multisets of two texts."""
    fp_a = Fingerprint.of(a, k=k, window=window)
    fp_b = Fingerprint.of(b, k=k, window=window)
    intersection = fp_a.intersection_size(fp_b)
    union = fp_a.size + fp_b.size - intersection
    if union == 0:
        return 1.0 if fp_a.size == fp_b.size == 0 else 0.0
    return intersection / union
