"""Machine model for the cluster simulator.

A machine executes tasks one at a time (the paper's clustering workers are
effectively single-threaded per partition) and charges virtual time according
to an abstract *cost* reported by the task.  The cost unit is deliberately
abstract — the clustering layer reports the number of token-comparison
operations it performed — and the machine converts it to seconds using its
``ops_per_second`` rate, so relative scaling across machine counts is
faithful even though absolute times are synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a worker machine.

    Attributes
    ----------
    ops_per_second:
        Abstract work units the machine retires per virtual second.  The
        default is calibrated so that a daily batch of a few thousand samples
        on 50 machines lands near the paper's ~90 minute wall-clock.
    startup_latency:
        Fixed time to provision/assign a task (scheduling overhead).
    """

    ops_per_second: float = 2_000_000.0
    startup_latency: float = 2.0


@dataclass
class Machine:
    """A simulated worker machine."""

    machine_id: int
    spec: MachineSpec = field(default_factory=MachineSpec)
    busy_until: float = 0.0
    completed_tasks: int = 0
    busy_time: float = 0.0
    task_log: List[str] = field(default_factory=list)

    def execution_time(self, cost: float) -> float:
        """Virtual seconds needed to execute a task of the given cost."""
        if cost < 0:
            raise ValueError("task cost cannot be negative")
        return self.spec.startup_latency + cost / self.spec.ops_per_second

    def assign(self, now: float, cost: float, label: Optional[str] = None) -> float:
        """Assign a task starting no earlier than ``now``.

        Returns the completion time.  The machine is busy until then.
        """
        start = max(now, self.busy_until)
        duration = self.execution_time(cost)
        self.busy_until = start + duration
        self.busy_time += duration
        self.completed_tasks += 1
        if label is not None:
            self.task_log.append(label)
        return self.busy_until

    def utilization(self, horizon: float) -> float:
        """Fraction of the given horizon the machine spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
