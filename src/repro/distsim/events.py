"""Minimal discrete-event engine used by the cluster simulator.

Events are ``(time, sequence, callback)`` entries in a priority queue; the
sequence number guarantees deterministic FIFO ordering for simultaneous
events, which keeps simulation results reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled event in virtual time."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """A deterministic discrete-event loop.

    The loop tracks virtual time (seconds by convention).  Callbacks may
    schedule further events; the loop runs until the queue is exhausted or an
    optional time horizon is reached.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self.processed_events: int = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past: {delay}")
        event = Event(time=self.now + delay, sequence=next(self._counter),
                      callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(max(0.0, time - self.now), callback)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue empties (or ``until`` is reached).

        Returns the final virtual time.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                return self.now
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.processed_events += 1
            event.callback()
        return self.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)
