"""Discrete-event simulator of a cluster of machines.

The paper runs its clustering stage on 50 machines and reports that a daily
batch consistently completes in about 90 minutes, with the reduce
(cluster-reconciliation) step being the bottleneck (Section IV, "Cluster-Based
Processing Performance").  We reproduce that behaviour with a small
discrete-event simulator: machines with a configurable per-token processing
rate, a network model for shipping samples and intermediate cluster
descriptions, a task scheduler, and a map/reduce driver that the real
clustering code plugs into.

The simulator executes the *real* clustering computation (the Python
functions are actually called) while accounting for virtual time as if the
work had been spread across ``n`` machines, so both the results and the
scaling shape are meaningful.
"""

from repro.distsim.events import EventLoop, Event
from repro.distsim.machine import Machine, MachineSpec
from repro.distsim.network import NetworkModel
from repro.distsim.scheduler import Scheduler, Task, TaskResult
from repro.distsim.mapreduce import MapReduceJob, MapReduceReport, SimCluster

__all__ = [
    "EventLoop",
    "Event",
    "Machine",
    "MachineSpec",
    "NetworkModel",
    "Scheduler",
    "Task",
    "TaskResult",
    "MapReduceJob",
    "MapReduceReport",
    "SimCluster",
]
