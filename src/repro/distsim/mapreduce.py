"""Map/reduce driver over the simulated cluster.

The clustering pipeline of the paper is structured as: scatter samples to
machines, cluster each partition independently (map), then reconcile the
per-partition clusters on a single machine (reduce).  :class:`MapReduceJob`
runs that structure over the simulator, executing the real map and reduce
functions, and reports a timing breakdown that exposes the reduce bottleneck
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.distsim.machine import MachineSpec
from repro.distsim.network import NetworkModel
from repro.distsim.scheduler import Scheduler, Task, TaskResult


@dataclass
class MapReduceReport:
    """Timing and accounting breakdown of one map/reduce execution."""

    machine_count: int
    partitions: int
    scatter_time: float
    map_time: float
    gather_time: float
    reduce_time: float
    map_results: List[TaskResult] = field(default_factory=list)
    reduce_value: Any = None
    #: Distance-engine accounting for the whole job (pairs per pruning
    #: layer, cache hits, kernel calls), attached by engine-backed callers
    #: so benchmarks can attribute where the distance work went.
    distance_stats: Optional[Dict[str, int]] = None
    #: Extra pipeline stages charged against the same machine pool (the
    #: incremental path's shedding and absorption run before the map/reduce
    #: job but are real daily work; see :meth:`charge_stage`).  Virtual
    #: seconds per stage name; included in :attr:`total_time`.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Measured wall-clock per pipeline stage (shed/prepare/cluster/label/
    #: compile/finalize), attached by the pipeline so benchmarks can break an
    #: end-to-end day down without instrumenting it from outside.  Not part
    #: of the virtual :attr:`total_time`.
    wall_stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Which execution backend produced this report (``serial`` /
    #: ``process`` / ``distsim``).
    backend: str = "distsim"
    #: Mean machine utilization per extra charged stage, derived from the
    #: real scheduled tasks when the distsim backend simulates the stage.
    stage_utilization: Dict[str, float] = field(default_factory=dict)
    #: Real worker-pool width the partition-level map executed with
    #: (``1`` = the map ran inline in the driver process).
    map_workers: int = 1
    #: Measured wall-clock seconds of the partition-parallel map (the real
    #: pool, not simulated time); ``0.0`` when the map ran inline.
    map_wall_seconds: float = 0.0

    @property
    def total_time(self) -> float:
        """End-to-end virtual wall-clock of the job (including any extra
        charged stages)."""
        return self.scatter_time + self.map_time + self.gather_time \
            + self.reduce_time + sum(self.stage_seconds.values())

    def charge_stage(self, name: str, cost: float,
                     machine_count: Optional[int] = None,
                     spec: Optional[MachineSpec] = None) -> float:
        """Charge an extra perfectly-parallel stage against the pool.

        ``cost`` is in the same abstract work units as map/reduce task
        costs; it is spread over ``machine_count`` machines (default: the
        job's pool) and converted to virtual seconds with the machine spec.
        Returns the charged seconds.  Charging the incremental stages keeps
        the simulated daily wall-clock honest: work the warm path *sheds*
        disappears from the total, work it merely *moves* does not.
        """
        machines = machine_count or self.machine_count
        spec = spec or MachineSpec()
        seconds = (cost / max(1, machines)) / spec.ops_per_second
        self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds
        return seconds

    @property
    def reduce_fraction(self) -> float:
        """Share of total time spent gathering + reducing."""
        total = self.total_time
        if total <= 0:
            return 0.0
        return (self.gather_time + self.reduce_time) / total

    def summary(self) -> Dict[str, float]:
        """Flat summary dictionary suitable for benchmark reporting."""
        summary = {
            "machines": float(self.machine_count),
            "partitions": float(self.partitions),
            "scatter_s": self.scatter_time,
            "map_s": self.map_time,
            "gather_s": self.gather_time,
            "reduce_s": self.reduce_time,
            "total_s": self.total_time,
            "total_minutes": self.total_time / 60.0,
            "reduce_fraction": self.reduce_fraction,
        }
        if self.map_workers > 1:
            summary["map_workers"] = float(self.map_workers)
            summary["map_wall_s"] = self.map_wall_seconds
        if self.distance_stats:
            summary.update({f"distance_{name}": float(value)
                            for name, value in self.distance_stats.items()})
        for name, seconds in self.stage_seconds.items():
            summary[f"stage_{name}_s"] = seconds
        for name, seconds in self.wall_stage_seconds.items():
            summary[f"wall_{name}_s"] = seconds
        for name, utilization in self.stage_utilization.items():
            summary[f"util_{name}"] = utilization
        return summary


@dataclass
class SimCluster:
    """A pool of simulated machines plus a network model."""

    machine_count: int = 50
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    network: NetworkModel = field(default_factory=NetworkModel)

    def __post_init__(self) -> None:
        if self.machine_count <= 0:
            raise ValueError("machine_count must be positive")


class MapReduceJob:
    """Execute a map/reduce computation on a :class:`SimCluster`.

    Parameters
    ----------
    cluster:
        The simulated cluster to run on.
    map_function:
        Called once per partition with the partition's items; must return a
        tuple ``(value, cost, output_bytes)`` where ``cost`` is the abstract
        work performed and ``output_bytes`` the size of the intermediate
        result shipped to the reducer.
    reduce_function:
        Called once with the list of per-partition values; must return a
        tuple ``(value, cost)``.
    """

    def __init__(self, cluster: SimCluster,
                 map_function: Callable[[Sequence[Any]], Tuple[Any, float, float]],
                 reduce_function: Callable[[List[Any]], Tuple[Any, float]]) -> None:
        self.cluster = cluster
        self.map_function = map_function
        self.reduce_function = reduce_function

    def run(self, items: Sequence[Any],
            partitions: Optional[int] = None,
            item_bytes: Callable[[Any], float] = lambda item: float(len(str(item)))
            ) -> MapReduceReport:
        """Run the job over ``items``.

        ``partitions`` defaults to the machine count.  Items are assigned to
        partitions round-robin after the caller has already shuffled them if
        random partitioning is desired (the clustering layer shuffles with a
        seeded RNG so runs stay reproducible).
        """
        partition_count = partitions or self.cluster.machine_count
        partition_count = max(1, min(partition_count, max(1, len(items))))
        buckets: List[List[Any]] = [[] for _ in range(partition_count)]
        for index, item in enumerate(items):
            buckets[index % partition_count].append(item)

        total_bytes = sum(item_bytes(item) for item in items)
        scatter_time = self.cluster.network.scatter_time(
            total_bytes, self.cluster.machine_count)

        scheduler = Scheduler(self.cluster.machine_count,
                              spec=self.cluster.machine_spec)
        map_outputs: List[Any] = []
        output_sizes: List[float] = []

        def make_map_task(bucket: List[Any], index: int) -> Task:
            def run_map() -> Dict[str, Any]:
                value, cost, output_bytes = self.map_function(bucket)
                return {"value": value, "cost": cost,
                        "output_bytes": output_bytes}
            return Task(name=f"map-{index}", callable=run_map)

        tasks = [make_map_task(bucket, index)
                 for index, bucket in enumerate(buckets) if bucket]
        map_results = scheduler.run_tasks(tasks)
        for result in map_results:
            if result.error is not None:
                raise result.error
            map_outputs.append(result.value["value"])
            output_sizes.append(float(result.value["output_bytes"]))
        map_time = scheduler.makespan

        per_machine_bytes = max(output_sizes) if output_sizes else 0.0
        gather_time = self.cluster.network.gather_time(
            per_machine_bytes, len(output_sizes) or 1)

        reduce_value, reduce_cost = self.reduce_function(map_outputs)
        reducer = Scheduler(1, spec=self.cluster.machine_spec)
        reducer.run_tasks([Task(name="reduce", callable=lambda: None,
                                cost=reduce_cost)])
        reduce_time = reducer.makespan

        return MapReduceReport(
            machine_count=self.cluster.machine_count,
            partitions=partition_count,
            scatter_time=scatter_time,
            map_time=map_time,
            gather_time=gather_time,
            reduce_time=reduce_time,
            map_results=map_results,
            reduce_value=reduce_value,
        )
