"""Task scheduler for the cluster simulator.

The scheduler assigns a bag of independent tasks to machines using a
least-loaded (earliest-available) policy, executes the real Python callable of
each task, and accounts for virtual time in the event loop.  The result is a
per-task record of start/finish times plus whatever value the callable
returned, so callers get both the computation's output and its simulated
timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.distsim.events import EventLoop
from repro.distsim.machine import Machine, MachineSpec


@dataclass
class Task:
    """A unit of schedulable work.

    Attributes
    ----------
    name:
        Human-readable identifier, used in reports.
    callable:
        The actual Python function to run.  It is invoked with no arguments
        (bind inputs with ``functools.partial`` or a closure).
    cost:
        Abstract work units (see :class:`~repro.distsim.machine.MachineSpec`).
        If ``None``, the cost is taken from the callable's return value when
        that value is a mapping containing a ``"cost"`` key, and defaults to
        1.0 otherwise.
    input_bytes:
        Size of the task's input, charged against the network scatter.
    """

    name: str
    callable: Callable[[], Any]
    cost: Optional[float] = None
    input_bytes: float = 0.0


@dataclass
class TaskResult:
    """Outcome of a scheduled task."""

    task: Task
    machine_id: int
    start_time: float
    finish_time: float
    value: Any = None
    error: Optional[BaseException] = None

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time

    @property
    def succeeded(self) -> bool:
        return self.error is None


class Scheduler:
    """Least-loaded scheduler over a fixed pool of machines."""

    def __init__(self, machine_count: int,
                 spec: Optional[MachineSpec] = None,
                 loop: Optional[EventLoop] = None) -> None:
        if machine_count <= 0:
            raise ValueError("machine_count must be positive")
        self.spec = spec or MachineSpec()
        self.machines = [Machine(machine_id=i, spec=self.spec)
                         for i in range(machine_count)]
        self.loop = loop or EventLoop()
        self.results: List[TaskResult] = []

    def run_tasks(self, tasks: Sequence[Task]) -> List[TaskResult]:
        """Execute all tasks, returning their results in submission order.

        The callables are executed eagerly (their output is real); only the
        time accounting is simulated.  Exceptions raised by a task are
        captured in its :class:`TaskResult` rather than propagated, so one
        bad partition does not take down the whole daily run — mirroring how
        a production pipeline isolates worker failures.
        """
        results: List[TaskResult] = []
        for task in tasks:
            machine = min(self.machines, key=lambda m: m.busy_until)
            start = max(self.loop.now, machine.busy_until)
            value: Any = None
            error: Optional[BaseException] = None
            try:
                value = task.callable()
            except Exception as exc:  # noqa: BLE001 - deliberate isolation
                error = exc
            cost = task.cost
            if cost is None:
                if isinstance(value, dict) and "cost" in value:
                    cost = float(value["cost"])
                else:
                    cost = 1.0
            finish = machine.assign(start, cost, label=task.name)
            result = TaskResult(task=task, machine_id=machine.machine_id,
                                start_time=start, finish_time=finish,
                                value=value, error=error)
            results.append(result)
        self.results.extend(results)
        return results

    @property
    def makespan(self) -> float:
        """Virtual time at which the last machine becomes idle."""
        return max((machine.busy_until for machine in self.machines),
                   default=0.0)

    def utilization(self) -> Dict[int, float]:
        """Per-machine utilization over the makespan."""
        horizon = self.makespan
        return {machine.machine_id: machine.utilization(horizon)
                for machine in self.machines}
