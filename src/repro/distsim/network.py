"""Network model for the cluster simulator.

Shipping a daily batch of JavaScript samples to worker machines and shipping
per-partition cluster summaries back to the reducer both take time that grows
with data volume.  We model the network as a shared medium with a fixed
per-transfer latency and a bandwidth expressed in bytes per virtual second.
This is intentionally simple — the paper's observation we need to reproduce
is only that the map phase parallelizes while the reduce phase serializes on
one machine and on the transfer of intermediate results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth model for data movement between machines.

    Attributes
    ----------
    latency:
        Fixed per-transfer latency in virtual seconds.
    bandwidth_bytes_per_second:
        Sustained throughput of a single transfer.
    """

    latency: float = 0.05
    bandwidth_bytes_per_second: float = 50_000_000.0

    def transfer_time(self, size_bytes: float) -> float:
        """Virtual seconds to transfer ``size_bytes`` between two machines."""
        if size_bytes < 0:
            raise ValueError("transfer size cannot be negative")
        return self.latency + size_bytes / self.bandwidth_bytes_per_second

    def scatter_time(self, total_bytes: float, machines: int) -> float:
        """Time to partition ``total_bytes`` across ``machines`` workers.

        Transfers to distinct workers proceed in parallel, but each worker's
        share still has to cross the network, so the scatter completes when
        the largest share arrives.
        """
        if machines <= 0:
            raise ValueError("machine count must be positive")
        per_machine = total_bytes / machines
        return self.transfer_time(per_machine)

    def gather_time(self, per_machine_bytes: float, machines: int) -> float:
        """Time to collect per-machine outputs on a single reducer.

        The reducer's inbound link is the bottleneck: the transfers serialize
        on it, which is one of the reasons the paper identifies the reduce
        step as the bottleneck of the pipeline.
        """
        if machines <= 0:
            raise ValueError("machine count must be positive")
        return self.latency + (per_machine_bytes * machines) \
            / self.bandwidth_bytes_per_second
