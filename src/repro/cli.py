"""Command-line interface for the Kizzle reproduction.

Three subcommands cover the day-to-day uses of the library without writing
any Python:

``process-day``
    Run the full pipeline (cluster → label → compile signatures) over one
    synthetic day and print the cluster/signature summary.

``scan``
    Compile signatures from a reference day, then scan another day's samples
    with them and with the simulated commercial AV, printing the comparison.

``evaluate``
    Run the month-long evaluation for a configurable number of days and print
    the Figure 13/14-style summaries.

The CLI is intentionally a thin veneer over the public API so that every code
path it exercises is already covered by the library's own tests; its own
tests only check argument handling and output plumbing.
"""

from __future__ import annotations

import argparse
import datetime
import sys
from typing import List, Optional, Sequence

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.distance.engine import DistanceEngineConfig
from repro.ekgen.telemetry import StreamConfig, TelemetryGenerator
from repro.exec.backend import BACKEND_KINDS, BackendConfig
from repro.evalharness import ExperimentConfig, MonthExperiment, \
    format_absolute_counts, format_day_series

DEFAULT_KITS = ("nuclear", "angler", "rig", "sweetorange")


def _parse_date(text: str) -> datetime.date:
    try:
        return datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"not an ISO date (YYYY-MM-DD): {text!r}") from exc


def _host_port(text: str) -> str:
    """Validate a ``host:port`` flag value (kept as a string; the backend
    parses it again — this only turns malformed input into a proper CLI
    usage error instead of a traceback from deep inside construction)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}")
    try:
        int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"port must be an integer, got {port!r}")
    return text


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from exc
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative: {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kizzle-repro",
        description="Kizzle signature compiler reproduction (DSN 2016)")
    parser.add_argument("--benign", type=int, default=30,
                        help="benign samples per synthetic day")
    parser.add_argument("--angler", type=int, default=14,
                        help="Angler samples per day")
    parser.add_argument("--nuclear", type=int, default=5,
                        help="Nuclear samples per day")
    parser.add_argument("--sweetorange", type=int, default=6,
                        help="Sweet Orange samples per day")
    parser.add_argument("--rig", type=int, default=3,
                        help="RIG samples per day")
    parser.add_argument("--seed", type=int, default=20140801,
                        help="stream seed")
    parser.add_argument("--backend", choices=BACKEND_KINDS,
                        default="distsim",
                        help="execution backend: 'serial' runs everything "
                             "inline in one process, 'process' fans the "
                             "distance workload out over a real process "
                             "pool, 'distsim' (default) additionally "
                             "simulates the paper's machine cluster for "
                             "makespan/utilization reports, 'cluster' "
                             "executes on real worker processes over TCP "
                             "(see --listen/--spawn-workers; external "
                             "workers join with `python -m "
                             "repro.exec.worker --connect host:port`); "
                             "results are identical across all of them")
    parser.add_argument("--listen", metavar="HOST:PORT", type=_host_port,
                        default=None,
                        help="with --backend cluster: address the "
                             "coordinator binds (default 127.0.0.1 with an "
                             "OS-assigned port; use 0.0.0.0:<port> to "
                             "accept workers from other machines)")
    parser.add_argument("--spawn-workers", type=_nonnegative_int, default=2,
                        help="with --backend cluster: localhost worker "
                             "subprocesses launched automatically "
                             "(default 2; 0 = wait for external workers "
                             "to --connect)")
    parser.add_argument("--cluster-secret", default=None, metavar="SECRET",
                        help="with --backend cluster: shared wire secret — "
                             "every coordinator/worker frame is "
                             "HMAC-authenticated under it and unauthorized "
                             "peers are rejected before payload decode "
                             "(default: the REPRO_CLUSTER_SECRET "
                             "environment variable; unset = integrity "
                             "checking only, for single-host development)")
    parser.add_argument("--affinity",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="with --backend cluster: lease repeat "
                             "partitions back to the worker that served "
                             "them last and ship those leases with tokens "
                             "stripped (the worker's persistent caches "
                             "re-derive them); purely a warm-path "
                             "optimization — results are byte-identical "
                             "with --no-affinity")
    parser.add_argument("--machines", type=int, default=10,
                        help="logical machine count, wired through the "
                             "backend config: sets the clustering "
                             "partition default for every backend and the "
                             "simulated pool size for --backend distsim")
    parser.add_argument("--workers", type=_nonnegative_int, default=0,
                        help="worker-pool width, wired through the backend "
                             "config to the partition-level map pool and "
                             "the distance-engine fan-out "
                             "(0 = auto-detect CPU count, 1 = serial; "
                             "ignored by --backend serial)")
    parser.add_argument("--partition-parallel",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="run the per-partition map (tokenize + DBSCAN) "
                             "on a persistent --workers-wide process pool "
                             "(default on; results are byte-identical "
                             "either way, and batches with a single "
                             "partition or worker stay inline; ignored by "
                             "--backend serial)")
    parser.add_argument("--no-length-filter", action="store_true",
                        help="disable the length-gap distance prefilter")
    parser.add_argument("--no-bag-filter", action="store_true",
                        help="disable the token-bag distance prefilter")
    parser.add_argument("--no-qgram-filter", action="store_true",
                        help="disable the q-gram distance prefilter")
    parser.add_argument("--distance-cache", type=_nonnegative_int,
                        default=DistanceEngineConfig.cache_size,
                        help="bounded pair-distance cache size (entries)")
    parser.add_argument("--incremental", action="store_true",
                        help="enable the day-over-day warm path: shed "
                             "known samples, carry clusters forward, scan "
                             "with the fast normal form")
    parser.add_argument("--no-shed", action="store_true",
                        help="with --incremental: disable known-sample "
                             "shedding")
    parser.add_argument("--no-carry-forward", action="store_true",
                        help="with --incremental: disable cluster label "
                             "carry-forward")
    parser.add_argument("--scan-mode", choices=("fast", "exact"),
                        default="fast",
                        help="with --incremental: normal form used for "
                             "scanning (default fast)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply all stream volumes (e.g. 200 for a "
                             "paper-scale ~20k-sample day)")

    commands = parser.add_subparsers(dest="command", required=True)

    process = commands.add_parser(
        "process-day", help="run the pipeline over one synthetic day")
    process.add_argument("--date", type=_parse_date,
                         default=datetime.date(2014, 8, 5))

    scan = commands.add_parser(
        "scan", help="compile signatures on one day, scan another")
    scan.add_argument("--train-date", type=_parse_date,
                      default=datetime.date(2014, 8, 5))
    scan.add_argument("--scan-date", type=_parse_date,
                      default=datetime.date(2014, 8, 6))

    evaluate = commands.add_parser(
        "evaluate", help="run the month-long Kizzle-vs-AV evaluation")
    evaluate.add_argument("--days", type=int, default=7,
                          help="number of August 2014 days to simulate")
    return parser


def _stream_config(args: argparse.Namespace) -> StreamConfig:
    config = StreamConfig(
        benign_per_day=args.benign,
        kit_daily_counts={"angler": args.angler, "nuclear": args.nuclear,
                          "sweetorange": args.sweetorange, "rig": args.rig},
        seed=args.seed)
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    return config


def _incremental_config(args: argparse.Namespace) -> IncrementalConfig:
    return IncrementalConfig(
        enabled=args.incremental,
        shed_known=not args.no_shed,
        carry_forward=not args.no_carry_forward,
        scan_mode=args.scan_mode)


def _engine_config(args: argparse.Namespace) -> DistanceEngineConfig:
    return DistanceEngineConfig(
        workers=args.workers,
        length_filter=not args.no_length_filter,
        bag_filter=not args.no_bag_filter,
        qgram_filter=not args.no_qgram_filter,
        cache_size=args.distance_cache)


def _backend_config(args: argparse.Namespace) -> BackendConfig:
    # machines/workers flow through the backend config; the unset fields
    # (seed) inherit the pipeline values via KizzleConfig.resolved_backend.
    # The cluster-only fields are inert on other backends; spawn_workers is
    # zeroed for them so its default never implies subprocesses elsewhere.
    return BackendConfig(kind=args.backend, machines=args.machines,
                         workers=args.workers,
                         partition_parallel=args.partition_parallel,
                         listen=args.listen,
                         spawn_workers=args.spawn_workers
                         if args.backend == "cluster" else 0,
                         secret=args.cluster_secret,
                         affinity=args.affinity)


def _kizzle_config(args: argparse.Namespace) -> KizzleConfig:
    return KizzleConfig(machines=args.machines,
                        distance=_engine_config(args),
                        incremental=_incremental_config(args),
                        backend=_backend_config(args))


def _seeded_kizzle(generator: TelemetryGenerator,
                   args: argparse.Namespace,
                   seed_date: datetime.date) -> Kizzle:
    kizzle = Kizzle(_kizzle_config(args))
    for kit in DEFAULT_KITS:
        kizzle.seed_known_kit(kit, [generator.reference_core(kit, seed_date)])
    return kizzle


def command_process_day(args: argparse.Namespace, out) -> int:
    generator = TelemetryGenerator(_stream_config(args))
    # The context manager drains the backend on exit: pooled workers are
    # released, and a cluster run's spawned worker subprocesses are reaped.
    with _seeded_kizzle(generator, args,
                        args.date - datetime.timedelta(days=7)) as kizzle:
        batch = generator.generate_day(args.date)
        result = kizzle.process_day(
            [(sample.sample_id, sample.content) for sample in batch.samples],
            args.date)
    print(f"{args.date}: {result.sample_count} samples, "
          f"{result.cluster_count} clusters "
          f"({len(result.malicious_clusters)} malicious), "
          f"{result.noise_count} noise, "
          f"{len(result.new_signatures)} new signatures", file=out)
    stage_walls = " ".join(f"{stage}={seconds:.2f}s"
                           for stage, seconds in result.stage_walls.items())
    print(f"  backend={result.backend}  {stage_walls}", file=out)
    if result.shed_count:
        by_kit = ", ".join(f"{kit}: {count}" for kit, count
                           in sorted(result.shed_by_kit().items()))
        print(f"  shed {result.shed_count} known samples ({by_kit})",
              file=out)
    for report in result.clusters:
        verdict = report.kit or "benign"
        print(f"  cluster size={report.size:3d} -> {verdict} "
              f"(overlap {report.label.overlap:.2f})", file=out)
    for signature in result.new_signatures:
        print(f"  signature [{signature.kit}] {signature.length} chars",
              file=out)
    return 0


def command_scan(args: argparse.Namespace, out) -> int:
    generator = TelemetryGenerator(_stream_config(args))
    with _seeded_kizzle(generator, args,
                        args.train_date
                        - datetime.timedelta(days=7)) as kizzle:
        train_batch = generator.generate_day(args.train_date)
        kizzle.process_day(
            [(s.sample_id, s.content) for s in train_batch.samples],
            args.train_date)

        from repro.scanner.avbaseline import SimulatedCommercialAV

        av = SimulatedCommercialAV(timeline=generator.timeline)
        scan_batch = generator.generate_day(args.scan_date)
        rows = []
        for kit, samples in sorted(scan_batch.by_kit().items()):
            kizzle_hits = sum(1 for s in samples if kizzle.detects(s.content))
            av_hits = sum(1 for s in samples
                          if av.scan(s.sample_id, s.content,
                                     as_of=args.scan_date).detected)
            rows.append((kit, len(samples), kizzle_hits, av_hits))
        print(f"scanning {args.scan_date} with signatures compiled on "
              f"{args.train_date}:", file=out)
        for kit, total, kizzle_hits, av_hits in rows:
            print(f"  {kit:12s} {kizzle_hits:3d}/{total:<3d} (Kizzle)   "
                  f"{av_hits:3d}/{total:<3d} (AV)", file=out)
        benign_fp = sum(1 for s in scan_batch.benign
                        if kizzle.detects(s.content))
        print(f"  benign false positives (Kizzle): {benign_fp}", file=out)
    return 0


def command_evaluate(args: argparse.Namespace, out) -> int:
    start = datetime.date(2014, 8, 1)
    end = start + datetime.timedelta(days=max(1, args.days) - 1)
    config = ExperimentConfig(start=start, end=end, seed_days=3,
                              stream=_stream_config(args),
                              kizzle=_kizzle_config(args))
    with MonthExperiment(config) as experiment:
        report = experiment.run()
    fn = report.fn_series()
    print(format_day_series(fn["dates"], {"Kizzle FN": fn["kizzle"],
                                          "AV FN": fn["av"]},
                            title="False negatives per day"), file=out)
    print("", file=out)
    print(format_absolute_counts(report.ground_truth.kit_totals(),
                                 report.av_counts(), report.kizzle_counts()),
          file=out)
    rates = report.overall_rates()
    print(f"\nKizzle FP {rates['kizzle_fp_rate']:.3%} / "
          f"FN {rates['kizzle_fn_rate']:.3%}; "
          f"AV FP {rates['av_fp_rate']:.3%} / FN {rates['av_fn_rate']:.3%}",
          file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "process-day":
        return command_process_day(args, out)
    if args.command == "scan":
        return command_scan(args, out)
    if args.command == "evaluate":
        return command_evaluate(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
