"""Failure-injection and robustness tests.

A production grayware pipeline sees truncated captures, hostile input crafted
to break parsers, byte noise and outright garbage every day.  These tests
feed damaged and adversarial samples through each stage and check that the
pipeline degrades gracefully (skips, labels benign, or reports an error)
instead of crashing or mislabeling.
"""

from __future__ import annotations

import datetime
import random

import pytest

from repro import Kizzle, KizzleConfig
from repro.clustering import ClusteredSample, DistributedClusterer
from repro.distsim import SimCluster
from repro.ekgen import TelemetryGenerator, StreamConfig
from repro.jstoken import abstract_token_string, tokenize
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures import SignatureCompiler
from repro.unpack import default_registry

D = datetime.date(2014, 8, 5)


def truncate(content: str, fraction: float) -> str:
    return content[:int(len(content) * fraction)]


class TestTruncatedSamples:
    @pytest.fixture(scope="class")
    def kit_sample(self, kits):
        return kits["nuclear"].generate(D, random.Random(1)).content

    @pytest.mark.parametrize("fraction", [0.9, 0.5, 0.1, 0.01])
    def test_tokenizer_survives_truncation(self, kit_sample, fraction):
        tokens = tokenize(truncate(kit_sample, fraction))
        assert isinstance(tokens, list)

    @pytest.mark.parametrize("fraction", [0.9, 0.5, 0.1])
    def test_normalizer_survives_truncation(self, kit_sample, fraction):
        assert isinstance(normalize_for_scan(truncate(kit_sample, fraction)),
                          str)

    @pytest.mark.parametrize("fraction", [0.6, 0.3])
    def test_unpack_registry_does_not_crash_on_truncation(self, kit_sample,
                                                          fraction):
        payload, applied = default_registry().unpack(
            truncate(kit_sample, fraction))
        # Either the unpacker still recovers something or it leaves the
        # sample alone; it must not raise.
        assert isinstance(payload, str)
        assert isinstance(applied, list)


class TestHostileInputs:
    HOSTILE = [
        "",
        "   \n\t  ",
        "<html><body>no scripts at all</body></html>",
        "<script>" + "(" * 2000 + "</script>",
        "<script>var a = \"" + "\\" * 999 + "\";</script>",
        "<script>/* unterminated comment " + "x" * 500 + "</script>",
        "\x00\x01\x02 binary garbage \xff\xfe",
        "<script>var πυ = 'unicode identifiers';</script>",
        "<script>" + "a=1;" * 5000 + "</script>",
    ]

    @pytest.mark.parametrize("content", HOSTILE)
    def test_tokenizer_handles_hostile_input(self, content):
        tokens = abstract_token_string(content)
        assert isinstance(tokens, tuple)

    @pytest.mark.parametrize("content", HOSTILE)
    def test_scanner_normalization_handles_hostile_input(self, content):
        assert isinstance(normalize_for_scan(content), str)

    @pytest.mark.parametrize("content", HOSTILE)
    def test_unpackers_ignore_hostile_input(self, content):
        payload, applied = default_registry().unpack(content)
        assert applied == []
        assert payload == content

    def test_signature_compiler_rejects_degenerate_cluster(self):
        compiler = SignatureCompiler()
        assert compiler.compile_cluster(["", ""], "x", D) is None
        assert compiler.compile_cluster(["<p>html only</p>"] * 3, "x", D) is None


class TestPipelineWithDamagedBatch:
    def test_pipeline_survives_mixed_damage(self, kits):
        """A daily batch containing truncated kit samples, empty documents
        and binary noise still processes end to end."""
        generator = TelemetryGenerator(StreamConfig(
            benign_per_day=6, kit_daily_counts={"angler": 5}, seed=3))
        batch = generator.generate_day(D)
        samples = [(sample.sample_id, sample.content)
                   for sample in batch.samples]
        samples.append(("truncated",
                        truncate(batch.malicious[0].content, 0.4)))
        samples.append(("empty", ""))
        samples.append(("garbage", "\x00\xff not javascript at all \x7f"))
        samples.append(("htmlonly", "<html><body><p>hi</p></body></html>"))

        kizzle = Kizzle(KizzleConfig(machines=4, min_points=3))
        kizzle.seed_known_kit(
            "angler", [generator.reference_core("angler", D)])
        result = kizzle.process_day(samples, D)
        assert result.sample_count == len(samples)
        # The damaged samples do not poison the clusters: the angler cluster
        # is still found and labeled.
        assert any(report.kit == "angler"
                   for report in result.malicious_clusters)

    def test_clusterer_isolates_empty_token_strings(self):
        samples = [ClusteredSample(sample_id=str(i), content="", tokens=())
                   for i in range(5)]
        samples += [ClusteredSample(sample_id=f"x{i}", content="var a;",
                                    tokens=("var", "Identifier", ";"))
                    for i in range(5)]
        clusterer = DistributedClusterer(
            min_points=3, sim_cluster=SimCluster(machine_count=2))
        clusters, _report = clusterer.run(samples, partitions=1)
        # Both groups are internally identical, so both may cluster, but the
        # empty and non-empty groups never merge.
        for cluster in clusters:
            token_sets = {sample.tokens for sample in cluster.samples}
            assert len(token_sets) == 1

    def test_corrupted_sample_does_not_become_false_positive(self, kits):
        """A malicious sample damaged beyond recognition must not cause the
        benign-vs-malicious decision to flip for unrelated benign clusters."""
        generator = TelemetryGenerator(StreamConfig(
            benign_per_day=9, kit_daily_counts={"nuclear": 4}, seed=8))
        batch = generator.generate_day(D)
        kizzle = Kizzle(KizzleConfig(machines=2, min_points=3))
        kizzle.seed_known_kit("nuclear",
                              [generator.reference_core("nuclear", D)])
        samples = [(sample.sample_id, sample.content)
                   for sample in batch.samples]
        samples.append(("mangled", batch.malicious[0].content.replace("var", "vrr")[:800]))
        result = kizzle.process_day(samples, D)
        for report in result.benign_clusters:
            assert report.signature is None
