"""Tests for DBSCAN, partitioning, merging and prototype selection."""

from __future__ import annotations

import random

import pytest

from repro.clustering import (
    Cluster,
    ClusteredSample,
    DBSCAN,
    DistributedClusterer,
    NOISE,
    cluster_partition,
    medoid_index,
    merge_clusters,
    partition_samples,
    select_prototype,
)
from repro.distsim import SimCluster
from repro.jstoken import abstract_token_string


def token_point(text: str):
    return tuple(text)


class TestDBSCAN:
    def test_two_obvious_clusters(self):
        group_a = [token_point("aaaaaaaaaa")] * 4
        group_b = [token_point("bbbbbbbbbb")] * 4
        result = DBSCAN(epsilon=0.10, min_points=3).fit(group_a + group_b)
        assert result.cluster_count == 2
        labels_a = {result.labels[i] for i in range(4)}
        labels_b = {result.labels[i] for i in range(4, 8)}
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_noise_points(self):
        cluster = [token_point("cccccccccc")] * 5
        outlier = [token_point("zzzzzzzzyyyyxxxx")]
        result = DBSCAN(epsilon=0.10, min_points=3).fit(cluster + outlier)
        assert result.labels[-1] == NOISE
        assert result.cluster_count == 1

    def test_small_group_below_min_points_is_noise(self):
        points = [token_point("dddddddddd")] * 2
        result = DBSCAN(epsilon=0.10, min_points=3).fit(points)
        assert result.cluster_count == 0
        assert all(label == NOISE for label in result.labels)

    def test_duplicates_count_toward_density(self):
        """A large group of identical samples must form a cluster even though
        there is only one unique point."""
        points = [token_point("eeeeeeeeee")] * 50
        result = DBSCAN(epsilon=0.10, min_points=3).fit(points)
        assert result.cluster_count == 1
        assert all(label == 0 for label in result.labels)

    def test_near_duplicates_cluster_together(self):
        base = "abcdefghijklmnopqrst"
        variant = "abcdefghijklmnopqrsX"  # one substitution in 20 -> 0.05
        points = [token_point(base)] * 3 + [token_point(variant)] * 3
        result = DBSCAN(epsilon=0.10, min_points=3).fit(points)
        assert result.cluster_count == 1

    def test_far_points_do_not_merge(self):
        base = "abcdefghijklmnopqrst"
        distant = "abcdeXXXXXXXXXXpqrst"  # 10 substitutions -> 0.5
        points = [token_point(base)] * 3 + [token_point(distant)] * 3
        result = DBSCAN(epsilon=0.10, min_points=3).fit(points)
        assert result.cluster_count == 2

    def test_empty_input(self):
        result = DBSCAN().fit([])
        assert result.labels == []
        assert result.cluster_count == 0

    def test_members_mapping(self):
        points = [token_point("ffffffffff")] * 3 + [token_point("gggggggggggggggggggg")]
        result = DBSCAN(epsilon=0.10, min_points=3).fit(points)
        members = result.members()
        assert set(members[0]) == {0, 1, 2}
        assert members[NOISE] == [3]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DBSCAN(epsilon=1.5)
        with pytest.raises(ValueError):
            DBSCAN(min_points=0)

    def test_comparisons_reported(self):
        points = [token_point("hhhhhhhhhh")] * 3 + [token_point("iiiiiiiiii")] * 3
        result = DBSCAN(epsilon=0.10, min_points=2).fit(points)
        assert result.comparisons > 0

    def test_kit_samples_cluster_by_family(self, kits, august_day):
        """Packed samples of different kits land in different clusters."""
        points = []
        for index, name in enumerate(["rig", "nuclear", "sweetorange"]):
            for sample_index in range(3):
                sample = kits[name].generate(
                    august_day, random.Random(index * 10 + sample_index))
                points.append(abstract_token_string(sample.content))
        result = DBSCAN(epsilon=0.10, min_points=3).fit(points)
        assert result.cluster_count == 3
        assert len({result.labels[0], result.labels[3], result.labels[6]}) == 3


class TestPartitioning:
    def make_samples(self, count):
        return [ClusteredSample(sample_id=f"s{i}", content="var a = 1;",
                                tokens=("var", "Identifier", "=", "String", ";"))
                for i in range(count)]

    def test_partition_sizes_balanced(self):
        buckets = partition_samples(self.make_samples(20), 4, seed=1)
        assert sum(len(bucket) for bucket in buckets) == 20
        assert all(len(bucket) == 5 for bucket in buckets)

    def test_partition_deterministic(self):
        samples = self.make_samples(10)
        a = partition_samples(samples, 3, seed=7)
        b = partition_samples(samples, 3, seed=7)
        assert [[s.sample_id for s in bucket] for bucket in a] == \
            [[s.sample_id for s in bucket] for bucket in b]

    def test_partition_invalid(self):
        with pytest.raises(ValueError):
            partition_samples(self.make_samples(3), 0)

    def test_more_partitions_than_samples(self):
        buckets = partition_samples(self.make_samples(2), 10)
        assert len(buckets) == 2

    def test_cluster_partition_returns_clusters_and_cost(self):
        samples = self.make_samples(6)
        clusters, comparisons = cluster_partition(samples, min_points=3)
        assert len(clusters) == 1
        assert clusters[0].size == 6
        assert comparisons >= 0

    def test_cluster_partition_empty(self):
        assert cluster_partition([]) == ([], 0)

    def test_clustered_sample_from_content(self):
        sample = ClusteredSample.from_content("id1", "var a = f(1);")
        assert sample.tokens[0] == "var"

    def test_ensure_tokens_idempotent(self):
        sample = ClusteredSample(sample_id="x", content="var a;")
        prepared = sample.ensure_tokens()
        assert prepared.tokens
        assert prepared.ensure_tokens() is prepared


class TestMerge:
    def make_cluster(self, cluster_id, text, count):
        samples = [ClusteredSample(sample_id=f"{cluster_id}-{i}", content=text,
                                   tokens=tuple(text)) for i in range(count)]
        return Cluster(cluster_id=cluster_id, samples=samples)

    def test_merge_identical_prototypes(self):
        a = self.make_cluster(0, "aaaaaaaaaa", 3)
        b = self.make_cluster(1, "aaaaaaaaaa", 4)
        merged, comparisons = merge_clusters([[a], [b]], epsilon=0.10)
        assert len(merged) == 1
        assert merged[0].size == 7
        assert comparisons == 1

    def test_merge_keeps_distinct_clusters_apart(self):
        a = self.make_cluster(0, "aaaaaaaaaa", 3)
        b = self.make_cluster(1, "bbbbbbbbbb", 3)
        merged, _ = merge_clusters([[a], [b]], epsilon=0.10)
        assert len(merged) == 2

    def test_merge_empty(self):
        assert merge_clusters([]) == ([], 0)

    def test_merged_ids_are_dense(self):
        clusters = [[self.make_cluster(i, "c" * 10 + str(i), 3)]
                    for i in range(4)]
        merged, _ = merge_clusters(clusters, epsilon=0.05)
        assert sorted(c.cluster_id for c in merged) == list(range(len(merged)))


class TestPrototypes:
    def test_medoid_of_single(self):
        assert medoid_index([tuple("abc")]) == 0

    def test_medoid_prefers_central_point(self):
        points = [tuple("aaaaaaaaaa"), tuple("aaaaaaaaab"), tuple("aaaaaaaabb"),
                  tuple("zzzzzzzzzz")]
        assert medoid_index(points) in (0, 1)

    def test_medoid_empty_raises(self):
        with pytest.raises(ValueError):
            medoid_index([])

    def test_select_prototype_small(self):
        points = [tuple("abcabcabc")] * 5
        assert select_prototype(points) in range(5)

    def test_select_prototype_large_uses_subsample(self):
        points = [tuple("abcabcabc")] * 100 + [tuple("xyzxyzxyz")]
        index = select_prototype(points, seed=3)
        assert points[index] == tuple("abcabcabc")

    def test_select_prototype_empty_raises(self):
        with pytest.raises(ValueError):
            select_prototype([])


class TestDistributedClusterer:
    def test_end_to_end_with_kit_samples(self, kits, august_day):
        samples = []
        for index, name in enumerate(["rig", "nuclear"]):
            for sample_index in range(4):
                generated = kits[name].generate(
                    august_day, random.Random(index * 100 + sample_index))
                samples.append(ClusteredSample.from_content(
                    generated.sample_id, generated.content))
        clusterer = DistributedClusterer(
            epsilon=0.10, min_points=3,
            sim_cluster=SimCluster(machine_count=4))
        clusters, report = clusterer.run(samples, partitions=2)
        assert len(clusters) == 2
        assert report.total_time > 0
        assert report.machine_count == 4

    def test_partition_count_adapts_to_small_batches(self):
        samples = [ClusteredSample(sample_id=str(i), content="var a;",
                                   tokens=("var", "Identifier", ";"))
                   for i in range(10)]
        clusterer = DistributedClusterer(
            min_points=3, sim_cluster=SimCluster(machine_count=50))
        clusters, report = clusterer.run(samples)
        assert report.partitions == 1
        assert len(clusters) == 1
        assert clusters[0].size == 10
