"""Tests for the JavaScript lexer."""

from __future__ import annotations

import pytest

from repro.jstoken import Lexer, LexerError, Token, TokenClass, tokenize


def classes(source, **kwargs):
    return [token.cls for token in tokenize(source, **kwargs)]


def values(source, **kwargs):
    return [token.value for token in tokenize(source, **kwargs)]


class TestBasicTokens:
    def test_keyword_identifier_punctuation(self):
        tokens = tokenize("var x = y;")
        assert [t.cls for t in tokens] == [
            TokenClass.KEYWORD, TokenClass.IDENTIFIER, TokenClass.PUNCTUATION,
            TokenClass.IDENTIFIER, TokenClass.PUNCTUATION]
        assert [t.value for t in tokens] == ["var", "x", "=", "y", ";"]

    def test_all_keywords_recognized(self):
        for keyword in ("function", "return", "typeof", "new", "this",
                        "true", "false", "null", "while", "for"):
            tokens = tokenize(keyword)
            assert tokens[0].cls is TokenClass.KEYWORD

    def test_identifier_with_dollar_and_underscore(self):
        tokens = tokenize("var $a_b9 = 1;")
        assert tokens[1].cls is TokenClass.IDENTIFIER
        assert tokens[1].value == "$a_b9"

    def test_empty_source(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \t\n\r  ") == []

    def test_positions_and_lines(self):
        tokens = tokenize("var a;\nvar b;")
        assert tokens[0].line == 1
        assert tokens[3].line == 2
        assert tokens[0].position == 0
        assert tokens[3].position == 7

    def test_paper_figure8_example(self):
        """The tokenization example of Figure 8."""
        source = 'var Euur1V = this["l9D"]("ev#333399al");'
        tokens = tokenize(source)
        expected = [
            (TokenClass.KEYWORD, "var"),
            (TokenClass.IDENTIFIER, "Euur1V"),
            (TokenClass.PUNCTUATION, "="),
            (TokenClass.KEYWORD, "this"),
            (TokenClass.PUNCTUATION, "["),
            (TokenClass.STRING, '"l9D"'),
            (TokenClass.PUNCTUATION, "]"),
            (TokenClass.PUNCTUATION, "("),
            (TokenClass.STRING, '"ev#333399al"'),
            (TokenClass.PUNCTUATION, ")"),
            (TokenClass.PUNCTUATION, ";"),
        ]
        assert [(t.cls, t.value) for t in tokens] == expected


class TestStrings:
    def test_double_quoted(self):
        tokens = tokenize('x = "hello world";')
        assert tokens[2].cls is TokenClass.STRING
        assert tokens[2].value == '"hello world"'

    def test_single_quoted(self):
        tokens = tokenize("x = 'abc';")
        assert tokens[2].cls is TokenClass.STRING
        assert tokens[2].value == "'abc'"

    def test_escaped_quotes_inside_string(self):
        tokens = tokenize(r'x = "a\"b";')
        assert tokens[2].value == r'"a\"b"'

    def test_backslash_escapes(self):
        tokens = tokenize(r'x = "line\nnext\\";')
        assert tokens[2].cls is TokenClass.STRING

    def test_unterminated_string_recovers_by_default(self):
        tokens = tokenize('x = "abc\nvar y = 1;')
        assert TokenClass.STRING in [t.cls for t in tokens]
        # the following line still tokenizes
        assert "y" in [t.value for t in tokens]

    def test_unterminated_string_strict_raises(self):
        with pytest.raises(LexerError):
            tokenize('x = "abc', strict=True)

    def test_template_literal(self):
        tokens = tokenize("x = `tpl ${y}`;")
        assert TokenClass.TEMPLATE in [t.cls for t in tokens]

    def test_empty_string(self):
        tokens = tokenize('x = "";')
        assert tokens[2].value == '""'


class TestNumbers:
    @pytest.mark.parametrize("literal", ["0", "42", "3.14", ".5", "1e10",
                                         "2.5e-3", "0x1F", "0b101", "0o17"])
    def test_number_literals(self, literal):
        tokens = tokenize(f"x = {literal};")
        assert tokens[2].cls is TokenClass.NUMBER
        assert tokens[2].value == literal

    def test_number_followed_by_dot_method(self):
        tokens = tokenize("x = 5 .toString();")
        assert tokens[2].cls is TokenClass.NUMBER


class TestComments:
    def test_line_comment_dropped_by_default(self):
        tokens = tokenize("var a; // comment here\nvar b;")
        assert all(t.cls is not TokenClass.COMMENT for t in tokens)
        assert "b" in [t.value for t in tokens]

    def test_block_comment_dropped(self):
        tokens = tokenize("var a; /* multi\nline */ var b;")
        assert all(t.cls is not TokenClass.COMMENT for t in tokens)

    def test_comments_kept_when_requested(self):
        tokens = tokenize("var a; // note", keep_comments=True)
        assert tokens[-1].cls is TokenClass.COMMENT

    def test_unterminated_block_comment_strict(self):
        with pytest.raises(LexerError):
            tokenize("/* never ends", strict=True, keep_comments=True)

    def test_unterminated_block_comment_lenient(self):
        tokens = tokenize("/* never ends", keep_comments=True)
        assert tokens[0].cls is TokenClass.COMMENT


class TestRegexLiterals:
    def test_regex_at_start(self):
        tokens = tokenize("/abc/.test(x)")
        assert tokens[0].cls is TokenClass.REGEX

    def test_regex_after_assignment(self):
        tokens = tokenize("var re = /a[0-9]+b/gi;")
        regexes = [t for t in tokens if t.cls is TokenClass.REGEX]
        assert len(regexes) == 1
        assert regexes[0].value == "/a[0-9]+b/gi"

    def test_division_not_regex(self):
        tokens = tokenize("x = a / b / c;")
        assert all(t.cls is not TokenClass.REGEX for t in tokens)

    def test_regex_with_slash_in_class(self):
        tokens = tokenize("var re = /a[/]b/;")
        regexes = [t for t in tokens if t.cls is TokenClass.REGEX]
        assert regexes and regexes[0].value == "/a[/]b/"

    def test_regex_after_return(self):
        tokens = tokenize("return /x/;")
        assert tokens[1].cls is TokenClass.REGEX

    def test_division_after_closing_paren(self):
        tokens = tokenize("(a + b) / 2")
        assert all(t.cls is not TokenClass.REGEX for t in tokens)


class TestPunctuators:
    @pytest.mark.parametrize("op", ["===", "!==", "<<=", ">>>", "&&", "||",
                                    "=>", "++", "--", "+=", "**"])
    def test_multichar_operators_single_token(self, op):
        tokens = tokenize(f"a {op} b")
        assert op in [t.value for t in tokens]

    def test_greedy_matching(self):
        tokens = tokenize("a===b")
        assert [t.value for t in tokens] == ["a", "===", "b"]

    def test_unknown_character_is_tolerated(self):
        tokens = tokenize("var a = 1; § var b = 2;")
        assert "b" in [t.value for t in tokens]


class TestRobustness:
    def test_obfuscated_kit_snippet(self):
        """The Nuclear-style obfuscated snippet from Figure 4(b) lexes."""
        source = '''
        getter = function(a){ return a; };
        thiscopy = this;
        doc = thiscopy[thiscopy["getter"]("document")]
        evl = thiscopy["getter"]("ev #333366 al")
        thiscopy[win["replace"](bgc ,"")][evl["replace"](bgc , "")](payload);
        '''
        tokens = tokenize(source)
        assert len(tokens) > 40
        strings = [t.value for t in tokens if t.cls is TokenClass.STRING]
        assert '"ev #333366 al"' in strings

    def test_very_long_string(self):
        long_literal = '"' + "a" * 100000 + '"'
        tokens = tokenize(f"var x = {long_literal};")
        assert tokens[3].cls is TokenClass.STRING
        assert len(tokens[3].value) == 100002

    def test_lexer_is_streaming(self):
        lexer = Lexer("var a = 1;")
        iterator = lexer.tokens()
        first = next(iterator)
        assert first.value == "var"

    def test_token_str_representation(self):
        token = Token(cls=TokenClass.IDENTIFIER, value="abc")
        assert "abc" in str(token)

    def test_is_significant(self):
        comment = Token(cls=TokenClass.COMMENT, value="// x")
        ident = Token(cls=TokenClass.IDENTIFIER, value="x")
        assert not comment.is_significant()
        assert ident.is_significant()
