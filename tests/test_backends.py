"""Tests for the pluggable execution backends (repro.exec).

The load-bearing property: backends change *where* work runs, never *what*
comes out.  On a seeded multi-day stream — warm and cold — the serial,
process and distsim backends must produce byte-identical cluster labels,
signatures and per-day FP/FN.  The process pool must additionally be
deterministic across worker counts (the per-chunk RNG seeding bugfix).
"""

from __future__ import annotations

import datetime

import pytest

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.distance.engine import DistanceEngineConfig
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.exec import (
    BACKEND_KINDS,
    BackendConfig,
    DistsimBackend,
    ProcessBackend,
    SerialBackend,
    create_backend,
)
from repro.exec.process import ProcessPairExecutor, SerialPairExecutor, \
    chunk_seed

D = datetime.date
KITS = ("nuclear", "angler", "rig", "sweetorange")


# ----------------------------------------------------------------------
# configuration and factory
# ----------------------------------------------------------------------
class TestBackendConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BackendConfig(kind="gpu")

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            BackendConfig(machines=0)
        with pytest.raises(ValueError):
            BackendConfig(workers=-1)

    def test_resolved_fills_unset_fields_only(self):
        config = BackendConfig(kind="process", machines=8)
        resolved = config.resolved(machines=50, workers=4, seed=7)
        assert resolved.machines == 8      # explicitly set: kept
        assert resolved.workers == 4       # inherited
        assert resolved.seed == 7          # inherited

    def test_kizzle_config_resolves_backend(self):
        config = KizzleConfig(machines=12, seed=3,
                              distance=DistanceEngineConfig(workers=2))
        resolved = config.resolved_backend()
        assert resolved.kind == "distsim"
        assert resolved.machines == 12
        assert resolved.workers == 2
        assert resolved.seed == 3

    def test_factory_returns_each_kind(self):
        kinds = {kind: type(create_backend(BackendConfig(kind=kind)))
                 for kind in BACKEND_KINDS}
        assert kinds == {"serial": SerialBackend,
                         "process": ProcessBackend,
                         "distsim": DistsimBackend}

    def test_serial_backend_forces_single_worker_engine(self):
        backend = create_backend(BackendConfig(kind="serial"))
        engine_config = backend.engine_config(DistanceEngineConfig(workers=8))
        assert engine_config.workers == 1
        assert backend.pair_executor() is None

    def test_process_and_distsim_supply_pool_executor(self):
        for kind in ("process", "distsim"):
            backend = create_backend(BackendConfig(kind=kind, seed=5))
            executor = backend.pair_executor()
            assert isinstance(executor, ProcessPairExecutor)
            assert executor.seed == 5

    def test_clusterer_machine_count_is_backend_invariant(self):
        """The logical machine count (which sets the default partition
        count, and therefore shapes clustering output) must come from the
        configured value on every backend kind, not from the substrate."""
        from repro.clustering.partition import DistributedClusterer

        counts = {
            kind: DistributedClusterer(
                backend=create_backend(
                    BackendConfig(kind=kind, machines=10))).machines
            for kind in BACKEND_KINDS}
        assert counts == {"serial": 10, "process": 10, "distsim": 10}

    def test_zero_cost_stage_charges_nothing(self):
        """A stage that did no work must not bill scheduler startup
        latency on the simulated pool (matching charge_stage semantics)."""
        from repro.distsim.mapreduce import MapReduceReport

        backend = create_backend(BackendConfig(kind="distsim", machines=4))
        report = MapReduceReport(machine_count=4, partitions=1,
                                 scatter_time=0.0, map_time=0.0,
                                 gather_time=0.0, reduce_time=0.0)
        assert backend.simulate_stage(report, "shed", 0.0) == 0.0
        assert report.stage_seconds["shed"] == 0.0
        assert "shed" not in report.stage_utilization
        assert backend.simulate_stage(report, "shed", 1e6) > 0.0


# ----------------------------------------------------------------------
# deterministic worker seeding
# ----------------------------------------------------------------------
class TestChunkSeeding:
    def test_chunk_seed_depends_on_chunk_not_worker(self):
        assert chunk_seed(1, 0) != chunk_seed(1, 1)
        assert chunk_seed(1, 0) != chunk_seed(2, 0)
        assert chunk_seed(9, 4) == chunk_seed(9, 4)

    def test_serial_and_pool_executors_agree(self):
        config = DistanceEngineConfig(shared_cache=False, cache_size=0,
                                      workers=2, chunk_size=2, seed=11)
        points = [tuple("aaaaaaaaaa"), tuple("aaaaaaaaab"),
                  tuple("zzzzzzzzzz"), tuple("aaaaabaaab"),
                  tuple("qqqqqqqqqq"), tuple("qqqqqqqqqr")]
        pairs = [(i, j) for i in range(len(points))
                 for j in range(i + 1, len(points))]
        chunks = [pairs[start:start + 2] for start in range(0, len(pairs), 2)]
        serial = [decision
                  for result, _ in SerialPairExecutor(seed=11).decide_chunks(
                      points, chunks, 0.2, config)
                  for decision in result]
        pooled = [decision
                  for result, _ in ProcessPairExecutor(seed=11).decide_chunks(
                      points, chunks, 0.2, config)
                  for decision in result]
        assert serial == pooled


# ----------------------------------------------------------------------
# backend equivalence on a seeded multi-day stream
# ----------------------------------------------------------------------
def _generator():
    return TelemetryGenerator(StreamConfig(
        benign_per_day=8,
        kit_daily_counts={"angler": 6, "nuclear": 4, "sweetorange": 4,
                          "rig": 3},
        seed=20140801))


def _run_stream(backend_kind, incremental, days=3, distance=None):
    """Process ``days`` seeded days; return (labels, fp/fn, signatures)."""
    generator = _generator()
    config = KizzleConfig(
        machines=6, min_points=3,
        distance=distance or DistanceEngineConfig(),
        incremental=IncrementalConfig(enabled=incremental),
        backend=BackendConfig(kind=backend_kind))
    kizzle = Kizzle(config)
    for kit in KITS:
        kizzle.seed_known_kit(
            kit, [generator.reference_core(kit, D(2014, 7, 31))])
    day_labels, day_fpfn = [], []
    for offset in range(days):
        date = D(2014, 8, 1) + datetime.timedelta(days=offset)
        batch = generator.generate_day(date)
        result = kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], date)
        assert result.backend == backend_kind
        day_labels.append(sorted(
            (tuple(sorted(sample.sample_id
                          for sample in report.cluster.samples)),
             report.kit)
            for report in result.clusters))
        false_positives = sum(
            1 for sample in batch.benign
            if kizzle.detects(sample.content, as_of=date))
        false_negatives = sum(
            1 for sample in batch.malicious
            if not kizzle.detects(sample.content, as_of=date))
        day_fpfn.append((false_positives, false_negatives))
    signatures = [(s.kit, s.created, s.pattern) for s in kizzle.database]
    return day_labels, day_fpfn, signatures


class TestBackendEquivalence:
    @pytest.mark.slow
    @pytest.mark.parametrize("incremental", [False, True],
                             ids=["cold", "warm"])
    def test_all_backends_byte_identical(self, incremental):
        reference = _run_stream("serial", incremental)
        for kind in ("process", "distsim"):
            labels, fpfn, signatures = _run_stream(kind, incremental)
            assert labels == reference[0], f"{kind} cluster labels diverged"
            assert fpfn == reference[1], f"{kind} FP/FN diverged"
            assert signatures == reference[2], f"{kind} signatures diverged"

    @pytest.mark.slow
    def test_worker_count_does_not_change_signatures(self):
        """Repeated runs with --workers N are byte-identical for any N;
        a tiny parallel threshold forces the pool to actually engage."""
        reference = None
        for workers in (1, 2, 3):
            distance = DistanceEngineConfig(
                workers=workers, parallel_threshold=1, chunk_size=1,
                shared_cache=False)
            result = _run_stream("process", incremental=False, days=2,
                                 distance=distance)
            if reference is None:
                reference = result
            else:
                assert result == reference, \
                    f"workers={workers} diverged from workers=1"

    def test_pool_path_actually_engaged(self):
        """The forced-parallel configuration must exercise the executor,
        otherwise the determinism test above proves nothing."""
        generator = _generator()
        config = KizzleConfig(
            machines=6, min_points=3,
            distance=DistanceEngineConfig(
                workers=2, parallel_threshold=1, chunk_size=1,
                shared_cache=False),
            backend=BackendConfig(kind="process"))
        kizzle = Kizzle(config)
        for kit in KITS:
            kizzle.seed_known_kit(
                kit, [generator.reference_core(kit, D(2014, 7, 31))])
        date = D(2014, 8, 1)
        batch = generator.generate_day(date)
        kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], date)
        assert kizzle.clusterer.engine.stats.executor_pairs > 0


# ----------------------------------------------------------------------
# backend-specific reporting
# ----------------------------------------------------------------------
class TestBackendReports:
    def _warm_result(self, backend_kind):
        generator = _generator()
        config = KizzleConfig(
            machines=6, min_points=3,
            incremental=IncrementalConfig(enabled=True),
            backend=BackendConfig(kind=backend_kind))
        kizzle = Kizzle(config)
        for kit in KITS:
            kizzle.seed_known_kit(
                kit, [generator.reference_core(kit, D(2014, 7, 31))])
        day = D(2014, 8, 5)
        samples = [(s.sample_id, s.content)
                   for s in generator.generate_day(day).samples]
        kizzle.process_day(samples, day)
        return kizzle.process_day(samples, day + datetime.timedelta(days=1))

    def test_distsim_stage_tasks_report_utilization(self):
        result = self._warm_result("distsim")
        timing = result.timing
        assert timing.backend == "distsim"
        assert timing.stage_seconds["shed"] > 0
        # Simulated via real scheduled tasks: utilization is observable.
        assert 0.0 < timing.stage_utilization["shed"] <= 1.0
        assert "util_shed" in timing.summary()

    def test_serial_report_has_no_simulated_network(self):
        result = self._warm_result("serial")
        timing = result.timing
        assert timing.backend == "serial"
        assert timing.machine_count == 1
        assert timing.scatter_time == 0.0 and timing.gather_time == 0.0
        # Stage charging still records virtual seconds for telemetry.
        assert "shed" in timing.stage_seconds
        assert timing.stage_utilization == {}

    def test_process_report_scales_charge_by_workers(self):
        result = self._warm_result("process")
        assert result.timing.backend == "process"
        assert result.timing.machine_count >= 1
