"""Tests for the pluggable execution backends (repro.exec).

The load-bearing property: backends change *where* work runs, never *what*
comes out.  On a seeded multi-day stream — warm and cold — the serial,
process and distsim backends must produce byte-identical cluster labels,
signatures and per-day FP/FN.  The process pool must additionally be
deterministic across worker counts (the per-chunk RNG seeding bugfix).
"""

from __future__ import annotations

import datetime

import pytest

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.distance.engine import DistanceEngineConfig
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.exec import (
    BACKEND_KINDS,
    BackendConfig,
    DistsimBackend,
    ProcessBackend,
    SerialBackend,
    create_backend,
)
from repro.exec.process import ProcessPairExecutor, SerialPairExecutor, \
    chunk_seed

D = datetime.date
KITS = ("nuclear", "angler", "rig", "sweetorange")


# ----------------------------------------------------------------------
# configuration and factory
# ----------------------------------------------------------------------
class TestBackendConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BackendConfig(kind="gpu")

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            BackendConfig(machines=0)
        with pytest.raises(ValueError):
            BackendConfig(workers=-1)

    def test_resolved_fills_unset_fields_only(self):
        config = BackendConfig(kind="process", machines=8)
        resolved = config.resolved(machines=50, workers=4, seed=7)
        assert resolved.machines == 8      # explicitly set: kept
        assert resolved.workers == 4       # inherited
        assert resolved.seed == 7          # inherited

    def test_kizzle_config_resolves_backend(self):
        config = KizzleConfig(machines=12, seed=3,
                              distance=DistanceEngineConfig(workers=2))
        resolved = config.resolved_backend()
        assert resolved.kind == "distsim"
        assert resolved.machines == 12
        assert resolved.workers == 2
        assert resolved.seed == 3

    def test_factory_returns_each_kind(self):
        from repro.exec.cluster import ClusterBackend

        backends = {kind: create_backend(BackendConfig(kind=kind))
                    for kind in BACKEND_KINDS}
        try:
            assert {kind: type(b) for kind, b in backends.items()} == {
                "serial": SerialBackend,
                "process": ProcessBackend,
                "distsim": DistsimBackend,
                "cluster": ClusterBackend}
        finally:
            for backend in backends.values():
                backend.close()

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            BackendConfig(kind="cluster", spawn_workers=-1)
        with pytest.raises(ValueError):
            BackendConfig(kind="cluster", heartbeat_timeout_s=0.0)
        with pytest.raises(ValueError):
            BackendConfig(kind="cluster", task_deadline_s=-1.0)
        with pytest.raises(ValueError):
            BackendConfig(kind="cluster", max_task_retries=-1)

    def test_resolved_preserves_cluster_fields(self):
        config = BackendConfig(kind="cluster", listen="0.0.0.0:7777",
                               spawn_workers=3, task_deadline_s=5.0,
                               heartbeat_timeout_s=2.0, max_task_retries=1,
                               secret="hunter2", affinity=False)
        resolved = config.resolved(machines=50, workers=4, seed=7)
        assert resolved.listen == "0.0.0.0:7777"
        assert resolved.spawn_workers == 3
        assert resolved.task_deadline_s == 5.0
        assert resolved.heartbeat_timeout_s == 2.0
        assert resolved.max_task_retries == 1
        assert resolved.secret == "hunter2"
        assert resolved.affinity is False

    def test_serial_backend_forces_single_worker_engine(self):
        backend = create_backend(BackendConfig(kind="serial"))
        engine_config = backend.engine_config(DistanceEngineConfig(workers=8))
        assert engine_config.workers == 1
        assert backend.pair_executor() is None

    def test_process_and_distsim_supply_pool_executor(self):
        for kind in ("process", "distsim"):
            backend = create_backend(BackendConfig(kind=kind, seed=5))
            executor = backend.pair_executor()
            assert isinstance(executor, ProcessPairExecutor)
            assert executor.seed == 5

    def test_clusterer_machine_count_is_backend_invariant(self):
        """The logical machine count (which sets the default partition
        count, and therefore shapes clustering output) must come from the
        configured value on every backend kind, not from the substrate."""
        from repro.clustering.partition import DistributedClusterer

        backends = {kind: create_backend(BackendConfig(kind=kind,
                                                       machines=10))
                    for kind in BACKEND_KINDS}
        try:
            counts = {kind: DistributedClusterer(backend=backend).machines
                      for kind, backend in backends.items()}
            assert counts == {kind: 10 for kind in BACKEND_KINDS}
        finally:
            for backend in backends.values():
                backend.close()

    def test_zero_cost_stage_charges_nothing(self):
        """A stage that did no work must not bill scheduler startup
        latency on the simulated pool (matching charge_stage semantics)."""
        from repro.distsim.mapreduce import MapReduceReport

        backend = create_backend(BackendConfig(kind="distsim", machines=4))
        report = MapReduceReport(machine_count=4, partitions=1,
                                 scatter_time=0.0, map_time=0.0,
                                 gather_time=0.0, reduce_time=0.0)
        assert backend.simulate_stage(report, "shed", 0.0) == 0.0
        assert report.stage_seconds["shed"] == 0.0
        assert "shed" not in report.stage_utilization
        assert backend.simulate_stage(report, "shed", 1e6) > 0.0

    def test_negative_cost_stage_charges_nothing(self):
        """A (buggy or rounded-below-zero) negative cost takes the same
        short-circuit as zero: no virtual seconds, no utilization entry."""
        from repro.distsim.mapreduce import MapReduceReport

        backend = create_backend(BackendConfig(kind="distsim", machines=4))
        report = MapReduceReport(machine_count=4, partitions=1,
                                 scatter_time=0.0, map_time=0.0,
                                 gather_time=0.0, reduce_time=0.0)
        assert backend.simulate_stage(report, "shed", -5.0) == 0.0
        assert report.stage_seconds["shed"] == 0.0
        assert "shed" not in report.stage_utilization

    def test_stage_seconds_accumulate_and_utilization_averages(self):
        """Repeated charges to one stage accumulate virtual seconds, and
        the recorded utilization is the machine pool's mean (a perfectly
        parallel stage keeps every machine busy most of the makespan)."""
        from repro.distsim.mapreduce import MapReduceReport
        from repro.distsim.scheduler import Scheduler, Task

        backend = create_backend(BackendConfig(kind="distsim", machines=3))
        report = MapReduceReport(machine_count=3, partitions=1,
                                 scatter_time=0.0, map_time=0.0,
                                 gather_time=0.0, reduce_time=0.0)
        first = backend.simulate_stage(report, "shed", 3e6)
        second = backend.simulate_stage(report, "shed", 3e6)
        assert first > 0.0 and second > 0.0
        assert report.stage_seconds["shed"] == pytest.approx(first + second)
        # The recorded value matches an identical schedule's mean
        # utilization exactly (equal shares, same machine count).
        scheduler = Scheduler(3, spec=backend.machine_spec)
        scheduler.run_tasks([
            Task(name=f"shed-{i}", callable=lambda: None, cost=1e6)
            for i in range(3)])
        utilization = scheduler.utilization()
        expected = sum(utilization.values()) / len(utilization)
        assert report.stage_utilization["shed"] == pytest.approx(expected)
        assert 0.0 < report.stage_utilization["shed"] <= 1.0

    def test_distsim_rejects_mismatched_injected_cluster(self):
        """An injected simulated cluster whose size disagrees with the
        config must be rejected, not silently adopted (charge_units would
        desynchronize from the configured machine count)."""
        from repro.distsim.mapreduce import SimCluster

        with pytest.raises(ValueError, match="machines"):
            DistsimBackend(BackendConfig(kind="distsim", machines=10),
                           sim_cluster=SimCluster(machine_count=4))

    def test_distsim_accepts_matching_or_unset_machines(self):
        from repro.distsim.mapreduce import SimCluster

        cluster = SimCluster(machine_count=4)
        matching = DistsimBackend(
            BackendConfig(kind="distsim", machines=4), sim_cluster=cluster)
        assert matching.sim_cluster is cluster
        # machines unset: the backend adopts the injected cluster's size.
        adopted = DistsimBackend(BackendConfig(kind="distsim"),
                                 sim_cluster=cluster)
        assert adopted.charge_units == 4
        legacy = DistsimBackend.from_cluster(cluster, seed=3)
        assert legacy.sim_cluster is cluster
        assert legacy.config.machines == 4


# ----------------------------------------------------------------------
# deterministic worker seeding
# ----------------------------------------------------------------------
class TestChunkSeeding:
    def test_chunk_seed_depends_on_chunk_not_worker(self):
        assert chunk_seed(1, 0) != chunk_seed(1, 1)
        assert chunk_seed(1, 0) != chunk_seed(2, 0)
        assert chunk_seed(9, 4) == chunk_seed(9, 4)

    def test_serial_and_pool_executors_agree(self):
        config = DistanceEngineConfig(shared_cache=False, cache_size=0,
                                      workers=2, chunk_size=2, seed=11)
        points = [tuple("aaaaaaaaaa"), tuple("aaaaaaaaab"),
                  tuple("zzzzzzzzzz"), tuple("aaaaabaaab"),
                  tuple("qqqqqqqqqq"), tuple("qqqqqqqqqr")]
        pairs = [(i, j) for i in range(len(points))
                 for j in range(i + 1, len(points))]
        chunks = [pairs[start:start + 2] for start in range(0, len(pairs), 2)]
        serial = [decision
                  for result, _ in SerialPairExecutor(seed=11).decide_chunks(
                      points, chunks, 0.2, config)
                  for decision in result]
        pooled = [decision
                  for result, _ in ProcessPairExecutor(seed=11).decide_chunks(
                      points, chunks, 0.2, config)
                  for decision in result]
        assert serial == pooled


class TestPairExecutorReentrancy:
    """The serial pair executor is a lazy generator; two engines whose chunk
    iteration interleaves in one process must not clobber each other's
    points/config (the bug: the serial path parked its state in the
    ``_WORKER_*`` module globals that belong to pool workers)."""

    def _batch(self, text_points, chunk_size=1):
        points = [tuple(point) for point in text_points]
        pairs = [(i, j) for i in range(len(points))
                 for j in range(i + 1, len(points))]
        chunks = [pairs[start:start + chunk_size]
                  for start in range(0, len(pairs), chunk_size)]
        return points, chunks

    def test_interleaved_serial_executors_do_not_clobber(self):
        config_a = DistanceEngineConfig(shared_cache=False, cache_size=0)
        # Different qgram size: a clobbered config is visible even when the
        # points happen to agree.
        config_b = DistanceEngineConfig(shared_cache=False, cache_size=0,
                                        qgram_size=2)
        points_a, chunks_a = self._batch(
            ["aaaaaaaaaa", "aaaaaaaaab", "zzzzzzzzzz", "aaaaabaaab"])
        points_b, chunks_b = self._batch(
            ["qqqqqqqqqq", "qqqqqqqqqr", "mmmmmmmmmm", "qqqqqrqqqr"])

        def collect(generator):
            return [decision for result, _ in generator
                    for decision in result]

        expected_a = collect(SerialPairExecutor(seed=1).decide_chunks(
            points_a, chunks_a, 0.2, config_a))
        expected_b = collect(SerialPairExecutor(seed=2).decide_chunks(
            points_b, chunks_b, 0.2, config_b))

        gen_a = SerialPairExecutor(seed=1).decide_chunks(
            points_a, chunks_a, 0.2, config_a)
        gen_b = SerialPairExecutor(seed=2).decide_chunks(
            points_b, chunks_b, 0.2, config_b)
        interleaved_a, interleaved_b = [], []
        for (result_a, _), (result_b, _) in zip(gen_a, gen_b):
            interleaved_a.extend(result_a)
            interleaved_b.extend(result_b)
        assert interleaved_a == expected_a
        assert interleaved_b == expected_b


class TestProcessPairExecutorFallback:
    """``workers <= 1`` or a single chunk must take the serial path and
    produce decisions *and stats* identical to the pooled path."""

    def _decide(self, executor_cls, config, points, chunks, seed=7):
        decisions, stats = [], []
        for chunk_result, chunk_stats in executor_cls(seed=seed).decide_chunks(
                points, chunks, 0.2, config):
            decisions.extend(chunk_result)
            stats.append(chunk_stats)
        return decisions, stats

    def _fixture(self):
        points = [tuple("aaaaaaaaaa"), tuple("aaaaaaaaab"),
                  tuple("zzzzzzzzzz"), tuple("aaaaabaaab"),
                  tuple("qqqqqqqqqq"), tuple("qqqqqqqqqr")]
        pairs = [(i, j) for i in range(len(points))
                 for j in range(i + 1, len(points))]
        chunks = [pairs[start:start + 3] for start in range(0, len(pairs), 3)]
        return points, chunks

    def test_single_worker_falls_back_to_serial_path(self):
        points, chunks = self._fixture()
        single = DistanceEngineConfig(shared_cache=False, cache_size=0,
                                      workers=1)
        pooled = DistanceEngineConfig(shared_cache=False, cache_size=0,
                                      workers=2)
        fallback = self._decide(ProcessPairExecutor, single, points, chunks)
        reference = self._decide(ProcessPairExecutor, pooled, points, chunks)
        assert fallback == reference

    def test_single_chunk_falls_back_to_serial_path(self):
        points, chunks = self._fixture()
        one_chunk = [[pair for chunk in chunks for pair in chunk]]
        config = DistanceEngineConfig(shared_cache=False, cache_size=0,
                                      workers=4)
        fallback = self._decide(ProcessPairExecutor, config, points,
                                one_chunk)
        serial = self._decide(SerialPairExecutor, config, points, one_chunk)
        assert fallback == serial


# ----------------------------------------------------------------------
# backend equivalence on a seeded multi-day stream
# ----------------------------------------------------------------------
def _generator():
    return TelemetryGenerator(StreamConfig(
        benign_per_day=8,
        kit_daily_counts={"angler": 6, "nuclear": 4, "sweetorange": 4,
                          "rig": 3},
        seed=20140801))


def _run_stream(backend_kind, incremental, days=3, distance=None,
                partitions=None, backend_overrides=None, telemetry=None):
    """Process ``days`` seeded days; return (labels, fp/fn, signatures).

    ``backend_overrides`` feeds extra :class:`BackendConfig` fields (the
    cluster runs pass ``spawn_workers``); a ``telemetry`` dict, when given,
    receives the cluster backend's engagement counters before teardown.
    """
    generator = _generator()
    config = KizzleConfig(
        machines=6, min_points=3, partitions=partitions,
        distance=distance or DistanceEngineConfig(),
        incremental=IncrementalConfig(enabled=incremental),
        backend=BackendConfig(kind=backend_kind, **(backend_overrides or {})))
    kizzle = Kizzle(config)
    if backend_kind == "cluster":
        # Pre-tokenized (warm) partitions are tiny here; drop the worth-it
        # threshold so the map still ships to the workers.
        kizzle.clusterer.pooled_partition_min = 1
    try:
        for kit in KITS:
            kizzle.seed_known_kit(
                kit, [generator.reference_core(kit, D(2014, 7, 31))])
        day_labels, day_fpfn = [], []
        for offset in range(days):
            date = D(2014, 8, 1) + datetime.timedelta(days=offset)
            batch = generator.generate_day(date)
            result = kizzle.process_day(
                [(s.sample_id, s.content) for s in batch.samples], date)
            assert result.backend == backend_kind
            day_labels.append(sorted(
                (tuple(sorted(sample.sample_id
                              for sample in report.cluster.samples)),
                 report.kit)
                for report in result.clusters))
            false_positives = sum(
                1 for sample in batch.benign
                if kizzle.detects(sample.content, as_of=date))
            false_negatives = sum(
                1 for sample in batch.malicious
                if not kizzle.detects(sample.content, as_of=date))
            day_fpfn.append((false_positives, false_negatives))
        signatures = [(s.kit, s.created, s.pattern) for s in kizzle.database]
        if telemetry is not None and backend_kind == "cluster":
            telemetry["remote_tasks"] = kizzle.backend.remote_task_count
            telemetry["redispatch"] = kizzle.backend.redispatch_count
            telemetry["tasks_by_worker"] = \
                dict(kizzle.backend.coordinator.tasks_by_worker)
            telemetry["worker_stats"] = {
                worker: stats.as_dict()
                for worker, stats in
                kizzle.clusterer.engine.remote_worker_stats.items()}
    finally:
        kizzle.close()
    if backend_kind == "cluster":
        # Clean shutdown is part of the contract: close() must join every
        # coordinator service/handler thread, not abandon them.
        assert kizzle.backend.coordinator.leaked_threads() == [], \
            "cluster coordinator close() leaked service threads"
    return day_labels, day_fpfn, signatures


class TestBackendEquivalence:
    @pytest.mark.slow
    @pytest.mark.parametrize("incremental", [False, True],
                             ids=["cold", "warm"])
    def test_all_backends_byte_identical(self, incremental):
        reference = _run_stream("serial", incremental)
        for kind in ("process", "distsim"):
            labels, fpfn, signatures = _run_stream(kind, incremental)
            assert labels == reference[0], f"{kind} cluster labels diverged"
            assert fpfn == reference[1], f"{kind} FP/FN diverged"
            assert signatures == reference[2], f"{kind} signatures diverged"

    @pytest.mark.slow
    def test_worker_count_does_not_change_signatures(self):
        """Repeated runs with --workers N are byte-identical for any N;
        a tiny parallel threshold forces the pool to actually engage."""
        reference = None
        for workers in (1, 2, 3):
            distance = DistanceEngineConfig(
                workers=workers, parallel_threshold=1, chunk_size=1,
                shared_cache=False)
            result = _run_stream("process", incremental=False, days=2,
                                 distance=distance)
            if reference is None:
                reference = result
            else:
                assert result == reference, \
                    f"workers={workers} diverged from workers=1"

    @pytest.mark.slow
    @pytest.mark.parametrize("incremental", [False, True],
                             ids=["cold", "warm"])
    def test_cluster_backend_byte_identical(self, incremental):
        """The multi-machine backend joins the identity matrix: two real
        localhost worker subprocesses, same labels/FP-FN/signatures as the
        serial reference — and the tasks demonstrably ran remotely (the
        engagement counters rule out a silent serial fallback)."""
        reference = _run_stream("serial", incremental, partitions=4)
        telemetry = {}
        labels, fpfn, signatures = _run_stream(
            "cluster", incremental, partitions=4,
            backend_overrides=dict(spawn_workers=2, heartbeat_timeout_s=4.0),
            telemetry=telemetry)
        assert labels == reference[0], "cluster labels diverged"
        assert fpfn == reference[1], "cluster FP/FN diverged"
        assert signatures == reference[2], "cluster signatures diverged"
        assert telemetry["remote_tasks"] > 0, \
            "no task executed remotely - the cluster silently fell back " \
            "to inline execution"
        assert sum(telemetry["tasks_by_worker"].values()) == \
            telemetry["remote_tasks"]

    @pytest.mark.slow
    def test_cluster_remote_stats_attributed_per_worker(self):
        """Each accepted remote result attributes its distance-engine work
        to the worker that produced it (cold path: lexing + DBSCAN ran in
        the workers, so every contributing worker shows engine activity)."""
        telemetry = {}
        _run_stream("cluster", incremental=False, days=2, partitions=4,
                    backend_overrides=dict(spawn_workers=2,
                                           heartbeat_timeout_s=4.0),
                    telemetry=telemetry)
        worker_stats = telemetry["worker_stats"]
        assert worker_stats, "no per-worker stats were attributed"
        assert set(worker_stats) == set(telemetry["tasks_by_worker"])
        assert sum(stats["pairs"] for stats in worker_stats.values()) > 0

    def test_pool_path_actually_engaged(self):
        """The forced-parallel configuration must exercise the executor,
        otherwise the determinism test above proves nothing."""
        generator = _generator()
        config = KizzleConfig(
            machines=6, min_points=3,
            distance=DistanceEngineConfig(
                workers=2, parallel_threshold=1, chunk_size=1,
                shared_cache=False),
            backend=BackendConfig(kind="process"))
        kizzle = Kizzle(config)
        for kit in KITS:
            kizzle.seed_known_kit(
                kit, [generator.reference_core(kit, D(2014, 7, 31))])
        date = D(2014, 8, 1)
        batch = generator.generate_day(date)
        kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], date)
        assert kizzle.clusterer.engine.stats.executor_pairs > 0


# ----------------------------------------------------------------------
# backend-specific reporting
# ----------------------------------------------------------------------
class TestBackendReports:
    def _warm_result(self, backend_kind):
        generator = _generator()
        config = KizzleConfig(
            machines=6, min_points=3,
            incremental=IncrementalConfig(enabled=True),
            backend=BackendConfig(kind=backend_kind))
        kizzle = Kizzle(config)
        for kit in KITS:
            kizzle.seed_known_kit(
                kit, [generator.reference_core(kit, D(2014, 7, 31))])
        day = D(2014, 8, 5)
        samples = [(s.sample_id, s.content)
                   for s in generator.generate_day(day).samples]
        kizzle.process_day(samples, day)
        return kizzle.process_day(samples, day + datetime.timedelta(days=1))

    def test_distsim_stage_tasks_report_utilization(self):
        result = self._warm_result("distsim")
        timing = result.timing
        assert timing.backend == "distsim"
        assert timing.stage_seconds["shed"] > 0
        # Simulated via real scheduled tasks: utilization is observable.
        assert 0.0 < timing.stage_utilization["shed"] <= 1.0
        assert "util_shed" in timing.summary()

    def test_serial_report_has_no_simulated_network(self):
        result = self._warm_result("serial")
        timing = result.timing
        assert timing.backend == "serial"
        assert timing.machine_count == 1
        assert timing.scatter_time == 0.0 and timing.gather_time == 0.0
        # Stage charging still records virtual seconds for telemetry.
        assert "shed" in timing.stage_seconds
        assert timing.stage_utilization == {}

    def test_process_report_scales_charge_by_workers(self):
        result = self._warm_result("process")
        assert result.timing.backend == "process"
        assert result.timing.machine_count >= 1
