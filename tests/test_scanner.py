"""Tests for scanner normalization, the scan engine and the AV baseline."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.scanner import (
    ManualSignatureRule,
    ScanEngine,
    SignatureDatabase,
    SimulatedCommercialAV,
    default_av_baseline,
    normalize_for_scan,
)
from repro.signatures import Signature

D = datetime.date


class TestNormalization:
    def test_whitespace_removed(self):
        assert normalize_for_scan("var a   =  1 ;") == "vara=1;"

    def test_quotes_removed(self):
        assert normalize_for_scan('f("abc");') == "f(abc);"
        assert normalize_for_scan("f('xyz');") == "f(xyz);"

    def test_comments_removed(self):
        assert normalize_for_scan("var a; // comment\nvar b;") == "vara;varb;"

    def test_html_scripts_extracted(self):
        document = "<html><script>var a = 'q';</script></html>"
        assert normalize_for_scan(document) == "vara=q;"

    def test_paper_style_normalization(self):
        """Figure 10(b) shows signatures over text like ``varaa=xx.join``."""
        normalized = normalize_for_scan('var aa = xx.join("");')
        assert normalized == "varaa=xx.join();"

    def test_empty(self):
        assert normalize_for_scan("") == ""


class TestSignatureDatabase:
    def make_signature(self, kit, created, pattern="abc"):
        return Signature(kit=kit, pattern=pattern, created=created)

    def test_add_and_len(self):
        database = SignatureDatabase()
        database.add(self.make_signature("rig", D(2014, 8, 1)))
        assert len(database) == 1

    def test_filter_by_kit(self):
        database = SignatureDatabase([
            self.make_signature("rig", D(2014, 8, 1)),
            self.make_signature("angler", D(2014, 8, 2)),
        ])
        assert len(database.signatures_for(kit="rig")) == 1

    def test_filter_by_date(self):
        database = SignatureDatabase([
            self.make_signature("rig", D(2014, 8, 1)),
            self.make_signature("rig", D(2014, 8, 10)),
        ])
        assert len(database.signatures_for(as_of=D(2014, 8, 5))) == 1

    def test_latest_for(self):
        database = SignatureDatabase([
            self.make_signature("rig", D(2014, 8, 1), "first"),
            self.make_signature("rig", D(2014, 8, 10), "second"),
        ])
        assert database.latest_for("rig").pattern == "second"
        assert database.latest_for("rig", as_of=D(2014, 8, 5)).pattern == "first"
        assert database.latest_for("angler") is None

    def test_kits(self):
        database = SignatureDatabase([
            self.make_signature("rig", D(2014, 8, 1)),
            self.make_signature("angler", D(2014, 8, 1)),
        ])
        assert database.kits() == {"rig", "angler"}


class TestScanEngine:
    def test_scan_matches(self):
        database = SignatureDatabase([
            Signature(kit="rig", pattern=r"vara=\d+;", created=D(2014, 8, 1))])
        engine = ScanEngine(database)
        result = engine.scan("s1", "<script>var a = 42;</script>")
        assert result.detected
        assert result.kits == {"rig"}

    def test_scan_respects_as_of(self):
        database = SignatureDatabase([
            Signature(kit="rig", pattern="vara=42;", created=D(2014, 8, 10))])
        engine = ScanEngine(database)
        assert not engine.scan("s1", "var a = 42;", as_of=D(2014, 8, 5)).detected
        assert engine.scan("s1", "var a = 42;", as_of=D(2014, 8, 15)).detected

    def test_scan_many(self):
        database = SignatureDatabase([
            Signature(kit="rig", pattern="varmal=1;", created=D(2014, 8, 1))])
        engine = ScanEngine(database)
        results = engine.scan_many({"bad": "var mal = 1;", "good": "var ok = 2;"})
        assert results[0].detected and not results[1].detected


class TestAVBaseline:
    def test_rules_built_for_every_kit(self):
        av = default_av_baseline()
        kits = {rule.kit for rule in av.rules}
        assert kits == {"nuclear", "rig", "angler", "sweetorange"}

    def test_initial_rules_available_at_study_start(self):
        av = default_av_baseline()
        deployed = av.rules_deployed(D(2014, 8, 1))
        assert {rule.kit for rule in deployed} == {"nuclear", "rig", "angler",
                                                   "sweetorange"}

    def test_rules_for_new_packer_arrive_with_lag(self):
        av = default_av_baseline()
        # Nuclear's delimiter change on Aug 17 -> rule lands lag days later.
        before = len(av.rules_deployed(D(2014, 8, 17)))
        after = len(av.rules_deployed(D(2014, 8, 17)
                                      + datetime.timedelta(days=av.lag_days["nuclear"])))
        assert after > before

    def test_detects_current_kits_at_study_start(self, kits):
        av = default_av_baseline()
        day = D(2014, 8, 2)
        for name in ("nuclear", "rig", "angler", "sweetorange"):
            sample = kits[name].generate(day, random.Random(3))
            verdict = av.scan(sample.sample_id, sample.content, as_of=day)
            assert verdict.detected, f"AV should detect {name} on {day}"
            assert name in verdict.kits

    def test_angler_window_of_vulnerability(self, kits):
        """Example 1 / Figure 6: the Angler change of August 13 breaks the
        deployed AV signature until the analyst responds."""
        av = default_av_baseline()
        inside_window = D(2014, 8, 15)
        sample = kits["angler"].generate(inside_window, random.Random(4))
        assert not av.scan(sample.sample_id, sample.content,
                           as_of=inside_window).detected
        after_response = D(2014, 8, 20)
        sample_late = kits["angler"].generate(after_response, random.Random(4))
        assert av.scan(sample_late.sample_id, sample_late.content,
                       as_of=after_response).detected

    def test_nuclear_missed_after_delimiter_rotation(self, kits):
        av = default_av_baseline()
        day = D(2014, 8, 18)  # delimiter rotated on the 17th, lag is 6 days
        sample = kits["nuclear"].generate(day, random.Random(5))
        assert not av.scan(sample.sample_id, sample.content, as_of=day).detected

    def test_benign_usually_not_flagged(self, august_day):
        from repro.ekgen import BenignGenerator

        av = default_av_baseline()
        generator = BenignGenerator()
        flagged = 0
        for seed in range(20):
            sample = generator.generate(august_day, random.Random(seed))
            if av.scan(sample.sample_id, sample.content,
                       as_of=august_day).detected:
                flagged += 1
        assert flagged <= 2

    def test_release_dates_reported(self):
        av = default_av_baseline()
        dates = av.signature_release_dates()
        assert dates == sorted(dates)
        assert av.signature_release_dates(kit="angler")

    def test_heuristic_rule_optional(self):
        av = SimulatedCommercialAV(include_fp_heuristic=False)
        assert all(not rule.heuristic for rule in av.rules)

    def test_manual_rule_matching(self):
        rule = ManualSignatureRule(kit="x", name="test", pattern="abc",
                                   released=D(2014, 8, 1))
        assert rule.matches("xxabcxx", "nothing")
        assert rule.matches("nothing", "xxabcxx")
        assert not rule.matches("no", "no")
