"""Fault-injection tests for the multi-machine cluster backend.

Extends the damaged-input philosophy of ``tests/test_failure_injection.py``
to the execution substrate itself: real localhost worker *subprocesses* are
killed mid-partition-map (SIGKILL), have their sockets severed mid-frame,
stall their heartbeats past the deadline — or turn actively hostile,
sending tampered-HMAC frames, replayed frames, and forbidden pickles — and
in every case the day's cluster labels, signatures and FP/FN must come out
byte-identical to the serial backend, with the re-dispatch path
demonstrably exercised (``cluster_redispatch_count >= 1``) and hostile
frames rejected with their typed error *before* any payload decode
(``reject_counts``).

Determinism of the recovery rests on two properties asserted throughout:
task identity (not worker identity) carries every RNG seed, and the
coordinator accepts at most one result per task (late duplicates from a
torn-down lease are dropped).
"""

from __future__ import annotations

import datetime
import os
import time
from types import SimpleNamespace

import pytest

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.exec.backend import BackendConfig
from repro.exec.cluster import ClusterCoordinator, ClusterError, \
    SECRET_ENV, spawn_local_worker

#: The shared wire secret this test run operates under.  CI exports
#: ``REPRO_CLUSTER_SECRET`` so the whole matrix runs authenticated
#: end-to-end; locally it is usually unset (public default key).  Spawned
#: workers inherit the environment either way, so direct-coordinator
#: tests must register under the same secret.
TEST_SECRET = os.environ.get(SECRET_ENV)

D = datetime.date
KITS = ("nuclear", "angler", "rig", "sweetorange")

#: Tight failure-detection knobs so each injected fault resolves in about a
#: second instead of the production-default tens of seconds.
FAULT_BACKEND = dict(kind="cluster", heartbeat_timeout_s=1.0,
                     task_deadline_s=10.0, max_task_retries=3)


def _generator():
    return TelemetryGenerator(StreamConfig(
        benign_per_day=8,
        kit_daily_counts={"angler": 6, "nuclear": 4, "sweetorange": 4,
                          "rig": 3},
        seed=20140801))


def _run_days(kizzle, generator, days):
    """Process ``days`` seeded days; returns (labels, fpfn) per day."""
    day_labels, day_fpfn = [], []
    for offset in range(days):
        date = D(2014, 8, 1) + datetime.timedelta(days=offset)
        batch = generator.generate_day(date)
        result = kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], date)
        day_labels.append(sorted(
            (tuple(sorted(sample.sample_id
                          for sample in report.cluster.samples)),
             report.kit)
            for report in result.clusters))
        false_positives = sum(
            1 for sample in batch.benign
            if kizzle.detects(sample.content, as_of=date))
        false_negatives = sum(
            1 for sample in batch.malicious
            if not kizzle.detects(sample.content, as_of=date))
        day_fpfn.append((false_positives, false_negatives))
    return day_labels, day_fpfn


def _reference(incremental=False, days=2):
    """Serial-backend ground truth for the seeded stream."""
    generator = _generator()
    kizzle = Kizzle(KizzleConfig(
        machines=6, min_points=3, partitions=4,
        incremental=IncrementalConfig(enabled=incremental),
        backend=BackendConfig(kind="serial")))
    for kit in KITS:
        kizzle.seed_known_kit(
            kit, [generator.reference_core(kit, D(2014, 7, 31))])
    labels, fpfn = _run_days(kizzle, generator, days)
    signatures = [(s.kit, s.created, s.pattern) for s in kizzle.database]
    kizzle.close()
    return labels, fpfn, signatures


@pytest.fixture(scope="module")
def serial_reference():
    return _reference(incremental=False, days=2)


def _run_cluster_with_fault(fault, days=2, incremental=False):
    """Run the stream on a 2-worker localhost cluster, one worker faulty.

    The coordinator's first-lease fairness guarantees the faulty worker
    holds a task when its fault fires, so the re-dispatch path is
    exercised deterministically, not raced for.
    """
    generator = _generator()
    kizzle = Kizzle(KizzleConfig(
        machines=6, min_points=3, partitions=4,
        incremental=IncrementalConfig(enabled=incremental),
        backend=BackendConfig(**FAULT_BACKEND)))
    backend = kizzle.backend
    backend.coordinator.min_workers = 2  # both workers present at dispatch
    # The warm path ships pre-tokenized partitions; drop the worth-it
    # threshold so the tiny test partitions still fan out to the cluster.
    kizzle.clusterer.pooled_partition_min = 1
    procs = [
        spawn_local_worker(backend.address, heartbeat_interval=0.25),
        spawn_local_worker(backend.address, heartbeat_interval=0.25,
                           fault=fault),
    ]
    try:
        for kit in KITS:
            kizzle.seed_known_kit(
                kit, [generator.reference_core(kit, D(2014, 7, 31))])
        labels, fpfn = _run_days(kizzle, generator, days)
        signatures = [(s.kit, s.created, s.pattern)
                      for s in kizzle.database]
        outcome = SimpleNamespace(
            labels=labels, fpfn=fpfn, signatures=signatures,
            redispatched=backend.redispatch_count,
            remote=backend.remote_task_count,
            rejects=backend.reject_counts,
            departures=backend.coordinator.graceful_departures)
    finally:
        kizzle.close()
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10.0)
    return outcome


class TestWorkerLossMidMap:
    """One worker of two dies mid-map; the day must still be perfect."""

    @pytest.mark.parametrize("fault", ["sigkill-mid-task", "drop-mid-frame",
                                       "stall-heartbeat"])
    def test_byte_identical_to_serial_with_redispatch(self, fault,
                                                      serial_reference):
        run = _run_cluster_with_fault(fault)
        assert run.labels == serial_reference[0], \
            f"{fault}: cluster labels diverged after worker loss"
        assert run.fpfn == serial_reference[1], f"{fault}: FP/FN diverged"
        assert run.signatures == serial_reference[2], \
            f"{fault}: signatures diverged"
        assert run.redispatched >= 1, \
            f"{fault}: the faulty worker never held a task - the " \
            f"re-dispatch path was not exercised"
        assert run.remote >= 1, f"{fault}: no task executed remotely"

    @pytest.mark.slow
    def test_warm_path_survives_sigkill(self):
        """The incremental pipeline (shed/carry-forward state across days)
        must also come through a mid-map worker loss byte-identical."""
        reference = _reference(incremental=True, days=2)
        run = _run_cluster_with_fault("sigkill-mid-task", days=2,
                                      incremental=True)
        assert (run.labels, run.fpfn, run.signatures) == reference
        assert run.redispatched >= 1


class TestHostilePeerMidMap:
    """One worker of two turns hostile mid-map: tampered HMAC, replayed
    frame, or a forbidden pickle.  Each must be rejected with its typed
    error *before* payload decode, the peer dropped, its lease
    re-dispatched, and the month byte-identical to serial."""

    @pytest.mark.parametrize("fault,reject", [
        ("bad-hmac", "auth"),
        ("replayed-frame", "replay"),
        ("rogue-pickle", "forbidden"),
    ])
    def test_byte_identical_with_typed_reject(self, fault, reject,
                                              serial_reference):
        run = _run_cluster_with_fault(fault)
        assert run.labels == serial_reference[0], \
            f"{fault}: cluster labels diverged after the hostile peer"
        assert run.fpfn == serial_reference[1], f"{fault}: FP/FN diverged"
        assert run.signatures == serial_reference[2], \
            f"{fault}: signatures diverged"
        assert run.rejects[reject] >= 1, \
            f"{fault}: the hostile frame was not rejected as {reject!r}"
        assert run.redispatched >= 1, \
            f"{fault}: the hostile worker's lease was never re-dispatched"
        assert run.remote >= 1, f"{fault}: no task executed remotely"

    def test_graceful_drain_mid_map_returns_result_exactly_once(
            self, serial_reference):
        """SIGTERM mid-lease: the worker finishes the task, its result is
        accepted exactly once, it says goodbye, and nothing re-dispatches."""
        run = _run_cluster_with_fault("drain-mid-task")
        assert run.labels == serial_reference[0], \
            "drain: cluster labels diverged after the graceful departure"
        assert run.fpfn == serial_reference[1]
        assert run.signatures == serial_reference[2]
        assert run.departures >= 1, "the worker never said goodbye"
        assert run.remote >= 1


class TestCoordinatorFailureHandling:
    """Direct coordinator-level failure semantics (no pipeline)."""

    def _coordinator(self, **overrides):
        settings = dict(task_deadline_s=10.0, heartbeat_timeout_s=1.0,
                        max_task_retries=2, min_workers=1, worker_wait_s=10.0,
                        secret=TEST_SECRET)
        settings.update(overrides)
        coordinator = ClusterCoordinator("127.0.0.1", 0, **settings)
        coordinator.start()
        return coordinator

    def test_no_workers_fails_fast_not_hangs(self):
        coordinator = self._coordinator(worker_wait_s=0.5)
        try:
            started = time.monotonic()
            with pytest.raises(ClusterError, match="workers"):
                coordinator.submit("pair_chunks", [object()])
            assert time.monotonic() - started < 5.0
        finally:
            coordinator.close()

    def test_retry_budget_exhaustion_raises_cluster_error(self):
        """A task that kills every worker it lands on must fail the
        submission once its retry budget is gone — never loop forever."""
        from repro.clustering.partition import PartitionMapTask
        from repro.distance.engine import DistanceEngineConfig

        coordinator = self._coordinator(max_task_retries=1, min_workers=1)
        procs = [spawn_local_worker(coordinator.address,
                                    heartbeat_interval=0.25,
                                    fault="sigkill-mid-task")
                 for _ in range(3)]
        task = PartitionMapTask(index=0, samples=[], epsilon=0.1,
                                min_points=3,
                                engine_config=DistanceEngineConfig())
        try:
            with pytest.raises(ClusterError, match="died|attempt"):
                coordinator.submit("partition_map", [task], timeout=30.0)
            assert coordinator.redispatch_count >= 2
        finally:
            coordinator.close()
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=10.0)

    def test_unframeable_task_payload_fails_task_not_workers(self,
                                                             monkeypatch):
        """A payload the wire codec refuses (FrameTooLarge before any byte
        hits the socket) must fail the *submission* with the real cause —
        not masquerade as a dead worker and serially tear down healthy
        ones."""
        from repro.clustering.partition import PartitionMapTask
        from repro.distance.engine import DistanceEngineConfig
        from repro.exec import wire

        real_send = wire.FrameCodec.send

        def refusing_send(self, sock, payload):
            if isinstance(payload, tuple) and payload \
                    and payload[0] == "task":
                raise wire.FrameTooLarge("injected: payload over the bound")
            return real_send(self, sock, payload)

        coordinator = self._coordinator()
        proc = spawn_local_worker(coordinator.address,
                                  heartbeat_interval=0.25)
        task = PartitionMapTask(index=0, samples=[], epsilon=0.1,
                                min_points=3,
                                engine_config=DistanceEngineConfig())
        try:
            coordinator.wait_for_workers(1, timeout=15.0)
            monkeypatch.setattr(wire.FrameCodec, "send", refusing_send)
            with pytest.raises(ClusterError, match="framed"):
                coordinator.submit("partition_map", [task], timeout=20.0)
            monkeypatch.setattr(wire.FrameCodec, "send", real_send)
            # The healthy worker was never torn down over the local
            # encode failure.
            assert coordinator.worker_count == 1
            assert coordinator.redispatch_count == 0
        finally:
            coordinator.close()
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10.0)

    def test_late_duplicate_results_are_dropped(self):
        """At-most-once observable effects: a result frame for a task whose
        lease was torn down (and re-dispatched elsewhere) is ignored."""
        import socket as socket_module

        from repro.exec import wire

        coordinator = self._coordinator(heartbeat_timeout_s=30.0)
        try:
            sock = socket_module.create_connection(coordinator.address,
                                                   timeout=5.0)
            codec = wire.FrameCodec(TEST_SECRET)
            codec.send(sock, ("hello", {"version": wire.WIRE_VERSION,
                                        "pid": 0}))
            kind, body = codec.recv(sock)
            assert kind == "welcome"
            # A result for a task this worker never leased: dropped.
            codec.send(sock, ("result", {"task_id": 12345,
                                         "payload": "stale"}))
            # The connection survives the stale result: a task request is
            # still answered (idle — nothing is queued).
            codec.send(sock, ("request", {}))
            sock.settimeout(5.0)
            assert codec.recv(sock) == ("idle", {})
            assert coordinator.remote_results == 0
            sock.close()
        finally:
            coordinator.close()

    def test_close_is_idempotent_and_shuts_workers_down(self):
        coordinator = self._coordinator()
        proc = spawn_local_worker(coordinator.address,
                                  heartbeat_interval=0.25)
        try:
            coordinator.wait_for_workers(1, timeout=15.0)
            coordinator.close()
            coordinator.close()  # idempotent
            # The worker sees the shutdown (or the dropped socket) and
            # exits on its own.
            deadline = time.monotonic() + 10.0
            while proc.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            assert proc.poll() is not None, \
                "worker outlived the coordinator shutdown"
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10.0)

    def test_version_mismatched_peer_is_rejected(self):
        """A frame from a different protocol generation must drop the peer
        (typed failure at the wire layer), not corrupt coordinator state."""
        import socket as socket_module
        import struct

        from repro.exec import wire

        coordinator = self._coordinator()
        try:
            sock = socket_module.create_connection(coordinator.address,
                                                   timeout=5.0)
            frame = bytearray(wire.encode_frame(
                ("hello", {"version": wire.WIRE_VERSION, "pid": 0})))
            struct.pack_into(">H", frame, 4, wire.WIRE_VERSION + 1)
            sock.sendall(bytes(frame))
            # The coordinator drops the connection without a welcome
            # (clean FIN or RST, depending on close timing — either way
            # the peer never registers).
            sock.settimeout(5.0)
            try:
                assert sock.recv(1024) == b""
            except ConnectionError:
                pass
            assert coordinator.worker_count == 0
            sock.close()
        finally:
            coordinator.close()
