"""Integration tests for the Kizzle daily pipeline."""

from __future__ import annotations

import datetime

import pytest

from repro import Kizzle, KizzleConfig
from repro.ekgen import StreamConfig, TelemetryGenerator

D = datetime.date


@pytest.fixture(scope="module")
def pipeline_setup():
    """A seeded Kizzle instance plus a small generator (module-scoped: the
    pipeline run is the expensive part of these tests)."""
    generator = TelemetryGenerator(StreamConfig(
        benign_per_day=18,
        kit_daily_counts={"angler": 8, "nuclear": 4, "sweetorange": 5,
                          "rig": 3},
        seed=77,
    ))
    kizzle = Kizzle(KizzleConfig(machines=8, min_points=3, seed=1))
    for kit in ("nuclear", "angler", "rig", "sweetorange"):
        cores = [generator.reference_core(kit, D(2014, 7, 31) - datetime.timedelta(days=i))
                 for i in range(3)]
        kizzle.seed_known_kit(kit, cores)
    day = D(2014, 8, 5)
    batch = generator.generate_day(day)
    result = kizzle.process_day(
        [(s.sample_id, s.content) for s in batch.samples], day)
    return generator, kizzle, batch, result


class TestConfig:
    def test_defaults_match_paper(self):
        config = KizzleConfig()
        assert config.epsilon == 0.10
        assert config.machines == 50
        assert config.signature.max_window_tokens == 200

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            KizzleConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            KizzleConfig(epsilon=1.5)

    def test_invalid_min_points(self):
        with pytest.raises(ValueError):
            KizzleConfig(min_points=0)

    def test_invalid_machines(self):
        with pytest.raises(ValueError):
            KizzleConfig(machines=0)


class TestDailyRun:
    def test_clusters_found(self, pipeline_setup):
        _generator, _kizzle, batch, result = pipeline_setup
        assert result.sample_count == len(batch.samples)
        assert result.cluster_count >= 4
        assert result.noise_count < len(batch.samples) // 2

    def test_malicious_clusters_labeled(self, pipeline_setup):
        _generator, _kizzle, _batch, result = pipeline_setup
        labeled_kits = set(result.clusters_by_kit())
        assert "angler" in labeled_kits
        assert "sweetorange" in labeled_kits

    def test_benign_clusters_not_labeled(self, pipeline_setup):
        _generator, _kizzle, _batch, result = pipeline_setup
        assert len(result.benign_clusters) >= 2
        for report in result.benign_clusters:
            assert report.signature is None

    def test_signatures_generated_for_malicious_clusters(self, pipeline_setup):
        _generator, _kizzle, _batch, result = pipeline_setup
        assert result.new_signatures
        for signature in result.new_signatures:
            assert signature.kit in {"angler", "nuclear", "rig", "sweetorange"}
            assert signature.token_length >= 10

    def test_generated_signatures_detect_same_day_samples(self, pipeline_setup):
        _generator, kizzle, batch, result = pipeline_setup
        covered_kits = {signature.kit for signature in kizzle.database}
        detected = 0
        total = 0
        for sample in batch.malicious:
            if sample.kit not in covered_kits:
                continue
            total += 1
            if kizzle.detects(sample.content):
                detected += 1
        assert total > 0
        assert detected / total > 0.8

    def test_no_false_positives_on_benign(self, pipeline_setup):
        _generator, kizzle, batch, _result = pipeline_setup
        false_positives = [s for s in batch.benign if kizzle.detects(s.content)]
        assert len(false_positives) <= 1

    def test_timing_report_attached(self, pipeline_setup):
        _generator, _kizzle, _batch, result = pipeline_setup
        assert result.timing is not None
        assert result.timing.total_time > 0
        assert result.summary()["clusters"] == result.cluster_count

    def test_corpus_grows_with_tracked_kits(self, pipeline_setup):
        _generator, kizzle, _batch, result = pipeline_setup
        assert len(kizzle.corpus) >= 12 + len(result.new_signatures)

    def test_scan_engine_view(self, pipeline_setup):
        _generator, kizzle, batch, _result = pipeline_setup
        engine = kizzle.scan_engine()
        malicious = batch.malicious[0]
        result = engine.scan(malicious.sample_id, malicious.content)
        assert isinstance(result.detected, bool)

    def test_second_day_reuses_signatures_when_kit_unchanged(self):
        """Running two consecutive quiet days should not re-issue signatures
        for a kit whose packer did not change (Figure 12 stays flat)."""
        generator = TelemetryGenerator(StreamConfig(
            benign_per_day=4,
            kit_daily_counts={"angler": 6}, seed=5))
        kizzle = Kizzle(KizzleConfig(machines=4, min_points=3))
        kizzle.seed_known_kit("angler",
                              [generator.reference_core("angler", D(2014, 8, 1))])
        for day in (D(2014, 8, 2), D(2014, 8, 3)):
            batch = generator.generate_day(day)
            kizzle.process_day([(s.sample_id, s.content) for s in batch.samples],
                               day)
        angler_signatures = kizzle.database.signatures_for(kit="angler")
        assert len(angler_signatures) == 1

    def test_new_signature_issued_when_packer_changes(self):
        """Across the Angler August 13 change a second signature appears."""
        generator = TelemetryGenerator(StreamConfig(
            benign_per_day=4, kit_daily_counts={"angler": 6},
            transition_fraction=1.0, seed=6))
        kizzle = Kizzle(KizzleConfig(machines=4, min_points=3))
        kizzle.seed_known_kit("angler",
                              [generator.reference_core("angler", D(2014, 8, 10))])
        for day in (D(2014, 8, 12), D(2014, 8, 13)):
            batch = generator.generate_day(day)
            kizzle.process_day([(s.sample_id, s.content) for s in batch.samples],
                               day)
        angler_signatures = kizzle.database.signatures_for(kit="angler")
        assert len(angler_signatures) == 2
