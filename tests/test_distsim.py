"""Tests for the discrete-event cluster simulator."""

from __future__ import annotations

import pytest

from repro.distsim import (
    EventLoop,
    Machine,
    MachineSpec,
    MapReduceJob,
    NetworkModel,
    Scheduler,
    SimCluster,
    Task,
)


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(5.0, lambda: order.append("late"))
        loop.schedule(1.0, lambda: order.append("early"))
        loop.run()
        assert order == ["early", "late"]
        assert loop.now == 5.0

    def test_simultaneous_events_fifo(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append(1))
        loop.schedule(1.0, lambda: order.append(2))
        loop.run()
        assert order == [1, 2]

    def test_callback_can_schedule_more(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule(2.0, lambda: seen.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert seen == ["first", "second"]
        assert loop.now == 3.0

    def test_cancel(self):
        loop = EventLoop()
        seen = []
        event = loop.schedule(1.0, lambda: seen.append("x"))
        event.cancel()
        loop.run()
        assert seen == []

    def test_run_until_horizon(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(10.0, lambda: seen.append("b"))
        loop.run(until=5.0)
        assert seen == ["a"]
        assert loop.now == 5.0
        assert loop.pending == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(4.0, lambda: seen.append("x"))
        loop.run()
        assert loop.now == 4.0


class TestMachine:
    def test_execution_time(self):
        machine = Machine(0, MachineSpec(ops_per_second=100.0,
                                         startup_latency=1.0))
        assert machine.execution_time(200.0) == pytest.approx(3.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Machine(0).execution_time(-1.0)

    def test_assign_serializes_tasks(self):
        machine = Machine(0, MachineSpec(ops_per_second=100.0,
                                         startup_latency=0.0))
        first = machine.assign(0.0, 100.0)
        second = machine.assign(0.0, 100.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)
        assert machine.completed_tasks == 2

    def test_utilization(self):
        machine = Machine(0, MachineSpec(ops_per_second=100.0,
                                         startup_latency=0.0))
        machine.assign(0.0, 100.0)
        assert machine.utilization(2.0) == pytest.approx(0.5)
        assert machine.utilization(0.0) == 0.0


class TestNetwork:
    def test_transfer_time(self):
        network = NetworkModel(latency=0.1, bandwidth_bytes_per_second=1000.0)
        assert network.transfer_time(500.0) == pytest.approx(0.6)

    def test_scatter_parallelizes(self):
        network = NetworkModel(latency=0.0, bandwidth_bytes_per_second=1000.0)
        one = network.scatter_time(10_000.0, 1)
        ten = network.scatter_time(10_000.0, 10)
        assert ten == pytest.approx(one / 10)

    def test_gather_serializes(self):
        network = NetworkModel(latency=0.0, bandwidth_bytes_per_second=1000.0)
        assert network.gather_time(100.0, 10) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        network = NetworkModel()
        with pytest.raises(ValueError):
            network.transfer_time(-1.0)
        with pytest.raises(ValueError):
            network.scatter_time(1.0, 0)
        with pytest.raises(ValueError):
            network.gather_time(1.0, 0)


class TestScheduler:
    def test_tasks_spread_across_machines(self):
        scheduler = Scheduler(4, spec=MachineSpec(ops_per_second=1.0,
                                                  startup_latency=0.0))
        tasks = [Task(name=f"t{i}", callable=lambda: None, cost=10.0)
                 for i in range(4)]
        results = scheduler.run_tasks(tasks)
        assert {result.machine_id for result in results} == {0, 1, 2, 3}
        assert scheduler.makespan == pytest.approx(10.0)

    def test_more_tasks_than_machines_queue(self):
        scheduler = Scheduler(2, spec=MachineSpec(ops_per_second=1.0,
                                                  startup_latency=0.0))
        tasks = [Task(name=f"t{i}", callable=lambda: None, cost=5.0)
                 for i in range(4)]
        scheduler.run_tasks(tasks)
        assert scheduler.makespan == pytest.approx(10.0)

    def test_task_values_and_errors_captured(self):
        def boom():
            raise RuntimeError("partition failed")

        scheduler = Scheduler(1)
        results = scheduler.run_tasks([
            Task(name="ok", callable=lambda: {"cost": 5.0, "value": 7}),
            Task(name="bad", callable=boom),
        ])
        assert results[0].succeeded and results[0].value["value"] == 7
        assert not results[1].succeeded
        assert isinstance(results[1].error, RuntimeError)

    def test_cost_from_return_value(self):
        scheduler = Scheduler(1, spec=MachineSpec(ops_per_second=1.0,
                                                  startup_latency=0.0))
        scheduler.run_tasks([Task(name="x", callable=lambda: {"cost": 42.0})])
        assert scheduler.makespan == pytest.approx(42.0)

    def test_invalid_machine_count(self):
        with pytest.raises(ValueError):
            Scheduler(0)

    def test_utilization_reported_per_machine(self):
        scheduler = Scheduler(2, spec=MachineSpec(ops_per_second=1.0,
                                                  startup_latency=0.0))
        scheduler.run_tasks([Task(name="a", callable=lambda: None, cost=10.0)])
        utilization = scheduler.utilization()
        assert utilization[0] == pytest.approx(1.0)
        assert utilization[1] == 0.0


class TestMapReduce:
    def run_job(self, machines, items):
        cluster = SimCluster(machine_count=machines,
                             machine_spec=MachineSpec(ops_per_second=1000.0,
                                                      startup_latency=0.0))

        def map_function(bucket):
            return sum(bucket), float(len(bucket) * 100), 10.0 * len(bucket)

        def reduce_function(values):
            return sum(values), float(len(values) * 50)

        job = MapReduceJob(cluster, map_function, reduce_function)
        return job.run(items, item_bytes=lambda item: 8.0)

    def test_computation_is_correct(self):
        report = self.run_job(4, list(range(100)))
        assert report.reduce_value == sum(range(100))

    def test_scaling_reduces_map_time(self):
        small = self.run_job(2, list(range(200)))
        large = self.run_job(20, list(range(200)))
        assert large.map_time < small.map_time

    def test_reduce_fraction_grows_with_machines(self):
        """The reduce step is serial, so its share of the total grows as the
        map phase parallelizes — the paper's observed bottleneck."""
        small = self.run_job(2, list(range(200)))
        large = self.run_job(40, list(range(200)))
        assert large.reduce_fraction > small.reduce_fraction

    def test_summary_keys(self):
        report = self.run_job(4, list(range(10)))
        summary = report.summary()
        for key in ("machines", "total_s", "reduce_fraction", "map_s"):
            assert key in summary

    def test_empty_items(self):
        report = self.run_job(4, [])
        assert report.reduce_value == 0

    def test_partition_cap(self):
        report = self.run_job(8, list(range(3)))
        assert report.partitions <= 3

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            SimCluster(machine_count=0)
