"""Tests for partition-parallel map execution (repro.exec.partition).

The load-bearing property mirrors the backend contract: moving the whole
per-partition map (tokenize + DBSCAN + prototypes) into a persistent worker
pool changes *where* the map runs, never *what* comes out.  Labels,
signatures and per-day FP/FN must be byte-identical to inline execution for
any worker count, warm and cold; the engine's accounting must aggregate the
workers' stats; and the real pool must demonstrably engage (otherwise the
equivalence tests prove nothing).
"""

from __future__ import annotations

import datetime
import pickle

import pytest

from repro.clustering.partition import ClusteredSample, DistributedClusterer, \
    PartitionMapTask, partition_samples
from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.distance.engine import DistanceEngine, DistanceEngineConfig
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.exec.backend import BackendConfig, create_backend
from repro.exec.partition import PartitionPoolExecutor

D = datetime.date
KITS = ("nuclear", "angler", "rig", "sweetorange")

#: Pinned partition count: small seeded days would otherwise collapse to a
#: single partition and the pool would (correctly) never engage.
PARTITIONS = 4


def _generator():
    return TelemetryGenerator(StreamConfig(
        benign_per_day=8,
        kit_daily_counts={"angler": 6, "nuclear": 4, "sweetorange": 4,
                          "rig": 3},
        seed=20140801))


def _run_stream(backend_kind, incremental, workers,
                partition_parallel=True, days=2):
    """Process seeded days; returns (labels, fp/fn, signatures, last result,
    kizzle)."""
    generator = _generator()
    config = KizzleConfig(
        machines=6, min_points=3, partitions=PARTITIONS,
        distance=DistanceEngineConfig(workers=workers, shared_cache=False),
        incremental=IncrementalConfig(enabled=incremental),
        backend=BackendConfig(kind=backend_kind, workers=workers,
                              partition_parallel=partition_parallel))
    kizzle = Kizzle(config)
    # The warm path hands the cluster stage pre-tokenized (cached) samples,
    # which tiny test days would keep inline under the worth-it heuristic;
    # drop the floor so the pool demonstrably engages warm as well as cold.
    kizzle.clusterer.pooled_partition_min = 1
    for kit in KITS:
        kizzle.seed_known_kit(
            kit, [generator.reference_core(kit, D(2014, 7, 31))])
    day_labels, day_fpfn, result = [], [], None
    for offset in range(days):
        date = D(2014, 8, 1) + datetime.timedelta(days=offset)
        batch = generator.generate_day(date)
        result = kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], date)
        day_labels.append(sorted(
            (tuple(sorted(sample.sample_id
                          for sample in report.cluster.samples)),
             report.kit)
            for report in result.clusters))
        day_fpfn.append((
            sum(1 for sample in batch.benign
                if kizzle.detects(sample.content, as_of=date)),
            sum(1 for sample in batch.malicious
                if not kizzle.detects(sample.content, as_of=date))))
    signatures = [(s.kit, s.created, s.pattern) for s in kizzle.database]
    kizzle.close()
    return day_labels, day_fpfn, signatures, result, kizzle


# ----------------------------------------------------------------------
# byte-identity to inline execution
# ----------------------------------------------------------------------
class TestPartitionParallelEquivalence:
    @pytest.mark.slow
    @pytest.mark.parametrize("incremental", [False, True],
                             ids=["cold", "warm"])
    def test_identical_to_serial_for_any_worker_count(self, incremental):
        reference = _run_stream("serial", incremental, workers=1)[:3]
        for kind in ("process", "distsim"):
            for workers in (2, 3):
                labels, fpfn, signatures, result, _ = _run_stream(
                    kind, incremental, workers=workers)
                assert result.timing.map_workers == workers, \
                    f"{kind} workers={workers}: partition pool not engaged"
                assert labels == reference[0], \
                    f"{kind} workers={workers}: cluster labels diverged"
                assert fpfn == reference[1], \
                    f"{kind} workers={workers}: FP/FN diverged"
                assert signatures == reference[2], \
                    f"{kind} workers={workers}: signatures diverged"

    @pytest.mark.slow
    def test_disabled_knob_runs_inline_and_matches(self):
        enabled = _run_stream("process", False, workers=2)
        disabled = _run_stream("process", False, workers=2,
                               partition_parallel=False)
        assert disabled[3].timing.map_workers == 1
        assert disabled[3].timing.map_wall_seconds == 0.0
        assert enabled[:3] == disabled[:3]

    def test_pool_actually_engaged_and_attributed(self):
        """Engagement must be observable: the executor counts a pooled
        batch, the report carries the pool width, and the cluster stage
        attributes the pool's wall clock as the ``cluster.map`` sub-wall."""
        _, _, _, result, kizzle = _run_stream("process", False, workers=2,
                                              days=1)
        executor = kizzle.backend.partition_executor()
        assert executor.pooled_batches > 0
        assert result.timing.map_workers == 2
        assert result.timing.partitions == PARTITIONS
        assert "cluster.map" in result.stage_walls
        assert result.stage_walls["cluster.map"] \
            == pytest.approx(result.timing.map_wall_seconds)
        summary = result.timing.summary()
        assert summary["map_workers"] == 2.0
        assert summary["map_wall_s"] >= 0.0

    def test_distsim_keeps_charging_simulated_machine_time(self):
        """The simulator must keep charging the recorded per-partition
        costs as virtual machine time even though the map ran on the real
        pool — same virtual timeline as inline execution."""
        inline = _run_stream("distsim", False, workers=2,
                             partition_parallel=False, days=1)[3]
        pooled = _run_stream("distsim", False, workers=2, days=1)[3]
        assert pooled.timing.map_workers == 2
        assert pooled.timing.map_time > 0.0
        assert pooled.timing.map_time \
            == pytest.approx(inline.timing.map_time, rel=1e-6)
        assert pooled.timing.reduce_time \
            == pytest.approx(inline.timing.reduce_time, rel=1e-6)

    def test_engine_stats_aggregate_worker_pairs(self):
        """Pairs decided inside partition workers must show up in the
        parent engine's accounting (per-partition stats aggregation)."""
        inline = _run_stream("process", False, workers=2,
                             partition_parallel=False, days=1)[3]
        pooled = _run_stream("process", False, workers=2, days=1)[3]
        assert pooled.timing.distance_stats["pairs"] \
            == inline.timing.distance_stats["pairs"]
        assert pooled.timing.distance_stats["pairs"] > 0

    def test_serial_backend_has_no_partition_executor(self):
        backend = create_backend(
            BackendConfig(kind="serial", partition_parallel=True))
        assert backend.partition_executor() is None
        backend.close()  # must be a harmless no-op


# ----------------------------------------------------------------------
# the executor itself
# ----------------------------------------------------------------------
def _make_tasks(count=3, per_partition=6):
    generator = _generator()
    batch = generator.generate_day(D(2014, 8, 1))
    samples = [ClusteredSample.from_content(s.sample_id, s.content)
               for s in batch.samples]
    buckets = partition_samples(samples, count, seed=0)
    return [PartitionMapTask(index=index, samples=bucket, epsilon=0.10,
                             min_points=3,
                             engine_config=DistanceEngineConfig(
                                 shared_cache=False),
                             seed=5)
            for index, bucket in enumerate(buckets)]


def _comparable(results):
    return [(r.index, r.comparisons, r.cost, r.output_bytes,
             [(c.cluster_id, sorted(s.sample_id for s in c.samples))
              for c in r.clusters])
            for r in results]


class TestPartitionPoolExecutor:
    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            PartitionPoolExecutor(workers=-1)

    def test_should_engage_needs_partitions_and_workers(self):
        pooled = PartitionPoolExecutor(workers=2)
        assert pooled.should_engage(2)
        assert not pooled.should_engage(1)
        assert not PartitionPoolExecutor(workers=1).should_engage(8)

    def test_single_partition_batch_runs_inline(self):
        executor = PartitionPoolExecutor(workers=2)
        results, seconds = executor.run(_make_tasks(count=1))
        assert executor.inline_batches == 1
        assert executor.pooled_batches == 0
        assert executor._pool is None  # never forked
        assert len(results) == 1 and seconds >= 0.0
        executor.close()

    def test_pooled_results_identical_to_inline_fallback(self):
        tasks = _make_tasks(count=3)
        inline_exec = PartitionPoolExecutor(workers=1)
        inline, _ = inline_exec.run(tasks)
        pooled_exec = PartitionPoolExecutor(workers=2)
        pooled, _ = pooled_exec.run(tasks)
        assert pooled_exec.pooled_batches == 1
        assert _comparable(pooled) == _comparable(inline)
        assert [r.stats for r in pooled] == [r.stats for r in inline]
        assert [r.cache_entries for r in pooled] \
            == [r.cache_entries for r in inline]
        pooled_exec.close()
        pooled_exec.close()  # idempotent
        # A closed executor recovers: the pool is re-created on demand.
        again, _ = pooled_exec.run(tasks)
        assert _comparable(again) == _comparable(inline)
        pooled_exec.close()
        inline_exec.close()

    def test_tasks_are_picklable(self):
        task = _make_tasks(count=2)[0]
        clone = pickle.loads(pickle.dumps(task))
        assert _comparable([clone.run()]) == _comparable([task.run()])


class TestPartitionMapTask:
    def test_worker_engine_never_forks_and_keeps_cache_private(self):
        task = _make_tasks(count=2)[0]
        engine = task.worker_engine()
        assert engine.config.workers == 1
        assert engine.config.shared_cache is False

    def test_run_is_deterministic(self):
        task = _make_tasks(count=2)[0]
        assert _comparable([task.run()]) == _comparable([task.run()])

    def test_absorb_remote_merges_stats_and_cache(self):
        task = _make_tasks(count=2)[0]
        result = task.run()
        assert result.stats["pairs"] > 0
        parent = DistanceEngine(DistanceEngineConfig(shared_cache=False))
        parent.absorb_remote(result.stats, result.cache_entries)
        assert parent.stats.pairs == result.stats["pairs"]
        assert parent.stats.kernel_calls == result.stats["kernel_calls"]
        for a, b, distance in result.cache_entries:
            assert parent.cache.get(a, b) == distance


class TestWorthFanningOut:
    """Pre-tokenized small buckets stay inline (shipping them costs more
    than their DBSCAN); raw buckets always fan out (the map carries the
    lexer)."""

    def _clusterer(self):
        backend = create_backend(BackendConfig(kind="serial"))
        return DistributedClusterer(backend=backend, machines=4)

    def test_raw_buckets_always_fan_out(self):
        clusterer = self._clusterer()
        raw = [[ClusteredSample(sample_id="a", content="var a = 1;")]] * 2
        assert clusterer._worth_fanning_out(raw)

    def test_small_tokenized_buckets_stay_inline(self):
        clusterer = self._clusterer()
        tokenized = [[ClusteredSample.from_content("a", "var a = 1;")]] * 2
        assert not clusterer._worth_fanning_out(tokenized)

    def test_large_tokenized_buckets_fan_out(self):
        clusterer = self._clusterer()
        clusterer.pooled_partition_min = 3
        sample = ClusteredSample.from_content("a", "var a = 1;")
        assert clusterer._worth_fanning_out([[sample] * 3, [sample]])


# ----------------------------------------------------------------------
# configuration plumbing
# ----------------------------------------------------------------------
class TestKnobPlumbing:
    def test_backend_config_resolved_preserves_flag(self):
        config = BackendConfig(kind="process", partition_parallel=False)
        assert config.resolved(machines=4, workers=2,
                               seed=1).partition_parallel is False

    def test_cli_flag_reaches_backend_config(self):
        from repro.cli import _backend_config, build_parser

        parser = build_parser()
        on = parser.parse_args(["process-day"])
        assert _backend_config(on).partition_parallel is True
        off = parser.parse_args(["--no-partition-parallel", "process-day"])
        assert _backend_config(off).partition_parallel is False

    def test_backends_expose_executor_when_enabled(self):
        for kind in ("process", "distsim"):
            enabled = create_backend(
                BackendConfig(kind=kind, workers=3, seed=9))
            executor = enabled.partition_executor()
            assert isinstance(executor, PartitionPoolExecutor)
            assert executor.pool_width() == 3
            assert executor.seed == 9
            enabled.close()
            disabled = create_backend(
                BackendConfig(kind=kind, partition_parallel=False))
            assert disabled.partition_executor() is None
            disabled.close()
