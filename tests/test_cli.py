"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(arguments):
    buffer = io.StringIO()
    code = main(arguments, out=buffer)
    return code, buffer.getvalue()


SMALL_STREAM = ["--benign", "8", "--angler", "5", "--nuclear", "3",
                "--sweetorange", "3", "--rig", "2", "--machines", "4"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["process-day"])
        assert args.benign == 30
        assert args.machines == 10
        assert args.date.isoformat() == "2014-08-05"

    def test_date_parsing(self):
        args = build_parser().parse_args(["process-day", "--date",
                                          "2014-08-20"])
        assert args.date.isoformat() == "2014-08-20"

    def test_invalid_date_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["process-day", "--date", "yesterday"])


class TestCommands:
    def test_process_day(self):
        code, output = run_cli(SMALL_STREAM + ["process-day",
                                               "--date", "2014-08-05"])
        assert code == 0
        assert "clusters" in output
        assert "cluster size=" in output

    def test_scan(self):
        code, output = run_cli(SMALL_STREAM + ["scan",
                                               "--train-date", "2014-08-05",
                                               "--scan-date", "2014-08-06"])
        assert code == 0
        assert "(Kizzle)" in output and "(AV)" in output
        assert "benign false positives" in output

    def test_evaluate_two_days(self):
        code, output = run_cli(SMALL_STREAM + ["evaluate", "--days", "2"])
        assert code == 0
        assert "False negatives per day" in output
        assert "Kizzle FP" in output

    def test_evaluate_incremental(self):
        code, output = run_cli(SMALL_STREAM + ["--incremental",
                                               "evaluate", "--days", "3"])
        assert code == 0
        assert "Kizzle FP" in output

    def test_incremental_flags_parsed(self):
        args = build_parser().parse_args(
            ["--incremental", "--no-shed", "--scan-mode", "exact",
             "--scale", "2.0", "process-day"])
        assert args.incremental and args.no_shed
        assert args.scan_mode == "exact"
        assert args.scale == 2.0

    def test_backend_flag_parsed(self):
        assert build_parser().parse_args(
            ["process-day"]).backend == "distsim"
        for kind in ("serial", "process", "distsim", "cluster"):
            args = build_parser().parse_args(
                ["--backend", kind, "process-day"])
            assert args.backend == kind

    def test_cluster_flags_parsed(self):
        args = build_parser().parse_args(
            ["--backend", "cluster", "--listen", "0.0.0.0:9200",
             "--spawn-workers", "3", "process-day"])
        assert args.listen == "0.0.0.0:9200"
        assert args.spawn_workers == 3
        # Defaults: OS-assigned loopback port, two local workers.
        defaults = build_parser().parse_args(["process-day"])
        assert defaults.listen is None
        assert defaults.spawn_workers == 2

    def test_spawn_workers_only_apply_to_cluster_backend(self):
        from repro.cli import _backend_config

        args = build_parser().parse_args(
            ["--backend", "distsim", "process-day"])
        assert _backend_config(args).spawn_workers == 0
        args = build_parser().parse_args(
            ["--backend", "cluster", "process-day"])
        assert _backend_config(args).spawn_workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "gpu", "process-day"])

    def test_process_day_serial_backend(self):
        code, output = run_cli(SMALL_STREAM + ["--backend", "serial",
                                               "process-day",
                                               "--date", "2014-08-05"])
        assert code == 0
        assert "backend=serial" in output

    def test_backends_print_identical_clusters(self):
        outputs = []
        for kind in ("serial", "distsim"):
            code, output = run_cli(SMALL_STREAM + ["--backend", kind,
                                                   "process-day",
                                                   "--date", "2014-08-05"])
            assert code == 0
            outputs.append("\n".join(
                line for line in output.splitlines()
                if "backend=" not in line))
        assert outputs[0] == outputs[1]

    @pytest.mark.slow
    def test_process_day_cluster_backend_end_to_end(self):
        """`--backend cluster` spawns its two localhost workers, runs the
        day on them, and reaps them on exit — same clusters as serial."""
        code, serial_output = run_cli(
            SMALL_STREAM + ["--backend", "serial", "process-day",
                            "--date", "2014-08-05"])
        assert code == 0
        code, output = run_cli(
            SMALL_STREAM + ["--backend", "cluster", "process-day",
                            "--date", "2014-08-05"])
        assert code == 0
        assert "backend=cluster" in output
        strip = lambda text: "\n".join(  # noqa: E731 - local one-liner
            line for line in text.splitlines() if "backend=" not in line)
        assert strip(output) == strip(serial_output)
