"""Tests for the stage graph (repro.core.stages) and the pipeline's graph.

The graph machinery itself is exercised with synthetic stages (validation,
provides contracts, itemized chains, wall accounting); the pipeline-facing
tests pin the day graph's shape and the per-stage walls surfaced through
``DailyResult``.
"""

from __future__ import annotations

import datetime

import pytest

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.core.stages import Stage, StageGraph, StageGraphError

D = datetime.date


class TestStageGraphMechanics:
    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(StageGraphError):
            StageGraph([Stage("a", lambda ctx: None),
                        Stage("a", lambda ctx: None)])

    def test_missing_requirement_rejected(self):
        graph = StageGraph([
            Stage("consume", lambda ctx: None, requires=("missing",))])
        with pytest.raises(StageGraphError, match="missing"):
            graph.run({"present": 1})

    def test_requirement_satisfied_by_earlier_stage(self):
        def produce(ctx):
            ctx["value"] = 2

        def consume(ctx):
            ctx["doubled"] = ctx["value"] * 2

        graph = StageGraph([
            Stage("produce", produce, provides=("value",)),
            Stage("consume", consume, requires=("value",),
                  provides=("doubled",))])
        context = {}
        graph.run(context)
        assert context["doubled"] == 4

    def test_unfulfilled_provides_contract_fails(self):
        graph = StageGraph([
            Stage("liar", lambda ctx: None, provides=("promised",))])
        with pytest.raises(StageGraphError, match="promised"):
            graph.run({})

    def test_itemized_chain_runs_depth_first(self):
        """Item i must flow through the whole chain before item i+1 starts
        — the property that preserves same-day corpus feedback between the
        label and compile stages."""
        order = []

        def first(ctx, item, carry):
            order.append(("first", item))
            return item * 10

        def second(ctx, item, carry):
            order.append(("second", item))
            ctx["out"].append(carry + item)
            return carry

        graph = StageGraph([
            Stage("setup", lambda ctx: ctx.update(items=[1, 2], out=[]),
                  provides=("items", "out")),
            Stage("first", first, over="items"),
            Stage("second", second, over="items"),
        ])
        context = {}
        graph.run(context)
        assert order == [("first", 1), ("second", 1),
                         ("first", 2), ("second", 2)]
        assert context["out"] == [11, 22]

    def test_walls_recorded_per_stage(self):
        graph = StageGraph([
            Stage("setup", lambda ctx: ctx.update(items=[1, 2, 3]),
                  provides=("items",)),
            Stage("work", lambda ctx, item, carry: None, over="items"),
        ])
        walls = graph.run({})
        assert set(walls) == {"setup", "work"}
        assert all(seconds >= 0.0 for seconds in walls.values())
        assert graph.last_walls == walls

    def test_context_stage_sub_walls_recorded_dotted(self):
        """A context stage returning ``{sub: seconds}`` gets dotted wall
        entries alongside its own measured wall (how the cluster stage
        attributes the partition pool's time inside its total)."""
        graph = StageGraph([
            Stage("setup", lambda ctx: ctx.update(items=[1]),
                  provides=("items",)),
            Stage("cluster", lambda ctx: {"map": 1.25, "reduce": 0.5}),
        ])
        walls = graph.run({})
        assert walls["cluster.map"] == 1.25
        assert walls["cluster.reduce"] == 0.5
        assert walls["cluster"] >= 0.0
        assert graph.last_walls == walls

    def test_non_mapping_stage_return_is_ignored(self):
        graph = StageGraph([Stage("quirky", lambda ctx: 42)])
        walls = graph.run({})
        assert set(walls) == {"quirky"}

    def test_describe_lists_dataflow(self):
        graph = StageGraph([
            Stage("produce", lambda ctx: None, requires=("samples",),
                  provides=("value",)),
            Stage("per_item", lambda ctx, item, carry: None, over="value"),
        ])
        text = graph.describe()
        assert "produce[samples -> value]" in text
        assert "per_item (per value)" in text
        assert graph.names() == ["produce", "per_item"]


class TestPipelineGraph:
    CANONICAL = ["shed", "prepare", "cluster", "label", "compile", "finalize"]

    def test_cold_graph_shape(self):
        kizzle = Kizzle(KizzleConfig(machines=4))
        assert kizzle.day_graph().names() == self.CANONICAL

    def test_warm_graph_same_shape_different_impls(self):
        """The warm path is stage substitution, not a forked graph."""
        cold = Kizzle(KizzleConfig(machines=4))
        warm = Kizzle(KizzleConfig(
            machines=4, incremental=IncrementalConfig(enabled=True)))
        assert warm.day_graph().names() == cold.day_graph().names()
        by_name = {stage.name: stage for stage in cold.day_graph().stages}
        warm_by_name = {stage.name: stage
                        for stage in warm.day_graph().stages}
        for name in ("shed", "prepare", "label", "finalize"):
            assert by_name[name].fn.__name__ != warm_by_name[name].fn.__name__
        for name in ("cluster", "compile"):
            assert by_name[name].fn.__name__ == warm_by_name[name].fn.__name__

    def test_day_result_carries_stage_walls(self, small_generator):
        kizzle = Kizzle(KizzleConfig(machines=4))
        day = D(2014, 8, 5)
        batch = small_generator.generate_day(day)
        result = kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], day)
        assert set(result.stage_walls) == set(self.CANONICAL)
        summary = result.summary()
        for stage in self.CANONICAL:
            assert f"wall_{stage}_s" in summary

    def test_warm_day_reports_prepared_cache_stats(self, small_generator):
        kizzle = Kizzle(KizzleConfig(
            machines=4, incremental=IncrementalConfig(enabled=True)))
        for kit in ("nuclear", "angler", "rig", "sweetorange"):
            kizzle.seed_known_kit(
                kit, [small_generator.reference_core(kit, D(2014, 7, 31))])
        day = D(2014, 8, 5)
        samples = [(s.sample_id, s.content)
                   for s in small_generator.generate_day(day).samples]
        first = kizzle.process_day(samples, day)
        assert first.prepared_stats["raw_misses"] > 0
        # The repeated day reuses every prepared form: the lexer does not
        # run at all, and the counters are per-day deltas.
        second = kizzle.process_day(samples,
                                    day + datetime.timedelta(days=1))
        assert second.prepared_stats["raw_misses"] == 0
        summary = second.summary()
        assert summary["prepared_lexer_runs"] == 0
        assert summary["prepared_hits"] > 0

    def test_cold_day_reports_no_prepared_stats(self, small_generator):
        kizzle = Kizzle(KizzleConfig(machines=4))
        day = D(2014, 8, 5)
        batch = small_generator.generate_day(day)
        result = kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], day)
        assert result.prepared_stats == {}
        assert "prepared_lexer_runs" not in result.summary()
