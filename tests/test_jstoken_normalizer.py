"""Tests for HTML stripping and token abstraction."""

from __future__ import annotations

from repro.jstoken import (
    abstract_classes,
    abstract_token_string,
    concrete_values,
    strip_html,
    tokenize_sample,
)
from repro.jstoken.tokens import TokenClass


class TestStripHtml:
    def test_plain_javascript_passthrough(self):
        source = "var a = 1;"
        assert strip_html(source) == source

    def test_single_inline_script(self):
        document = "<html><body><script>var a = 1;</script></body></html>"
        assert strip_html(document).strip() == "var a = 1;"

    def test_multiple_scripts_concatenated(self):
        document = ("<html><script>var a = 1;</script>"
                    "<p>text</p><script>var b = 2;</script></html>")
        extracted = strip_html(document)
        assert "var a = 1;" in extracted
        assert "var b = 2;" in extracted

    def test_script_with_attributes(self):
        document = '<script type="text/javascript">var x = 9;</script>'
        assert "var x = 9;" in strip_html(document)

    def test_external_script_without_body_skipped(self):
        document = '<html><script src="//cdn/x.js"></script></html>'
        assert strip_html(document) == ""

    def test_case_insensitive_tags(self):
        document = "<SCRIPT>var q = 1;</SCRIPT>"
        assert "var q = 1;" in strip_html(document)

    def test_html_without_scripts(self):
        document = "<html><body><p>no js</p>" + "<script></script></body></html>"
        assert strip_html(document).strip() == ""

    def test_markup_outside_scripts_excluded(self):
        document = ("<html><body><div id='x'>SHOULD-NOT-APPEAR</div>"
                    "<script>var a=1;</script></body></html>")
        assert "SHOULD-NOT-APPEAR" not in strip_html(document)


class TestAbstraction:
    def test_abstract_token_string_keeps_keywords_and_punctuation(self):
        tokens = abstract_token_string("var count = other + 1;")
        assert tokens == ("var", "Identifier", "=", "Identifier", "+",
                          "String", ";")

    def test_identifier_names_do_not_matter(self):
        a = abstract_token_string("var aaa = bbb(ccc);")
        b = abstract_token_string("var xyz1 = qq($w);")
        assert a == b

    def test_string_contents_do_not_matter(self):
        a = abstract_token_string('f("abc");')
        b = abstract_token_string('f("completely different and longer");')
        assert a == b

    def test_structural_difference_matters(self):
        a = abstract_token_string("f(x);")
        b = abstract_token_string("f(x, y);")
        assert a != b

    def test_numbers_collapse_to_string_class(self):
        tokens = abstract_token_string("f(42);")
        assert "String" in tokens
        uncollapsed = tokenize_sample("f(42);")
        assert abstract_classes(uncollapsed, collapse=False)[2] == "Number"

    def test_abstract_classes_collapse_toggle(self):
        tokens = tokenize_sample("x = /re/; y = `t`;")
        collapsed = abstract_classes(tokens, collapse=True)
        raw = abstract_classes(tokens, collapse=False)
        assert "String" in collapsed
        assert "Regex" in raw and "Template" in raw

    def test_concrete_values_keep_quotes(self):
        values = concrete_values('f("abc");')
        assert '"abc"' in values

    def test_tokenize_sample_on_html(self):
        document = "<html><script>var a = 'z';</script></html>"
        tokens = tokenize_sample(document)
        assert [t.value for t in tokens] == ["var", "a", "=", "'z'", ";"]
        assert all(t.cls is not TokenClass.COMMENT for t in tokens)

    def test_abstraction_same_for_packed_variants(self, kits, rng, august_day):
        """Two samples of the same kit version abstract to the same string."""
        import random

        kit = kits["rig"]
        sample_a = kit.generate(august_day, random.Random(1))
        sample_b = kit.generate(august_day, random.Random(2))
        assert sample_a.content != sample_b.content
        assert abstract_token_string(sample_a.content) == \
            abstract_token_string(sample_b.content)
