"""Tests for result records, summaries and the reporting helpers that were
not already covered by the harness-level tests."""

from __future__ import annotations

import datetime

import pytest

from repro.clustering import Cluster, ClusteredSample
from repro.core.results import ClusterReport, DailyResult
from repro.distsim.mapreduce import MapReduceReport
from repro.labeling.labeler import ClusterLabel
from repro.signatures import Signature

D = datetime.date(2014, 8, 5)


def make_cluster(size=3, cluster_id=0):
    samples = [ClusteredSample(sample_id=f"{cluster_id}-{i}",
                               content="var a = 1;",
                               tokens=("var", "Identifier", "=", "String", ";"))
               for i in range(size)]
    return Cluster(cluster_id=cluster_id, samples=samples)


def make_report(kit=None, size=3, cluster_id=0, with_signature=False):
    label = ClusterLabel(kit=kit, overlap=0.9 if kit else 0.1,
                         best_family=kit or "nuclear", unpacked="var a;")
    signature = None
    if with_signature:
        signature = Signature(kit=kit or "x", pattern="vara=1;", created=D)
    return ClusterReport(cluster=make_cluster(size, cluster_id), label=label,
                         signature=signature)


class TestClusterReport:
    def test_properties(self):
        report = make_report(kit="rig", size=4)
        assert report.size == 4
        assert report.kit == "rig"

    def test_benign_report(self):
        report = make_report(kit=None)
        assert report.kit is None
        assert not report.label.is_malicious


class TestDailyResult:
    def build(self):
        result = DailyResult(date=D, sample_count=20, noise_count=2)
        result.clusters = [
            make_report(kit="rig", cluster_id=0, with_signature=True),
            make_report(kit="rig", cluster_id=1),
            make_report(kit=None, cluster_id=2),
        ]
        result.new_signatures = [result.clusters[0].signature]
        result.timing = MapReduceReport(machine_count=4, partitions=2,
                                        scatter_time=1.0, map_time=10.0,
                                        gather_time=2.0, reduce_time=5.0)
        return result

    def test_cluster_views(self):
        result = self.build()
        assert result.cluster_count == 3
        assert len(result.malicious_clusters) == 2
        assert len(result.benign_clusters) == 1
        assert set(result.clusters_by_kit()) == {"rig"}
        assert len(result.clusters_by_kit()["rig"]) == 2

    def test_summary(self):
        summary = self.build().summary()
        assert summary["samples"] == 20
        assert summary["clusters"] == 3
        assert summary["malicious_clusters"] == 2
        assert summary["new_signatures"] == 1
        assert summary["processing_minutes"] == pytest.approx(0.3)

    def test_summary_without_timing(self):
        result = DailyResult(date=D, sample_count=5)
        assert result.summary()["processing_minutes"] == 0.0


class TestMapReduceReportAccounting:
    def test_total_and_fraction(self):
        report = MapReduceReport(machine_count=10, partitions=5,
                                 scatter_time=1.0, map_time=5.0,
                                 gather_time=1.0, reduce_time=3.0)
        assert report.total_time == pytest.approx(10.0)
        assert report.reduce_fraction == pytest.approx(0.4)
        assert report.summary()["total_minutes"] == pytest.approx(10.0 / 60)

    def test_zero_total(self):
        report = MapReduceReport(machine_count=1, partitions=1,
                                 scatter_time=0.0, map_time=0.0,
                                 gather_time=0.0, reduce_time=0.0)
        assert report.reduce_fraction == 0.0
