"""Tests for the pruned, parallel distance engine.

Three layers of guarantees:

* the bit-parallel kernel is exactly the Levenshtein distance (property
  tested against the reference dynamic program);
* every prefilter is a true lower bound of the edit distance, so pruning can
  never change a within-epsilon verdict;
* an engine-backed DBSCAN produces byte-identical labels to the sequential
  metric-driven implementation on seeded telemetry, whatever combination of
  filters/cache/workers is configured.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering import ClusteredSample, DBSCAN, DistributedClusterer
from repro.distance import (
    DistanceEngine,
    DistanceEngineConfig,
    PairDistanceCache,
    TokenEditDistance,
    bitparallel_edit_distance,
    build_pattern_mask,
    edit_distance,
    length_lower_bound,
    normalized_edit_distance,
    qgram_lower_bound,
)
from repro.distance.metrics import _histogram_lower_bound
from repro.distsim import SimCluster
from repro.ekgen import StreamConfig, TelemetryGenerator

DEFAULT_SETTINGS = settings(max_examples=60, deadline=None,
                            suppress_health_check=[HealthCheck.too_slow])

token_alphabet = st.sampled_from(
    ["var", "Identifier", "String", "(", ")", "=", ";", "[", "]", "+"])
token_strings = st.lists(token_alphabet, min_size=0, max_size=40).map(tuple)
epsilons = st.floats(min_value=0.02, max_value=0.8)


def private_engine(**overrides) -> DistanceEngine:
    overrides.setdefault("shared_cache", False)
    return DistanceEngine(DistanceEngineConfig(**overrides))


class TestBitParallelKernel:
    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_equals_reference_dp(self, a, b):
        assert bitparallel_edit_distance(a, b) == edit_distance(a, b)

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_precomputed_mask_equals_adhoc(self, a, b):
        mask = build_pattern_mask(a)
        assert bitparallel_edit_distance(a, b, mask) == \
            bitparallel_edit_distance(a, b)

    def test_empty_sequences(self):
        assert bitparallel_edit_distance((), ()) == 0
        assert bitparallel_edit_distance((), ("a", "b")) == 2
        assert bitparallel_edit_distance(("a", "b"), ()) == 2

    def test_classic_strings(self):
        assert bitparallel_edit_distance(tuple("kitten"),
                                         tuple("sitting")) == 3
        assert bitparallel_edit_distance(tuple("flaw"), tuple("lawn")) == 2

    def test_long_sequences(self):
        a = tuple("abcdefghij" * 120)
        b = tuple("abcdefghiX" * 120)
        assert bitparallel_edit_distance(a, b) == edit_distance(a, b)


class TestPrefilterLowerBounds:
    """Every pruning layer must be a true lower bound of the normalized
    distance — otherwise pruning could flip clustering decisions."""

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_length_bound(self, a, b):
        assert length_lower_bound(a, b) <= \
            normalized_edit_distance(a, b) + 1e-9

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_bag_bound(self, a, b):
        assert _histogram_lower_bound(a, b) <= \
            normalized_edit_distance(a, b) + 1e-9

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings, st.integers(min_value=2,
                                                     max_value=5))
    def test_qgram_bound(self, a, b, q):
        assert qgram_lower_bound(a, b, q=q) <= \
            normalized_edit_distance(a, b) + 1e-9

    def test_qgram_bound_rejects_bad_q(self):
        with pytest.raises(ValueError):
            qgram_lower_bound(("a",), ("b",), q=0)


class TestEngineQueries:
    @DEFAULT_SETTINGS
    @given(token_strings, token_strings, epsilons)
    def test_within_matches_metric(self, a, b, epsilon):
        engine = private_engine()
        metric = TokenEditDistance(epsilon=epsilon)
        assert engine.within(a, b, epsilon) == metric.within(a, b, epsilon)

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_exact_distance_matches_dp(self, a, b):
        engine = private_engine()
        assert engine.exact_distance(a, b) == edit_distance(a, b)

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings, epsilons)
    def test_thresholded_distance_matches_metric(self, a, b, epsilon):
        engine = private_engine()
        metric = TokenEditDistance(epsilon=epsilon)
        got = engine.distance(a, b, max_normalized=epsilon)
        want = metric.distance(a, b)
        # Both report 1.0 beyond the threshold and the exact value below it.
        assert math.isclose(got, want) or (got == 1.0 and want > epsilon) \
            or (want == 1.0 and got > epsilon)

    def test_filters_disabled_still_exact(self):
        engine = private_engine(length_filter=False, bag_filter=False,
                                qgram_filter=False)
        a, b = tuple("aaaaaaaaaa"), tuple("bbbbbbbbbb")
        assert not engine.within(a, b, 0.1)
        assert engine.stats.kernel_calls == 1

    def test_stats_attribute_layers(self):
        engine = private_engine()
        # identical pair
        assert engine.within(tuple("abc"), tuple("abc"), 0.1)
        # length-pruned pair
        assert not engine.within(tuple("a"), tuple("a" * 30), 0.1)
        # kernel pair, then a cache hit for the same pair
        assert engine.within(tuple("abcdefghij"), tuple("abcdefghiX"), 0.2)
        assert engine.within(tuple("abcdefghij"), tuple("abcdefghiX"), 0.2)
        stats = engine.stats.as_dict()
        assert stats["identical"] == 1
        assert stats["length_pruned"] == 1
        assert stats["kernel_calls"] == 1
        assert stats["cache_hits"] == 1
        assert stats["pairs"] == 4

    def test_neighbourhoods_symmetry_and_count(self):
        points = [tuple("aaaaaaaaaa"), tuple("aaaaaaaaab"),
                  tuple("zzzzzzzzzz")]
        engine = private_engine()
        adjacency, comparisons = engine.neighbourhoods(points, 0.2)
        assert comparisons == 3
        assert adjacency[0] == [1]
        assert adjacency[1] == [0]
        assert adjacency[2] == []

    def test_cache_bounded(self):
        cache = PairDistanceCache(maxsize=2)
        cache.put(("a",), ("b",), 1)
        cache.put(("a",), ("c",), 1)
        cache.put(("a",), ("d",), 1)
        assert len(cache) == 2
        assert cache.get(("a",), ("b",)) is None  # evicted, oldest first
        assert cache.get(("a",), ("d",)) == 1

    def test_cache_key_unordered(self):
        cache = PairDistanceCache(maxsize=8)
        cache.put(tuple("ab"), tuple("xyz"), 3)
        assert cache.get(tuple("xyz"), tuple("ab")) == 3

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            DistanceEngineConfig(qgram_size=1)
        with pytest.raises(ValueError):
            DistanceEngineConfig(workers=-1)
        with pytest.raises(ValueError):
            DistanceEngineConfig(chunk_size=0)
        with pytest.raises(ValueError):
            DistanceEngineConfig(cache_size=-1)


def telemetry_points(seed=4242):
    generator = TelemetryGenerator(StreamConfig(
        benign_per_day=14,
        kit_daily_counts={"angler": 5, "sweetorange": 4, "nuclear": 3,
                          "rig": 3},
        seed=seed))
    import datetime

    batch = generator.generate_day(datetime.date(2014, 8, 5))
    return [ClusteredSample.from_content(s.sample_id, s.content).tokens
            for s in batch.samples]


class TestEngineBackedDBSCANEquivalence:
    """Engine-backed clustering must be byte-identical to the sequential
    metric-driven path on seeded telemetry — the acceptance criterion for
    swapping the engine into the daily loop."""

    @pytest.fixture(scope="class")
    def points(self):
        return telemetry_points()

    @pytest.mark.parametrize("epsilon", [0.02, 0.10, 0.30])
    def test_labels_identical_to_sequential(self, points, epsilon):
        sequential = DBSCAN(epsilon=epsilon, min_points=3,
                            metric=TokenEditDistance(epsilon=epsilon)
                            ).fit(points)
        engine_backed = DBSCAN(epsilon=epsilon, min_points=3,
                               engine=private_engine()).fit(points)
        assert engine_backed.labels == sequential.labels
        assert engine_backed.cluster_count == sequential.cluster_count

    @pytest.mark.parametrize("disabled", ["length_filter", "bag_filter",
                                          "qgram_filter"])
    def test_each_filter_ablated_is_identical(self, points, disabled):
        baseline = DBSCAN(epsilon=0.10, min_points=3,
                          engine=private_engine()).fit(points)
        ablated = DBSCAN(epsilon=0.10, min_points=3,
                         engine=private_engine(**{disabled: False})
                         ).fit(points)
        assert ablated.labels == baseline.labels

    def test_parallel_workers_identical(self, points):
        """The pool path must agree with the serial path (forced by a tiny
        parallel threshold so the fan-out actually runs)."""
        serial = DBSCAN(epsilon=0.10, min_points=3,
                        engine=private_engine(workers=1)).fit(points)
        parallel = DBSCAN(epsilon=0.10, min_points=3,
                          engine=private_engine(workers=2,
                                                parallel_threshold=1,
                                                chunk_size=8)).fit(points)
        assert parallel.labels == serial.labels

    def test_distributed_clusterer_attaches_engine_stats(self, points):
        samples = [ClusteredSample(sample_id=str(i), content="",
                                   tokens=tokens)
                   for i, tokens in enumerate(points)]
        clusterer = DistributedClusterer(
            epsilon=0.10, min_points=3,
            sim_cluster=SimCluster(machine_count=4),
            engine_config=DistanceEngineConfig(shared_cache=False))
        clusters, report = clusterer.run(samples, partitions=2)
        assert clusters
        assert report.distance_stats is not None
        assert report.distance_stats["pairs"] > 0
        summary = report.summary()
        assert summary["distance_pairs"] == float(
            report.distance_stats["pairs"])
