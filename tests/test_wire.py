"""Property and unit tests for the cluster wire codec (repro.exec.wire).

The contract under test: framed round-trips are lossless for the real task
payloads (``PartitionMapTask``/``PartitionMapResult``), and every malformed
input — truncated, oversized, version-mismatched, wrong-magic, or garbage
payload — raises a *typed* :class:`WireError`.  A reader must never hang on
a bad length and never unpickle bytes that failed header validation.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering.partition import ClusteredSample, PartitionMapResult, \
    PartitionMapTask
from repro.distance.engine import DistanceEngineConfig
from repro.exec import wire

DEFAULT_SETTINGS = settings(max_examples=60, deadline=None,
                            suppress_health_check=[HealthCheck.too_slow])

token_alphabet = st.sampled_from(
    ["var", "Identifier", "String", "(", ")", "=", ";", "+"])
token_strings = st.lists(token_alphabet, min_size=0, max_size=12).map(tuple)

samples = st.builds(
    ClusteredSample,
    sample_id=st.text(min_size=1, max_size=12),
    content=st.text(max_size=80),
    tokens=token_strings,
    weight=st.integers(min_value=1, max_value=9))

map_tasks = st.builds(
    PartitionMapTask,
    index=st.integers(min_value=0, max_value=63),
    samples=st.lists(samples, max_size=5),
    epsilon=st.floats(min_value=0.01, max_value=0.5,
                      allow_nan=False, allow_infinity=False),
    min_points=st.integers(min_value=1, max_value=5),
    engine_config=st.builds(
        DistanceEngineConfig,
        workers=st.integers(min_value=0, max_value=4),
        cache_size=st.integers(min_value=0, max_value=512),
        seed=st.integers(min_value=0, max_value=2**31 - 1)),
    seed=st.integers(min_value=0, max_value=2**31 - 1))

map_results = st.builds(
    PartitionMapResult,
    index=st.integers(min_value=0, max_value=63),
    clusters=st.just([]),
    comparisons=st.integers(min_value=0, max_value=10_000),
    cost=st.floats(min_value=0.0, max_value=1e9,
                   allow_nan=False, allow_infinity=False),
    output_bytes=st.floats(min_value=0.0, max_value=1e9,
                           allow_nan=False, allow_infinity=False),
    stats=st.dictionaries(st.sampled_from(["pairs", "kernel_calls",
                                           "cache_hits"]),
                          st.integers(min_value=0, max_value=1_000_000),
                          max_size=3),
    cache_entries=st.lists(
        st.tuples(token_strings, token_strings,
                  st.integers(min_value=0, max_value=500)),
        max_size=4),
    worker_id=st.one_of(st.none(), st.text(min_size=1, max_size=8)))


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @DEFAULT_SETTINGS
    @given(map_tasks)
    def test_partition_map_task_round_trips(self, task):
        assert wire.decode_frame(wire.encode_frame(task)) == task

    @DEFAULT_SETTINGS
    @given(map_results)
    def test_partition_map_result_round_trips(self, result):
        assert wire.decode_frame(wire.encode_frame(result)) == result

    @DEFAULT_SETTINGS
    @given(st.tuples(st.sampled_from(["hello", "task", "result",
                                      "heartbeat"]),
                     st.dictionaries(st.text(max_size=8),
                                     st.integers(), max_size=4)))
    def test_protocol_messages_round_trip(self, message):
        assert wire.decode_frame(wire.encode_frame(message)) == message

    def test_empty_payload_round_trips(self):
        assert wire.decode_frame(wire.encode_frame(None)) is None


# ----------------------------------------------------------------------
# malformed frames: typed errors, never garbage
# ----------------------------------------------------------------------
class TestMalformedFrames:
    @DEFAULT_SETTINGS
    @given(map_tasks, st.data())
    def test_any_truncation_raises_typed_error(self, task, data):
        """Cutting a valid frame anywhere short of its full length must
        raise a WireError (truncated — or, for a sub-magic prefix, the
        codec may report nothing more specific than truncation)."""
        frame = wire.encode_frame(task)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(wire.WireError) as excinfo:
            wire.decode_frame(frame[:cut])
        assert isinstance(excinfo.value, wire.FrameTruncated)

    def test_bad_magic_raises_before_unpickling(self):
        frame = bytearray(wire.encode_frame({"x": 1}))
        frame[:4] = b"HTTP"
        with pytest.raises(wire.BadMagic):
            wire.decode_frame(bytes(frame))

    def test_bad_magic_detected_even_in_short_buffer(self):
        with pytest.raises(wire.BadMagic):
            wire.decode_frame(b"GET / HT")

    def test_version_mismatch_raises(self):
        frame = bytearray(wire.encode_frame({"x": 1}))
        struct.pack_into(">H", frame, 4, wire.WIRE_VERSION + 1)
        with pytest.raises(wire.VersionMismatch):
            wire.decode_frame(bytes(frame))

    def test_oversized_declaration_raises_frame_too_large(self):
        frame = wire.encode_frame(list(range(1000)))
        payload_size = len(frame) - wire.HEADER.size - wire.TAG_SIZE
        with pytest.raises(wire.FrameTooLarge):
            wire.decode_frame(frame, max_bytes=payload_size - 1)

    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(wire.FrameTooLarge):
            wire.encode_frame(b"x" * 1024, max_bytes=16)

    def test_garbage_payload_raises_payload_error(self):
        body = b"\x93 definitely not a pickle \x00"
        header = wire.HEADER.pack(wire.MAGIC, wire.WIRE_VERSION, 1,
                                  len(body))
        frame = header + body + wire._tag(wire.UNAUTHENTICATED_KEY,
                                          header, body)
        with pytest.raises(wire.PayloadError):
            wire.decode_frame(frame)

    @DEFAULT_SETTINGS
    @given(st.binary(max_size=64))
    def test_arbitrary_bytes_never_unpickle_silently(self, blob):
        """Random bytes either fail with a typed WireError or — in the
        astronomically unlikely case they form a whole valid frame — decode
        to *something*; they never raise an untyped exception."""
        try:
            wire.decode_frame(blob)
        except wire.WireError:
            pass

    def test_header_is_validated_before_payload_is_unpickled(self):
        """A frame whose header fails must not have its payload unpickled
        (the payload here is a pickle that would explode on load)."""
        class Bomb:
            def __reduce__(self):
                return (pytest.fail,
                        ("payload was unpickled despite a bad header",))

        body = pickle.dumps(Bomb())
        frame = bytearray(wire.HEADER.pack(wire.MAGIC, wire.WIRE_VERSION, 1,
                                           len(body)) + body)
        struct.pack_into(">H", frame, 4, wire.WIRE_VERSION + 7)
        with pytest.raises(wire.VersionMismatch):
            wire.decode_frame(bytes(frame))


# ----------------------------------------------------------------------
# stream/socket transport
# ----------------------------------------------------------------------
class TestStreamTransport:
    def test_socket_round_trip(self):
        left, right = socket.socketpair()
        try:
            wire.send_frame(left, ("task", {"task_id": 3}))
            assert wire.recv_frame(right) == ("task", {"task_id": 3})
        finally:
            left.close()
            right.close()

    def test_clean_close_on_boundary_is_wire_closed(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(wire.WireClosed):
                wire.recv_frame(right)
        finally:
            right.close()

    def test_mid_frame_close_is_frame_truncated(self):
        """The drop-mid-frame fault: half a frame then EOF."""
        left, right = socket.socketpair()
        try:
            frame = wire.encode_frame(("result", {"task_id": 9,
                                                  "payload": "x" * 200}))
            left.sendall(frame[:len(frame) // 2])
            left.close()
            with pytest.raises(wire.FrameTruncated):
                wire.recv_frame(right)
        finally:
            right.close()

    def test_oversized_frame_rejected_before_payload_read(self):
        """recv_frame must raise on the header alone — without waiting for
        payload bytes that may never arrive."""
        left, right = socket.socketpair()
        try:
            left.sendall(wire.HEADER.pack(wire.MAGIC, wire.WIRE_VERSION, 1,
                                          2**31))
            # Deliberately send no payload: a reader that tried to consume
            # the declared bytes would block until the timeout below.
            right.settimeout(5.0)
            with pytest.raises(wire.FrameTooLarge):
                wire.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_read_frame_from_buffered_stream(self):
        buffer = io.BytesIO(wire.encode_frame({"a": 1})
                            + wire.encode_frame({"b": 2}))
        assert wire.read_frame(buffer) == {"a": 1}
        assert wire.read_frame(buffer) == {"b": 2}
        with pytest.raises(wire.WireClosed):
            wire.read_frame(buffer)

    def test_read_frame_truncated_stream(self):
        frame = wire.encode_frame({"a": 1})
        with pytest.raises(wire.FrameTruncated):
            wire.read_frame(io.BytesIO(frame[:-3]))


# ----------------------------------------------------------------------
# authentication: tampered or wrong-secret frames never reach decode
# ----------------------------------------------------------------------
class _DecodeBomb:
    """Pickles fine; explodes the test if the payload is ever decoded."""

    def __reduce__(self):
        return (pytest.fail,
                ("payload was decoded despite failing a pre-decode check",))


class TestAuthentication:
    def test_round_trip_under_a_secret(self):
        key = wire.derive_key("hunter2")
        frame = wire.encode_frame({"x": 1}, key=key)
        assert wire.decode_frame(frame, key=key) == {"x": 1}

    def test_wrong_secret_raises_auth_error(self):
        frame = wire.encode_frame({"x": 1}, key=wire.derive_key("right"))
        with pytest.raises(wire.AuthError):
            wire.decode_frame(frame, key=wire.derive_key("wrong"))

    def test_missing_secret_raises_auth_error(self):
        """An unauthenticated peer talking to a secret-bearing reader."""
        frame = wire.encode_frame({"x": 1})  # public default key
        with pytest.raises(wire.AuthError):
            wire.decode_frame(frame, key=wire.derive_key("s3cret"))

    @DEFAULT_SETTINGS
    @given(st.data())
    def test_any_flipped_bit_raises_auth_error(self, data):
        """Flipping any single bit of body or tag must fail the tag check
        (header flips may fail header validation first, also typed)."""
        key = wire.derive_key("bits")
        frame = bytearray(wire.encode_frame(("task", {"task_id": 1}),
                                            key=key))
        position = data.draw(st.integers(min_value=wire.HEADER.size,
                                         max_value=len(frame) - 1))
        frame[position] ^= 1 << data.draw(st.integers(min_value=0,
                                                      max_value=7))
        with pytest.raises(wire.AuthError):
            wire.decode_frame(bytes(frame), key=key)

    def test_tampered_frame_never_reaches_decode(self):
        key = wire.derive_key("s")
        frame = bytearray(wire.encode_frame_raw(pickle.dumps(_DecodeBomb()),
                                                key=key))
        frame[-1] ^= 0xFF
        with pytest.raises(wire.AuthError):
            wire.decode_frame(bytes(frame), key=key)

    def test_unauthenticated_frame_never_reaches_decode(self):
        """Even a *valid* pickle from a peer without the secret is never
        deserialized — auth runs strictly before decode."""
        frame = wire.encode_frame_raw(pickle.dumps(_DecodeBomb()))
        with pytest.raises(wire.AuthError):
            wire.decode_frame(frame, key=wire.derive_key("fleet-secret"))


# ----------------------------------------------------------------------
# freshness: replayed frames die after auth, before decode
# ----------------------------------------------------------------------
class TestReplayProtection:
    def test_replayed_sequence_raises(self):
        key = wire.derive_key("r")
        frame = wire.encode_frame({"x": 1}, key=key, seq=5)
        assert wire.decode_frame(frame, key=key, last_seq=4) == {"x": 1}
        with pytest.raises(wire.ReplayError):
            wire.decode_frame(frame, key=key, last_seq=5)

    def test_stale_sequence_raises(self):
        key = wire.derive_key("r")
        frame = wire.encode_frame({"x": 1}, key=key, seq=3)
        with pytest.raises(wire.ReplayError):
            wire.decode_frame(frame, key=key, last_seq=7)

    def test_replayed_frame_never_reaches_decode(self):
        frame = wire.encode_frame_raw(pickle.dumps(_DecodeBomb()), seq=2)
        with pytest.raises(wire.ReplayError):
            wire.decode_frame(frame, last_seq=2)


# ----------------------------------------------------------------------
# allow-listed decode: a hostile pickle is structurally inert
# ----------------------------------------------------------------------
class TestForbiddenPayload:
    def test_os_system_pickle_is_forbidden(self):
        import os

        frame = wire.encode_frame_raw(pickle.dumps(os.system, protocol=4))
        with pytest.raises(wire.ForbiddenPayload):
            wire.decode_frame(frame)

    def test_reduce_to_forbidden_callable_is_rejected_before_call(self):
        """A __reduce__ payload targeting subprocess never gets its callable
        resolved, let alone invoked."""
        class Evil:
            def __reduce__(self):
                import subprocess
                return (subprocess.check_output, (["true"],))

        frame = wire.encode_frame_raw(pickle.dumps(Evil(), protocol=4))
        with pytest.raises(wire.ForbiddenPayload):
            wire.decode_frame(frame)

    def test_loads_payload_allows_task_types(self):
        task = PartitionMapTask(index=0, samples=[], epsilon=0.1,
                                min_points=3,
                                engine_config=DistanceEngineConfig())
        assert wire.loads_payload(wire.dumps_payload(task)) == task

    def test_persistent_id_is_forbidden(self):
        class Pickler(pickle.Pickler):
            def persistent_id(self, obj):
                if obj == "external":
                    return "pid-0"
                return None

        buffer = io.BytesIO()
        Pickler(buffer, protocol=4).dump(["external"])
        with pytest.raises(wire.ForbiddenPayload):
            wire.loads_payload(buffer.getvalue())


# ----------------------------------------------------------------------
# the per-connection codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_socket_conversation_round_trips(self):
        left, right = socket.socketpair()
        sender = wire.FrameCodec("pair-secret")
        receiver = wire.FrameCodec("pair-secret")
        try:
            for expected in (("hello", {"pid": 1}), ("request", {}),
                             ("result", {"task_id": 0, "payload": None})):
                sender.send(left, expected)
                assert receiver.recv(right) == expected
        finally:
            left.close()
            right.close()

    def test_sequences_increase_per_send(self):
        codec = wire.FrameCodec()
        first = codec.encode({"n": 1})
        second = codec.encode({"n": 2})
        receiver = wire.FrameCodec()
        assert receiver.decode(first) == {"n": 1}
        assert receiver.decode(second) == {"n": 2}

    def test_replayed_bytes_rejected_by_receiving_codec(self):
        codec = wire.FrameCodec()
        frame = codec.encode(("heartbeat", {}))
        receiver = wire.FrameCodec()
        assert receiver.decode(frame) == ("heartbeat", {})
        with pytest.raises(wire.ReplayError):
            receiver.decode(frame)

    def test_send_returns_frame_byte_count(self):
        left, right = socket.socketpair()
        codec = wire.FrameCodec()
        try:
            sent = codec.send(left, ("idle", {}))
            assert sent == len(wire.encode_frame(("idle", {}), seq=1))
            assert wire.FrameCodec().recv(right) == ("idle", {})
        finally:
            left.close()
            right.close()

    def test_mismatched_secrets_cannot_talk(self):
        codec = wire.FrameCodec("alpha")
        eavesdropper = wire.FrameCodec("beta")
        frame = codec.encode({"x": 1})
        with pytest.raises(wire.AuthError):
            eavesdropper.decode(frame)
