"""Tests for the signature generation layer."""

from __future__ import annotations

import datetime
import random
import re

import pytest

from repro.jstoken import abstract_token_string
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures import (
    Signature,
    SignatureCompiler,
    SignatureConfig,
    align_cluster,
    build_pattern,
    common_token_window,
    generalize_column,
)
from repro.signatures.alignment import TokenColumn
from repro.signatures.subsequence import _find_window_of_length

D = datetime.date(2014, 8, 5)


class TestCommonWindow:
    def test_identical_sequences(self):
        tokens = tuple("abcdefghij")
        window = common_token_window([tokens, tokens, tokens])
        assert window is not None
        assert window.length == 10
        assert window.positions == [0, 0, 0]

    def test_shared_middle_section(self):
        a = tuple("xx" + "commonpart" + "yy")
        b = tuple("qqq" + "commonpart" + "zz")
        window = common_token_window([a, b])
        assert window is not None
        assert "".join(window.window).find("commonpart") != -1

    def test_respects_cap(self):
        tokens = tuple("a" * 50 + "bcdefgh" + "a" * 50)
        window = common_token_window([tokens, tokens], max_tokens=20)
        assert window is not None
        assert window.length <= 20

    def test_uniqueness_constraint(self):
        """A window must occur exactly once in every sample."""
        a = tuple("abcabc")  # every 3-gram of 'abc' occurs twice
        b = tuple("abcabc")
        window = common_token_window([a, b])
        assert window is not None
        # the selected window must be unique in each sample
        joined = "".join(a)
        assert joined.count("".join(window.window)) == 1

    def test_no_common_window(self):
        assert common_token_window([tuple("aaaa"), tuple("bbbb")]) is None

    def test_empty_inputs(self):
        assert common_token_window([]) is None
        assert common_token_window([tuple("abc"), ()]) is None

    def test_find_window_of_length_none_cases(self):
        assert _find_window_of_length([tuple("ab")], 5) is None
        assert _find_window_of_length([tuple("ab")], 0) is None

    def test_positions_point_at_window(self):
        a = tuple("prefix" + "SIGNAL" + "tail")
        b = tuple("pp" + "SIGNAL" + "longertailhere")
        window = common_token_window([a, b])
        assert window is not None
        for sample, position in zip([a, b], window.positions):
            assert sample[position:position + window.length] == window.window


class TestGeneralization:
    def test_constant_column_is_literal(self):
        assert generalize_column(["eval", "eval", "eval"]) == "eval"

    def test_literal_is_escaped(self):
        fragment = generalize_column(["a(b)", "a(b)"])
        assert re.fullmatch(fragment, "a(b)")

    def test_lowercase_template(self):
        fragment = generalize_column(["abc", "defg"])
        assert fragment == "[a-z]{3,4}"

    def test_digit_template(self):
        fragment = generalize_column(["123", "98765"])
        assert fragment == "[0-9]{3,5}"

    def test_alphanumeric_template(self):
        fragment = generalize_column(["a1B2", "Zz9"])
        assert fragment.startswith("[0-9a-zA-Z]")

    def test_identifier_template(self):
        fragment = generalize_column(["a_b$1", "c_d$2345"])
        assert fragment.startswith("[0-9a-zA-Z_$]")

    def test_fixed_length_quantifier(self):
        fragment = generalize_column(["abc", "xyz"])
        assert fragment == "[a-z]{3}"

    def test_fallback_dot_pattern(self):
        fragment = generalize_column(["has space", "other text!"])
        assert fragment.startswith(".{")

    def test_empty_value_fallback(self):
        fragment = generalize_column(["", "abc"])
        assert fragment == ".{0,3}"

    def test_generated_fragment_matches_all_observed(self):
        values = ["Euur1V", "jkb0hA", "QB0Xk"]
        fragment = generalize_column(values)
        for value in values:
            assert re.fullmatch(fragment, value), (fragment, value)

    def test_paper_figure9_shape(self):
        """The Figure 9 example: identifiers generalize, punctuation stays."""
        columns = [
            TokenColumn(0, "Identifier", ["Euur1V", "jkb0hA", "QB0Xk"]),
            TokenColumn(1, "=", ["=", "=", "="]),
            TokenColumn(2, "this", ["this", "this", "this"]),
            TokenColumn(3, "[", ["[", "[", "["]),
            TokenColumn(4, "String", ["l9D", "uqA", "k3LSC"]),
            TokenColumn(5, "]", ["]", "]", "]"]),
            TokenColumn(6, "(", ["(", "(", "("]),
            TokenColumn(7, "String", ["ev#333399al", "ev#ccff00al",
                                      "ev#33cc00al"]),
            TokenColumn(8, ")", [")", ")", ")"]),
            TokenColumn(9, ";", [";", ";", ";"]),
        ]
        pattern = build_pattern(columns)
        for text in ("Euur1V=this[l9D](ev#333399al);",
                     "jkb0hA=this[uqA](ev#ccff00al);",
                     "QB0Xk=this[k3LSC](ev#33cc00al);"):
            assert re.search(pattern, text), pattern

    def test_backreferences_tie_repeated_identifiers(self):
        columns = [
            TokenColumn(0, "Identifier", ["aaa", "bbb"]),
            TokenColumn(1, "(", ["(", "("]),
            TokenColumn(2, "Identifier", ["aaa", "bbb"]),
            TokenColumn(3, ")", [")", ")"]),
        ]
        pattern = build_pattern(columns, use_backreferences=True)
        assert "(?P<var0>" in pattern and "(?P=var0)" in pattern
        assert re.search(pattern, "aaa(aaa)")
        assert re.search(pattern, "bbb(bbb)")
        assert not re.search(pattern, "aaa(bbb)")

    def test_backreferences_disabled(self):
        columns = [
            TokenColumn(0, "Identifier", ["aaa", "bbb"]),
            TokenColumn(1, "(", ["(", "("]),
            TokenColumn(2, "Identifier", ["aaa", "bbb"]),
            TokenColumn(3, ")", [")", ")"]),
        ]
        pattern = build_pattern(columns, use_backreferences=False)
        assert "(?P=" not in pattern
        assert re.search(pattern, "aaa(bbb)")


class TestAlignment:
    def test_align_simple_cluster(self):
        contents = ['var aa = f("x1");', 'var bb = f("y22");',
                    'var cc = f("z333");']
        columns = align_cluster(contents)
        assert columns is not None
        classes = [column.token_class for column in columns]
        assert classes[0] == "var"
        string_columns = [c for c in columns if c.token_class == "String"]
        # quotes are stripped in the collected values
        assert all('"' not in value
                   for column in string_columns for value in column.values)

    def test_align_no_common_window(self):
        assert align_cluster(["var a = 1;", "function b() {}"]) is None or \
            len(align_cluster(["var a = 1;", "function b() {}"])) < 5

    def test_distinct_values_and_is_constant(self):
        column = TokenColumn(0, "String", ["a", "a", "b"])
        assert column.distinct_values == ["a", "b"]
        assert not column.is_constant
        assert TokenColumn(0, "=", ["=", "="]).is_constant


class TestSignatureModel:
    def test_matches_normalized(self):
        signature = Signature(kit="rig", pattern=r"vara=\[0-9]{2}",
                              created=D)
        assert signature.length == len(signature.pattern)

    def test_matches_sample_normalizes(self):
        signature = Signature(kit="test", pattern=r"varx=abc;", created=D)
        assert signature.matches_sample('<html><script>var x = "abc";</script></html>')

    def test_signature_id_deterministic(self):
        a = Signature(kit="rig", pattern="abc", created=D)
        b = Signature(kit="rig", pattern="abc", created=D)
        assert a.signature_id == b.signature_id

    def test_compiled_is_cached(self):
        signature = Signature(kit="x", pattern="abc", created=D)
        assert signature.compiled is signature.compiled


class TestSignatureCompiler:
    def make_cluster(self, kit, kits, count=6, day=None):
        day = day or datetime.date(2014, 8, 5)
        return [kits[kit].generate(day, random.Random(100 + i)).content
                for i in range(count)]

    @pytest.mark.parametrize("kit", ["rig", "nuclear", "angler", "sweetorange"])
    def test_signature_matches_cluster_samples(self, kits, kit):
        contents = self.make_cluster(kit, kits)
        signature = SignatureCompiler().compile_cluster(contents, kit, D)
        assert signature is not None
        for content in contents:
            assert signature.matches(normalize_for_scan(content))

    @pytest.mark.parametrize("kit", ["rig", "nuclear", "sweetorange"])
    def test_signature_does_not_match_benign(self, kits, kit, august_day):
        from repro.ekgen import BenignGenerator

        contents = self.make_cluster(kit, kits)
        signature = SignatureCompiler().compile_cluster(contents, kit, D)
        generator = BenignGenerator()
        for seed in range(10):
            benign = generator.generate(august_day, random.Random(seed))
            assert not signature.matches(normalize_for_scan(benign.content))

    def test_signature_does_not_match_other_kits(self, kits):
        nuclear_sig = SignatureCompiler().compile_cluster(
            self.make_cluster("nuclear", kits), "nuclear", D)
        for other in ("rig", "angler", "sweetorange"):
            sample = kits[other].generate(datetime.date(2014, 8, 5),
                                          random.Random(55)).content
            assert not nuclear_sig.matches(normalize_for_scan(sample))

    def test_signature_generalizes_to_unseen_samples_same_version(self, kits):
        contents = self.make_cluster("nuclear", kits, count=10)
        signature = SignatureCompiler().compile_cluster(contents, "nuclear", D)
        unseen = kits["nuclear"].generate(datetime.date(2014, 8, 5),
                                          random.Random(999)).content
        assert signature.matches(normalize_for_scan(unseen))

    def test_signature_breaks_when_packer_changes(self, kits):
        """A Nuclear signature built before the delimiter rotation no longer
        matches samples after it — the adversarial cycle that forces a new
        signature (Figures 5 and 12)."""
        before = self.make_cluster("nuclear", kits, count=6,
                                   day=datetime.date(2014, 8, 10))
        signature = SignatureCompiler().compile_cluster(before, "nuclear", D)
        after = kits["nuclear"].generate(datetime.date(2014, 8, 20),
                                         random.Random(1)).content
        assert not signature.matches(normalize_for_scan(after))

    def test_token_cap_respected(self, kits):
        contents = self.make_cluster("angler", kits)
        signature = SignatureCompiler(SignatureConfig(max_window_tokens=50)) \
            .compile_cluster(contents, "angler", D)
        assert signature is not None
        assert signature.token_length <= 50

    def test_short_windows_discarded(self):
        compiler = SignatureCompiler(SignatureConfig(min_window_tokens=10))
        assert compiler.compile_cluster(["var a;", "var b;"], "x", D) is None

    def test_empty_cluster(self):
        assert SignatureCompiler().compile_cluster([], "x", D) is None

    def test_created_date_recorded(self, kits):
        signature = SignatureCompiler().compile_cluster(
            self.make_cluster("rig", kits), "rig", D)
        assert signature.created == D
        assert signature.source == "kizzle"
