"""Tests for the incremental day-over-day pipeline (PR 2).

Covers the warm path end to end: the fast normal form and its verdict
equivalence with the lexer-based normalizer, required-literal anchor
extraction and the prescan's soundness, the indexed signature database,
sentinel-weighted clustering, known-sample shedding (which must never drop
an unmatched sample), carry-forward label inheritance, and the
warm-versus-cold equivalence of signature evolution and per-day FP/FN
metrics across a window containing a packer change.
"""

from __future__ import annotations

import datetime
import random

import pytest

from repro.clustering.carryforward import CarryForwardIndex, ClusterAnchor
from repro.clustering.dbscan import DBSCAN
from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.core.prepared import PreparedCache
from repro.distsim.mapreduce import MapReduceReport
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.evalharness import ExperimentConfig, MonthExperiment
from repro.scanner.avbaseline import SimulatedCommercialAV
from repro.scanner.engine import ScanEngine, SignatureDatabase
from repro.scanner.normalizer import fast_normalize, normalize_for_scan
from repro.signatures.anchors import best_anchor, required_literals
from repro.signatures.signature import Signature

D = datetime.date
KITS = ("nuclear", "angler", "rig", "sweetorange")


def _seeded_kizzle(generator, incremental=None, machines=6):
    kizzle = Kizzle(KizzleConfig(
        machines=machines, min_points=3,
        incremental=incremental or IncrementalConfig()))
    for kit in KITS:
        cores = [generator.reference_core(
            kit, D(2014, 7, 31) - datetime.timedelta(days=i))
            for i in range(3)]
        kizzle.seed_known_kit(kit, cores)
    return kizzle


def _warm_config(**overrides):
    return IncrementalConfig(enabled=True, **overrides)


# ----------------------------------------------------------------------
# fast normal form
# ----------------------------------------------------------------------
class TestFastNormalize:
    def test_strips_whitespace_outside_strings(self):
        assert fast_normalize("var  a =\n 1;") == "vara=1;"

    def test_preserves_string_interiors(self):
        assert fast_normalize('a = "x  y";') == "a=x  y;"
        assert fast_normalize("a = 'p q';") == "a=p q;"

    def test_handles_escaped_quotes(self):
        assert fast_normalize(r'a = "x\"y z";') == r'a=x\"y z;'

    def test_verdict_equivalent_on_stream(self, small_generator):
        """Signature and AV-rule verdicts agree between the exact and fast
        normal forms across several days (including newly compiled
        signatures)."""
        kizzle = _seeded_kizzle(small_generator)
        av = SimulatedCommercialAV(timeline=small_generator.timeline,
                                   study_start=D(2014, 8, 1))
        for offset in range(3):
            day = D(2014, 8, 1) + datetime.timedelta(days=offset)
            batch = small_generator.generate_day(day)
            kizzle.process_day(
                [(s.sample_id, s.content) for s in batch.samples], day)
            signatures = kizzle.database.signatures_for(as_of=day)
            rules = av.rules_deployed(day)
            for sample in batch.samples:
                exact = normalize_for_scan(sample.content)
                fast = fast_normalize(sample.content)
                for signature in signatures:
                    assert signature.matches(exact) == \
                        signature.matches(fast), signature.signature_id
                for rule in rules:
                    exact_verdict = rule.matches(sample.content, exact)
                    fast_verdict = (rule.compiled.search(sample.content)
                                    is not None) \
                        or (rule.compiled.search(fast) is not None)
                    assert exact_verdict == fast_verdict, rule.name


# ----------------------------------------------------------------------
# required-literal anchors
# ----------------------------------------------------------------------
class TestAnchors:
    @pytest.mark.parametrize("pattern,expected", [
        (r"varaa=xx\.join", ["varaa=xx.join"]),
        (r"ab(cd)?ef", ["ab", "ef"]),
        (r"ab(?:cd)ef", ["ab", "cd", "ef"]),
        (r"ab[0-9a-z]{3,9}cd", ["ab", "cd"]),
        (r"a|b", []),
        (r"(?P<var0>[a-z]{3,5})x=42", ["x=42"]),
        (r"ab(?P=var0)cd", ["ab", "cd"]),
        (r"abc+de", ["ab", "de"]),
        (r"ab(?=zz)cd", ["ab", "cd"]),
    ])
    def test_required_literals(self, pattern, expected):
        assert required_literals(pattern) == expected

    def test_best_anchor_length_floor(self):
        assert best_anchor(r"ab[0-9]+cd") is None
        assert best_anchor(r"longenoughanchor[0-9]+x") == "longenoughanchor"

    def test_anchor_is_required_on_real_signatures(self, small_generator):
        """Every literal extracted from a compiled signature appears in
        every text the signature matches: the prescan can never reject a
        matching sample."""
        kizzle = _seeded_kizzle(small_generator)
        day = D(2014, 8, 1)
        batch = small_generator.generate_day(day)
        kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], day)
        signatures = list(kizzle.database)
        assert signatures
        for sample in batch.samples:
            normalized = normalize_for_scan(sample.content)
            for signature in signatures:
                if signature.matches(normalized):
                    assert signature.could_match(normalized)
                    for literal in required_literals(signature.pattern):
                        assert literal in normalized

    def test_quantified_group_literals_not_required(self):
        # A quantified group's body must not leak into the anchors.
        assert required_literals(r"start(middle)?end") == ["start", "end"]
        assert "middle" not in "".join(required_literals(r"x(abcdef)*y"))


# ----------------------------------------------------------------------
# indexed signature database
# ----------------------------------------------------------------------
class TestSignatureDatabaseIndex:
    @staticmethod
    def _reference_signatures_for(entries, kit, as_of):
        selected = entries
        if kit is not None:
            selected = [s for s in selected if s.kit == kit]
        if as_of is not None:
            selected = [s for s in selected if s.created <= as_of]
        return list(selected)

    def test_matches_reference_semantics(self):
        rng = random.Random(7)
        kits = ["angler", "rig", "nuclear"]
        entries = []
        database = SignatureDatabase()
        for index in range(40):
            signature = Signature(
                kit=rng.choice(kits), pattern=f"pattern{index}",
                created=D(2014, 8, rng.randint(1, 28)))
            entries.append(signature)
            database.add(signature)
        dates = [None] + [D(2014, 8, day) for day in (1, 5, 14, 28)]
        for kit in [None] + kits:
            for as_of in dates:
                reference = self._reference_signatures_for(entries, kit, as_of)
                got = database.signatures_for(kit=kit, as_of=as_of)
                assert sorted(s.signature_id for s in got) == \
                    sorted(s.signature_id for s in reference)
        # latest_for ties break like max(key=created): first inserted wins.
        for kit in kits:
            for as_of in dates:
                reference = self._reference_signatures_for(entries, kit, as_of)
                expected = max(reference, key=lambda s: s.created) \
                    if reference else None
                got = database.latest_for(kit, as_of=as_of)
                if expected is None:
                    assert got is None
                else:
                    assert got.signature_id == expected.signature_id

    def test_insertion_order_preserved_without_date_filter(self):
        database = SignatureDatabase()
        later = Signature(kit="angler", pattern="b", created=D(2014, 8, 9))
        earlier = Signature(kit="angler", pattern="a", created=D(2014, 8, 2))
        database.add(later)
        database.add(earlier)
        assert [s.pattern for s in database.signatures_for()] == ["b", "a"]
        assert [s.pattern for s in database.signatures_for(kit="angler")] \
            == ["b", "a"]

    def test_generation_counter(self):
        database = SignatureDatabase()
        assert database.generation == 0
        database.add(Signature(kit="rig", pattern="x", created=D(2014, 8, 1)))
        assert database.generation == 1


# ----------------------------------------------------------------------
# weighted clustering primitives
# ----------------------------------------------------------------------
class TestWeights:
    def test_dbscan_external_weights_match_duplicates(self):
        points = [("a", "b", "c"), ("a", "b", "c"), ("a", "b", "c"),
                  ("x", "y", "z")]
        collapsed = [("a", "b", "c"), ("x", "y", "z")]
        expanded = DBSCAN(epsilon=0.1, min_points=3).fit(points)
        weighted = DBSCAN(epsilon=0.1, min_points=3).fit(
            collapsed, weights=[3, 1])
        assert expanded.labels[0] == weighted.labels[0] == 0
        assert expanded.labels[3] == weighted.labels[1] == -1

    def test_dbscan_weights_length_mismatch(self):
        with pytest.raises(ValueError):
            DBSCAN().fit([("a",)], weights=[1, 2])

    def test_weighted_prototype_matches_expanded(self):
        from repro.clustering.prototypes import select_prototype

        template = tuple("abcdefgh")
        drifted = tuple("abcdefxy")
        expanded = [template] * 5 + [drifted]
        collapsed = [template, drifted]
        expanded_choice = expanded[select_prototype(expanded)]
        collapsed_choice = collapsed[select_prototype(collapsed,
                                                     weights=[5, 1])]
        assert expanded_choice == collapsed_choice == template


# ----------------------------------------------------------------------
# carry-forward index
# ----------------------------------------------------------------------
class TestCarryForward:
    def test_match_and_ttl(self):
        index = CarryForwardIndex(epsilon=0.10, ttl_days=2)
        tokens = tuple("abcdefghij")
        index.anchors = [ClusterAnchor(
            tokens=tokens, kit="angler", overlap=0.9, best_family="angler",
            layers=1, last_seen=D(2014, 8, 1), weight=5)]
        assert index.match(tokens) is not None
        assert index.match(tuple("zzzzzzzzzz")) is None
        # Not re-observed for > ttl days: dropped on update.
        index.update([], D(2014, 8, 4))
        assert index.anchors == []

    def test_refresh_kits_keeps_anchor_alive(self):
        index = CarryForwardIndex(epsilon=0.10, ttl_days=2)
        tokens = tuple("abcdefghij")
        index.anchors = [ClusterAnchor(
            tokens=tokens, kit="angler", overlap=0.9, best_family="angler",
            layers=1, last_seen=D(2014, 8, 1), weight=5)]
        index.refresh_kits(["angler"], D(2014, 8, 4))
        index.update([], D(2014, 8, 5))
        assert len(index.anchors) == 1

    def test_max_anchors_bound(self):
        index = CarryForwardIndex(max_anchors=2, ttl_days=30)
        for day in (1, 2, 3):
            index.anchors.append(ClusterAnchor(
                tokens=(str(day),) * 10, kit=None, overlap=0.0,
                best_family=None, layers=0, last_seen=D(2014, 8, day),
                weight=day))
        index.update([], D(2014, 8, 4))
        assert len(index.anchors) == 2
        assert {a.last_seen.day for a in index.anchors} == {2, 3}


# ----------------------------------------------------------------------
# the warm pipeline
# ----------------------------------------------------------------------
class TestWarmPipeline:
    @pytest.fixture(scope="class")
    def generator(self):
        return TelemetryGenerator(StreamConfig(
            benign_per_day=10,
            kit_daily_counts={"angler": 6, "nuclear": 4, "sweetorange": 4,
                              "rig": 3},
            seed=99))

    def test_drift_free_repeated_day_is_equivalent(self, generator):
        """Processing the same day twice: the warm second pass sheds the
        known stream, carries every cluster forward, and ends with exactly
        the same deployed signatures as the cold second pass."""
        day = D(2014, 8, 5)
        batch = generator.generate_day(day)
        samples = [(s.sample_id, s.content) for s in batch.samples]

        cold = _seeded_kizzle(generator)
        warm = _seeded_kizzle(generator, incremental=_warm_config())
        for kizzle in (cold, warm):
            kizzle.process_day(samples, day)
            kizzle.process_day(samples, day + datetime.timedelta(days=1))

        cold_db = [(s.kit, s.created, s.pattern) for s in cold.database]
        warm_db = [(s.kit, s.created, s.pattern) for s in warm.database]
        assert cold_db == warm_db

    def test_repeated_day_sheds_and_carries(self, generator):
        day = D(2014, 8, 5)
        batch = generator.generate_day(day)
        samples = [(s.sample_id, s.content) for s in batch.samples]
        warm = _seeded_kizzle(generator, incremental=_warm_config())
        first = warm.process_day(samples, day)
        second = warm.process_day(samples, day + datetime.timedelta(days=1))
        assert first.shed_count == 0
        # Second pass: every sample is either shed (signature-covered or an
        # exact repeat of labeled content) or re-clustered; nothing novel.
        assert second.shed_count > 0
        assert second.new_signatures == []
        assert second.carried_cluster_count == len(second.clusters)
        # Every cluster is pure sentinel weight or re-observed samples.
        labeled = {record.sample_id for record in second.shed}
        assert labeled.issubset({sample_id for sample_id, _ in samples})

    def test_shedding_never_drops_unmatched_sample(self, generator):
        """A sample no deployed signature matches and whose content was
        never labeled must reach the clustering stage."""
        day = D(2014, 8, 5)
        batch = generator.generate_day(day)
        samples = [(s.sample_id, s.content) for s in batch.samples]
        warm = _seeded_kizzle(generator, incremental=_warm_config())
        warm.process_day(samples, day)

        novel_id = "novel-0"
        novel_content = "<script>var zz = totallyNovelFunction(1,2,3);" \
            "zz.unseen();</script>"
        result = warm.process_day(
            samples + [(novel_id, novel_content)],
            day + datetime.timedelta(days=1))
        shed_ids = {record.sample_id for record in result.shed}
        assert novel_id not in shed_ids
        # Every shed sample really is known: matched by a deployed
        # signature or an exact repeat of previously labeled content.
        engine = ScanEngine(warm.database, mode="fast",
                            prepared=warm.prepared)
        content_by_id = dict(samples)
        for record in result.shed:
            if record.reason == "signature":
                verdict = engine.scan(record.sample_id,
                                      content_by_id[record.sample_id],
                                      as_of=result.date)
                assert verdict.detected

    def test_warm_cold_metrics_identical_across_packer_change(self):
        """Eight days spanning the Angler August 13 update: identical
        per-day FP/FN for both engines, and substantially less lexer work
        on the warm path."""
        stream = StreamConfig(
            benign_per_day=8,
            kit_daily_counts={"angler": 6, "nuclear": 4, "sweetorange": 4,
                              "rig": 3},
            seed=20140801)

        def run(incremental):
            config = ExperimentConfig(
                start=D(2014, 8, 9), end=D(2014, 8, 16), seed_days=2,
                stream=stream,
                kizzle=KizzleConfig(
                    machines=6, min_points=3,
                    incremental=IncrementalConfig(enabled=incremental)))
            experiment = MonthExperiment(config)
            report = experiment.run()
            return report, experiment.kizzle

        cold_report, cold_kizzle = run(False)
        warm_report, warm_kizzle = run(True)

        for cold_day, warm_day in zip(cold_report.days, warm_report.days):
            assert cold_day.kizzle.confusion.false_positives == \
                warm_day.kizzle.confusion.false_positives, cold_day.date
            assert cold_day.kizzle.confusion.false_negatives == \
                warm_day.kizzle.confusion.false_negatives, cold_day.date
            assert cold_day.av.confusion.false_positives == \
                warm_day.av.confusion.false_positives, cold_day.date
            assert cold_day.av.confusion.false_negatives == \
                warm_day.av.confusion.false_negatives, cold_day.date

        # The packer change still produced new signatures on the warm path,
        # covering the same kits.  (Signature *counts* may differ by a
        # borderline coverage call — sentinel collapse versus expanded
        # duplicates — without affecting any verdict; the per-day metric
        # equality above is the contract.)
        assert warm_kizzle.database.kits() == cold_kizzle.database.kits()
        assert warm_kizzle.database.signatures_for(as_of=D(2014, 8, 16))
        # Work metric: the warm path runs the lexer at most once per
        # content; the cold path re-lexes every sample several times per
        # day.  (Tokenizations = cache misses on the raw-token table.)
        warm_lexes = warm_kizzle.prepared.stats()["raw_misses"]
        total_samples = sum(day.sample_count for day in warm_report.days)
        assert warm_lexes < total_samples

    def test_shed_accounting_and_stage_charging(self, generator):
        day = D(2014, 8, 5)
        batch = generator.generate_day(day)
        samples = [(s.sample_id, s.content) for s in batch.samples]
        warm = _seeded_kizzle(generator, incremental=_warm_config())
        warm.process_day(samples, day)
        result = warm.process_day(samples, day + datetime.timedelta(days=1))
        assert result.shed_count == sum(result.shed_by_kit().values())
        assert result.summary()["shed_samples"] == result.shed_count
        timing: MapReduceReport = result.timing
        assert "shed" in timing.stage_seconds
        assert "carry_forward" in timing.stage_seconds
        assert timing.total_time >= sum(timing.stage_seconds.values())
        assert "shed" in timing.wall_stage_seconds
        summary = timing.summary()
        assert "stage_shed_s" in summary
        assert "wall_cluster_s" in summary

    def test_scan_engine_modes_agree(self, generator):
        day = D(2014, 8, 5)
        batch = generator.generate_day(day)
        samples = [(s.sample_id, s.content) for s in batch.samples]
        warm = _seeded_kizzle(generator, incremental=_warm_config())
        warm.process_day(samples, day)
        exact_engine = ScanEngine(warm.database, mode="exact")
        fast_engine = ScanEngine(warm.database, mode="fast",
                                 prepared=warm.prepared)
        for sample in batch.samples[:20]:
            exact = exact_engine.scan(sample.sample_id, sample.content,
                                      as_of=day)
            fast = fast_engine.scan(sample.sample_id, sample.content,
                                    as_of=day)
            assert exact.detected == fast.detected
            assert exact.kits == fast.kits

    def test_disabled_incremental_unchanged(self, generator):
        """With the feature off, the result carries no warm-path fields."""
        day = D(2014, 8, 5)
        batch = generator.generate_day(day)
        cold = _seeded_kizzle(generator)
        result = cold.process_day(
            [(s.sample_id, s.content) for s in batch.samples], day)
        assert result.shed == []
        assert result.absorbed_count == 0
        assert result.carried_cluster_count == 0
        assert "shed_samples" not in result.summary()


# ----------------------------------------------------------------------
# configuration and cache
# ----------------------------------------------------------------------
class TestConfigAndCache:
    def test_invalid_incremental_config(self):
        with pytest.raises(ValueError):
            IncrementalConfig(scan_mode="wrong")
        with pytest.raises(ValueError):
            IncrementalConfig(anchor_ttl_days=0)
        with pytest.raises(ValueError):
            IncrementalConfig(max_anchors=0)
        with pytest.raises(ValueError):
            IncrementalConfig(prepared_cache_entries=0)

    def test_prepared_cache_single_lex(self):
        cache = PreparedCache(max_entries=16)
        content = "<script>var a = 'x';</script>"
        cache.abstract_tokens(content)
        cache.normalized(content)
        cache.fast_normalized(content)
        cache.abstract_tokens(content)
        stats = cache.stats()
        assert stats["raw_misses"] == 1
        assert stats["tokens_hits"] == 1

    def test_prepared_cache_eviction(self):
        cache = PreparedCache(max_entries=2)
        for index in range(5):
            cache.abstract_tokens(f"var a{index} = {index};")
        assert cache.stats()["tokens_misses"] == 5

    def test_paper_scale_stream_config(self):
        config = StreamConfig.paper_scale(samples_per_day=20_800)
        assert config.mean_daily_volume >= 20_000
        ratios = config.kit_daily_counts
        assert ratios["angler"] > ratios["sweetorange"] > ratios["rig"]
        with pytest.raises(ValueError):
            StreamConfig.paper_scale(samples_per_day=0)
