"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.ekgen.angler import AnglerKit
from repro.ekgen.evolution import default_timeline
from repro.ekgen.nuclear import NuclearKit
from repro.ekgen.rig import RigKit
from repro.ekgen.sweetorange import SweetOrangeKit
from repro.ekgen.telemetry import StreamConfig, TelemetryGenerator


AUG = datetime.date(2014, 8, 5)


@pytest.fixture(scope="session")
def timeline():
    return default_timeline()


@pytest.fixture(scope="session")
def kits(timeline):
    return {
        "nuclear": NuclearKit(timeline),
        "rig": RigKit(timeline),
        "angler": AnglerKit(timeline),
        "sweetorange": SweetOrangeKit(timeline),
    }


@pytest.fixture(scope="session")
def small_generator():
    """A small but representative telemetry generator."""
    return TelemetryGenerator(StreamConfig(
        benign_per_day=12,
        kit_daily_counts={"angler": 6, "nuclear": 4, "rig": 3,
                          "sweetorange": 4},
        seed=42,
    ))


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture(scope="session")
def august_day():
    return AUG
