"""Tests for corpus management and cluster labeling."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.clustering import Cluster, ClusteredSample
from repro.labeling import ClusterLabeler, KnownKitCorpus
from repro.labeling.corpus import DEFAULT_THRESHOLDS, FALLBACK_THRESHOLD

D = datetime.date(2014, 8, 5)


class TestCorpus:
    def test_add_and_query(self):
        corpus = KnownKitCorpus()
        corpus.add("nuclear", "function f() { return 1; }" * 20)
        assert corpus.kits() == ["nuclear"]
        assert len(corpus) == 1
        assert len(corpus.entries_for("nuclear")) == 1
        assert corpus.entries_for("rig") == []

    def test_add_many(self):
        corpus = KnownKitCorpus()
        corpus.add_many("rig", ["var a = 1;" * 30, "var b = 2;" * 30])
        assert len(corpus) == 2

    def test_thresholds(self):
        corpus = KnownKitCorpus()
        assert corpus.threshold_for("rig") == DEFAULT_THRESHOLDS["rig"]
        assert corpus.threshold_for("unknownkit") == FALLBACK_THRESHOLD

    def test_custom_thresholds(self):
        corpus = KnownKitCorpus(thresholds={"nuclear": 0.5})
        assert corpus.threshold_for("nuclear") == 0.5


class TestLabeler:
    def seeded_corpus(self, generator):
        corpus = KnownKitCorpus()
        seed_day = datetime.date(2014, 7, 28)
        for kit in ("nuclear", "rig", "angler", "sweetorange"):
            corpus.add(kit, generator.reference_core(kit, seed_day),
                       collected=seed_day)
        return corpus

    def make_cluster(self, contents):
        samples = [ClusteredSample.from_content(f"s{i}", content)
                   for i, content in enumerate(contents)]
        return Cluster(cluster_id=0, samples=samples)

    @pytest.mark.parametrize("kit", ["nuclear", "rig", "angler", "sweetorange"])
    def test_kit_clusters_labeled_correctly(self, small_generator, kits, kit):
        labeler = ClusterLabeler(self.seeded_corpus(small_generator))
        contents = [kits[kit].generate(D, random.Random(i)).content
                    for i in range(3)]
        label = labeler.label_cluster(self.make_cluster(contents))
        assert label.kit == kit
        assert label.is_malicious
        assert label.layers == 1
        assert label.overlap >= 0.4

    def test_benign_cluster_labeled_benign(self, small_generator, august_day):
        from repro.ekgen import BenignGenerator

        labeler = ClusterLabeler(self.seeded_corpus(small_generator))
        generator = BenignGenerator()
        contents = [generator.generate(august_day, random.Random(i),
                                       family="analytics").content
                    for i in range(3)]
        label = labeler.label_cluster(self.make_cluster(contents))
        assert label.kit is None
        assert not label.is_malicious

    def test_plugindetect_high_overlap_but_below_threshold(
            self, small_generator, august_day):
        """The Figure 15 situation: a benign plugin prober shares a lot of
        code with the Nuclear core.  With default thresholds it stays benign,
        but the measured overlap is high."""
        from repro.ekgen import BenignGenerator

        labeler = ClusterLabeler(self.seeded_corpus(small_generator))
        sample = BenignGenerator().generate(august_day, random.Random(0),
                                            family="plugindetect")
        label = labeler.label_prototype(sample.content)
        assert label.best_family == "nuclear"
        assert label.overlap > 0.4

    def test_empty_corpus_labels_everything_benign(self, kits):
        labeler = ClusterLabeler(KnownKitCorpus())
        sample = kits["nuclear"].generate(D, random.Random(1))
        label = labeler.label_prototype(sample.content)
        assert label.kit is None
        assert label.best_family is None
        assert label.overlap == 0.0

    def test_labeling_is_threshold_sensitive(self, small_generator, kits):
        corpus = self.seeded_corpus(small_generator)
        corpus.thresholds["nuclear"] = 1.01  # impossible threshold
        labeler = ClusterLabeler(corpus)
        sample = kits["nuclear"].generate(D, random.Random(1))
        label = labeler.label_prototype(sample.content)
        assert label.kit is None
        assert label.best_family == "nuclear"

    def test_unpacked_payload_exposed(self, small_generator, kits):
        labeler = ClusterLabeler(self.seeded_corpus(small_generator))
        sample = kits["rig"].generate(D, random.Random(1))
        label = labeler.label_prototype(sample.content)
        assert "launchExploits" in label.unpacked
