"""Property-based tests (hypothesis) for the core data structures and
invariants: the lexer never crashes and re-tokenizes consistently, the edit
distance is a metric, banded search agrees with the full dynamic program,
winnowing honours its density/containment guarantees, the packers round-trip
through their unpackers for arbitrary cores, and generated regex fragments
always accept the values they were generalized from.
"""

from __future__ import annotations

import random
import re
import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distance import banded_edit_distance, edit_distance, \
    normalized_edit_distance
from repro.distance.metrics import TokenEditDistance, _histogram_lower_bound, \
    length_lower_bound
from repro.ekgen.nuclear import decrypt_payload, encrypt_payload
from repro.ekgen.angler import hex_decode, hex_encode
from repro.ekgen.sweetorange import insert_junk, remove_junk
from repro.ekgen.identifiers import random_crypt_key
from repro.jstoken import tokenize
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures.regexgen import generalize_column
from repro.winnowing.fingerprint import Fingerprint, kgram_hashes, winnow

DEFAULT_SETTINGS = settings(max_examples=60, deadline=None,
                            suppress_health_check=[HealthCheck.too_slow])

token_alphabet = st.sampled_from(
    ["var", "Identifier", "String", "(", ")", "=", ";", "[", "]", "+"])
token_strings = st.lists(token_alphabet, min_size=0, max_size=40).map(tuple)

js_text = st.text(
    alphabet=string.ascii_letters + string.digits + " \n\t{}()[];=+-*/'\"<>.,&|!",
    max_size=400)

printable_core = st.text(
    alphabet=string.ascii_letters + string.digits + " \n{}()[];=+-.\"'",
    min_size=1, max_size=300)


class TestLexerProperties:
    @DEFAULT_SETTINGS
    @given(js_text)
    def test_lexer_never_crashes(self, source):
        tokens = tokenize(source)
        assert all(token.value for token in tokens)

    @DEFAULT_SETTINGS
    @given(js_text)
    def test_lexing_is_deterministic(self, source):
        assert tokenize(source) == tokenize(source)

    @DEFAULT_SETTINGS
    @given(js_text)
    def test_token_positions_are_monotonic(self, source):
        positions = [token.position for token in tokenize(source)]
        assert positions == sorted(positions)

    @DEFAULT_SETTINGS
    @given(js_text)
    def test_normalization_idempotent_modulo_whitespace(self, source):
        normalized = normalize_for_scan(source)
        assert " " not in normalized.replace(" ", "") or True
        # normalizing an already-normalized script changes nothing further
        assert normalize_for_scan(normalized) == normalize_for_scan(
            normalize_for_scan(normalized))


class TestDistanceProperties:
    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @DEFAULT_SETTINGS
    @given(token_strings)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_bounds(self, a, b):
        distance = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings, token_strings)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_banded_agrees_with_full(self, a, b):
        exact = edit_distance(a, b)
        assert banded_edit_distance(a, b, exact) == exact
        if exact > 0:
            assert banded_edit_distance(a, b, exact - 1) is None

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings)
    def test_lower_bounds_never_exceed_distance(self, a, b):
        normalized = normalized_edit_distance(a, b)
        assert length_lower_bound(a, b) <= normalized + 1e-9
        assert _histogram_lower_bound(a, b) <= normalized + 1e-9

    @DEFAULT_SETTINGS
    @given(token_strings, token_strings,
           st.floats(min_value=0.05, max_value=0.5))
    def test_metric_within_agrees_with_distance(self, a, b, epsilon):
        metric = TokenEditDistance(epsilon=epsilon)
        truth = normalized_edit_distance(a, b) <= epsilon
        assert metric.within(a, b, epsilon) == truth


class TestWinnowingProperties:
    @DEFAULT_SETTINGS
    @given(st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=500))
    def test_winnow_positions_valid(self, text):
        hashes = kgram_hashes(text, 5)
        for value, position in winnow(hashes, 8):
            assert 0 <= position < len(hashes)
            assert hashes[position] == value

    @DEFAULT_SETTINGS
    @given(st.text(alphabet=string.ascii_lowercase, min_size=50, max_size=400))
    def test_self_containment_is_total(self, text):
        fingerprint = Fingerprint.of(text)
        assert fingerprint.intersection_size(fingerprint) == fingerprint.size

    @DEFAULT_SETTINGS
    @given(st.text(alphabet=string.ascii_lowercase, min_size=60, max_size=200),
           st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=200))
    def test_containment_monotone_under_extension(self, body, extra):
        """Appending content to a document can only preserve or add shared
        fingerprints with the original."""
        base = Fingerprint.of(body)
        extended = Fingerprint.of(body + extra)
        assert base.intersection_size(extended) >= 0
        assert base.intersection_size(extended) <= base.size


class TestPackerRoundTripProperties:
    @DEFAULT_SETTINGS
    @given(printable_core, st.integers(min_value=0, max_value=10**6))
    def test_nuclear_encryption_roundtrip(self, core, seed):
        key = random_crypt_key(random.Random(seed))
        assert decrypt_payload(encrypt_payload(core, key), key) == core

    @DEFAULT_SETTINGS
    @given(printable_core)
    def test_angler_hex_roundtrip(self, core):
        assert hex_decode(hex_encode(core)) == core

    @DEFAULT_SETTINGS
    @given(printable_core, st.integers(min_value=1, max_value=60))
    def test_sweetorange_junk_roundtrip(self, core, every):
        junk = "JuNkToKeN"
        if junk in core:
            core = core.replace(junk, "")
        assert remove_junk(insert_junk(core, junk, every), junk) == core


class TestRegexGeneralizationProperties:
    observed_values = st.lists(
        st.text(alphabet=string.ascii_letters + string.digits + "_$#.",
                min_size=1, max_size=20),
        min_size=1, max_size=6)

    @DEFAULT_SETTINGS
    @given(observed_values)
    def test_fragment_accepts_every_observed_value(self, values):
        fragment = generalize_column(values)
        compiled = re.compile(f"^(?:{fragment})$")
        for value in values:
            assert compiled.match(value), (fragment, value)

    @DEFAULT_SETTINGS
    @given(observed_values)
    def test_fragment_is_valid_regex(self, values):
        re.compile(generalize_column(values))
