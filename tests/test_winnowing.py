"""Tests for winnowing fingerprints, histograms and similarity."""

from __future__ import annotations

import pytest

from repro.winnowing import (
    Fingerprint,
    WinnowHistogram,
    containment,
    jaccard,
    kgram_hashes,
    kgrams,
    overlap,
    winnow,
)
from repro.winnowing.fingerprint import normalize_text


class TestKgrams:
    def test_basic(self):
        assert list(kgrams("abcde", 3)) == ["abc", "bcd", "cde"]

    def test_text_shorter_than_k(self):
        assert list(kgrams("ab", 5)) == []

    def test_text_equal_to_k(self):
        assert list(kgrams("abc", 3)) == ["abc"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(kgrams("abc", 0))

    def test_hashes_are_deterministic(self):
        assert kgram_hashes("hello world", 4) == kgram_hashes("hello world", 4)

    def test_hashes_differ_for_different_text(self):
        assert kgram_hashes("aaaaaa", 3) != kgram_hashes("aaaaab", 3)


class TestWinnow:
    def test_empty(self):
        assert winnow([]) == []

    def test_short_sequence_selects_global_minimum(self):
        hashes = [5, 3, 9]
        selected = winnow(hashes, window=10)
        assert selected == [(3, 1)]

    def test_density_guarantee(self):
        """Expected density of selected fingerprints is about 2/(w+1)."""
        hashes = kgram_hashes("the quick brown fox jumps over the lazy dog" * 20, 5)
        window = 10
        selected = winnow(hashes, window=window)
        density = len(selected) / len(hashes)
        assert 0.5 / (window + 1) < density < 4 / (window + 1)

    def test_positions_increase(self):
        hashes = kgram_hashes("abcdefghijklmnopqrstuvwxyz" * 5, 4)
        positions = [position for _h, position in winnow(hashes, 8)]
        assert positions == sorted(positions)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            winnow([1, 2, 3], window=0)

    def test_shared_substring_guarantee(self):
        """Any shared run of length >= w + k - 1 shares a fingerprint."""
        k, w = 5, 8
        shared = "thisisacommonsubstringlongenoughtoguarantee"
        a = "prefixAAAA" + shared + "suffixBBBB"
        b = "zzzz" + shared + "qqqqqq"
        fa = Fingerprint.of(a, k=k, window=w)
        fb = Fingerprint.of(b, k=k, window=w)
        assert fa.intersection_size(fb) > 0


class TestFingerprint:
    def test_normalize_text(self):
        assert normalize_text("A b\tC\nd") == "abcd"

    def test_identical_documents_full_overlap(self):
        text = "function foo(a, b) { return a + b; }" * 10
        fa = Fingerprint.of(text)
        fb = Fingerprint.of(text)
        assert fa.intersection_size(fb) == fa.size

    def test_whitespace_irrelevant(self):
        a = Fingerprint.of("var x = 1; var y = 2;" * 10)
        b = Fingerprint.of("var  x=1;\n\nvar   y =  2;" * 10)
        assert a.intersection_size(b) == a.size

    def test_disjoint_documents(self):
        a = Fingerprint.of("aaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
        b = Fingerprint.of("bbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
        assert a.intersection_size(b) == 0

    def test_merge(self):
        a = Fingerprint.of("first document body" * 5)
        b = Fingerprint.of("second document body" * 5)
        merged = a.merge(b)
        assert merged.size == a.size + b.size

    def test_incompatible_parameters_rejected(self):
        a = Fingerprint.of("text one" * 10, k=5)
        b = Fingerprint.of("text two" * 10, k=7)
        with pytest.raises(ValueError):
            a.intersection_size(b)

    def test_empty_document(self):
        fp = Fingerprint.of("")
        assert fp.size == 0


class TestSimilarity:
    def test_overlap_self(self):
        text = "var pluginReport = { flash: null };" * 20
        assert overlap(text, text) == pytest.approx(1.0)

    def test_overlap_subset(self):
        """A document embedded in a larger one has high containment in it."""
        small = "function detectPlugins() { return navigator.plugins.length; }" * 10
        large = small + ("function other() { return 42; }" * 30)
        assert overlap(small, large) > 0.9
        assert overlap(large, small) < 0.6

    def test_containment_alias(self):
        a, b = "shared body of text" * 10, "shared body of text" * 10
        assert containment(a, b) == overlap(a, b)

    def test_jaccard_bounds(self):
        shared = "function sharedHelper(x) { return x * 2; }" * 5
        a = shared + "function onlyInA() { return 1; }" * 5
        b = shared + "var totallyDifferentTail = 'zzzz';" * 5
        value = jaccard(a, b)
        assert 0.0 < value < 1.0

    def test_jaccard_identical(self):
        text = "identical content here" * 10
        assert jaccard(text, text) == pytest.approx(1.0)

    def test_empty_query_overlap_zero(self):
        assert overlap("", "some reference text" * 5) == 0.0


class TestWinnowHistogram:
    def test_of_and_size(self):
        histogram = WinnowHistogram.of("var a = 1;" * 30, label="benign")
        assert histogram.size > 0
        assert histogram.label == "benign"

    def test_overlap_with_known_kit(self, kits, august_day):
        """A kit core has near-total overlap with itself on the next day
        (slow inner-layer change, the paper's key observation)."""
        import datetime

        kit = kits["nuclear"]
        day1 = kit.core_source(kit.version_for(august_day))
        day2 = kit.core_source(kit.version_for(
            august_day + datetime.timedelta(days=1)))
        h1 = WinnowHistogram.of(day1)
        h2 = WinnowHistogram.of(day2)
        assert h1.overlap(h2) > 0.95

    def test_symmetric_overlap(self):
        small = WinnowHistogram.of("shared shared shared text body" * 5)
        large = WinnowHistogram.of("shared shared shared text body" * 5
                                   + "and much more other content" * 20)
        assert large.symmetric_overlap(small) == small.symmetric_overlap(large)

    def test_empty_histogram_overlap(self):
        empty = WinnowHistogram.of("")
        other = WinnowHistogram.of("content" * 20)
        assert empty.overlap(other) == 0.0
        assert other.symmetric_overlap(empty) == 0.0
