"""Tests for the edit-distance layer."""

from __future__ import annotations

import pytest

from repro.distance import (
    JaccardDistance,
    TokenEditDistance,
    banded_edit_distance,
    edit_distance,
    length_lower_bound,
    normalized_edit_distance,
)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance(["a", "b"], ["a", "b"]) == 0

    def test_empty_vs_nonempty(self):
        assert edit_distance([], ["a", "b", "c"]) == 3
        assert edit_distance(["a"], []) == 1

    def test_both_empty(self):
        assert edit_distance([], []) == 0

    def test_single_substitution(self):
        assert edit_distance(["a", "b", "c"], ["a", "x", "c"]) == 1

    def test_insertion(self):
        assert edit_distance(["a", "c"], ["a", "b", "c"]) == 1

    def test_deletion(self):
        assert edit_distance(["a", "b", "c"], ["a", "c"]) == 1

    def test_classic_strings(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("flaw", "lawn") == 2

    def test_symmetry(self):
        a, b = list("abcdef"), list("azced")
        assert edit_distance(a, b) == edit_distance(b, a)

    def test_works_on_token_tuples(self):
        a = ("var", "Identifier", "=", "String", ";")
        b = ("var", "Identifier", "=", "Identifier", ";")
        assert edit_distance(a, b) == 1


class TestBandedEditDistance:
    def test_exact_when_within_band(self):
        a, b = list("kitten"), list("sitting")
        assert banded_edit_distance(a, b, 3) == 3
        assert banded_edit_distance(a, b, 5) == 3

    def test_none_when_exceeding_band(self):
        a, b = list("aaaa"), list("bbbb")
        assert banded_edit_distance(a, b, 2) is None

    def test_length_difference_shortcut(self):
        assert banded_edit_distance(list("ab"), list("abcdefgh"), 3) is None

    def test_zero_band_identical(self):
        assert banded_edit_distance(list("xyz"), list("xyz"), 0) == 0

    def test_zero_band_different(self):
        assert banded_edit_distance(list("xyz"), list("xyw"), 0) is None

    def test_negative_band(self):
        assert banded_edit_distance(list("a"), list("a"), -1) is None

    def test_empty_sequences(self):
        assert banded_edit_distance([], [], 0) == 0
        assert banded_edit_distance([], list("ab"), 2) == 2
        assert banded_edit_distance([], list("ab"), 1) is None

    @pytest.mark.parametrize("a,b", [
        ("abcdefgh", "abdefgh"),
        ("aaaabbbb", "aaabbbbb"),
        ("tokenize", "tokeniser"),
        ("xxxxx", "yxxxxy"),
    ])
    def test_agrees_with_full_dp(self, a, b):
        exact = edit_distance(list(a), list(b))
        assert banded_edit_distance(list(a), list(b), exact) == exact
        assert banded_edit_distance(list(a), list(b), exact + 2) == exact


class TestNormalizedDistance:
    def test_range(self):
        assert normalized_edit_distance(list("abc"), list("abc")) == 0.0
        assert normalized_edit_distance(list("abc"), list("xyz")) == 1.0

    def test_empty_both(self):
        assert normalized_edit_distance([], []) == 0.0

    def test_thresholded_returns_one_above_cutoff(self):
        a, b = list("aaaaaaaaaa"), list("bbbbbbbbbb")
        assert normalized_edit_distance(a, b, max_normalized=0.1) == 1.0

    def test_thresholded_exact_below_cutoff(self):
        a = list("aaaaaaaaaa")
        b = list("aaaaaaaaab")
        assert normalized_edit_distance(a, b, max_normalized=0.2) == \
            pytest.approx(0.1)


class TestMetrics:
    def test_token_edit_distance_within(self):
        metric = TokenEditDistance(epsilon=0.10)
        a = tuple("abcdefghij")
        b = tuple("abcdefghiX")
        assert metric.within(a, b, 0.10)
        c = tuple("XXXdefghij")
        assert not metric.within(a, c, 0.10)

    def test_token_edit_distance_prefilter_length(self):
        metric = TokenEditDistance(epsilon=0.10)
        a = tuple("a" * 10)
        b = tuple("a" * 30)
        assert metric.distance(a, b) == 1.0
        assert not metric.within(a, b, 0.10)

    def test_token_edit_distance_prefilter_histogram(self):
        metric = TokenEditDistance(epsilon=0.10, prefilter=True)
        a = tuple("aaaaabbbbb")
        b = tuple("cccccddddd")
        assert metric.distance(a, b) == 1.0

    def test_prefilter_never_rejects_close_pairs(self):
        metric = TokenEditDistance(epsilon=0.2, prefilter=True)
        a = tuple("abcabcabca")
        b = tuple("abcabcabcx")
        assert metric.within(a, b, 0.2)

    def test_jaccard_distance(self):
        metric = JaccardDistance()
        assert metric.distance(tuple("aabb"), tuple("aabb")) == 0.0
        assert metric.distance(tuple("aa"), tuple("bb")) == 1.0
        assert 0.0 < metric.distance(tuple("aab"), tuple("abb")) < 1.0

    def test_jaccard_empty(self):
        metric = JaccardDistance()
        assert metric.distance((), ()) == 0.0

    def test_length_lower_bound(self):
        assert length_lower_bound("aaaa", "aa") == 0.5
        assert length_lower_bound("", "") == 0.0
        assert length_lower_bound("abc", "abc") == 0.0

    def test_identical_kit_samples_have_zero_distance(self, kits, august_day):
        """Same-version kit samples differ only in identifiers, which the
        abstraction removes, so the metric sees them at distance 0."""
        import random

        from repro.jstoken import abstract_token_string

        kit = kits["sweetorange"]
        a = abstract_token_string(kit.generate(august_day, random.Random(5)).content)
        b = abstract_token_string(kit.generate(august_day, random.Random(6)).content)
        metric = TokenEditDistance(epsilon=0.10)
        assert metric.distance(a, b) <= 0.02
