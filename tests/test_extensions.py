"""Tests for the Section V extensions: multi-window signatures, hidden
server-side signatures, and the attacker evasion models."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.ekgen import BenignGenerator, JunkStatementInserter, \
    SignatureOracleAttacker, TelemetryGenerator, StreamConfig
from repro.scanner import HiddenSignature, HiddenSignatureCompiler, \
    ServerSideScanner
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures import (
    MultiWindowCompiler,
    MultiWindowConfig,
    MultiWindowSignature,
    SignatureCompiler,
    common_token_windows,
)
from repro.unpack import default_registry

D = datetime.date(2014, 8, 5)


def kit_cluster(kits, kit, count=6, day=D, base_seed=300):
    return [kits[kit].generate(day, random.Random(base_seed + i)).content
            for i in range(count)]


class TestCommonTokenWindows:
    def test_multiple_disjoint_windows(self):
        a = tuple("AAAAAAAA" + "x" + "BBBBBBBB" + "yy" + "CCCCCCCC")
        b = tuple("AAAAAAAA" + "qqq" + "BBBBBBBB" + "z" + "CCCCCCCC")
        windows = common_token_windows([a, b], max_windows=3,
                                       max_tokens_per_window=8,
                                       min_tokens_per_window=3)
        assert 2 <= len(windows) <= 3
        # Windows do not overlap in the first sample.
        spans = sorted((w.positions[0], w.positions[0] + w.length)
                       for w in windows)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_no_windows_for_disjoint_inputs(self):
        assert common_token_windows([tuple("aaaa"), tuple("bbbb")]) == []

    def test_window_cap_respected(self):
        tokens = tuple("abcdefghij" * 10)
        windows = common_token_windows([tokens, tokens], max_windows=2,
                                       max_tokens_per_window=15)
        assert all(window.length <= 15 for window in windows)


class TestMultiWindowSignature:
    def test_in_order_matching(self):
        signature = MultiWindowSignature(kit="x", fragments=["aaa", "bbb"],
                                         created=D)
        assert signature.matches("xxaaaxxbbbxx")
        assert not signature.matches("bbb then aaa")
        assert not signature.matches("aaa only")
        assert signature.window_count == 2
        assert signature.length == 6

    @pytest.mark.parametrize("kit", ["nuclear", "sweetorange", "angler", "rig"])
    def test_compiles_and_matches_cluster(self, kits, kit):
        cluster = kit_cluster(kits, kit)
        signature = MultiWindowCompiler().compile_cluster(cluster, kit, D)
        assert signature is not None
        assert signature.window_count >= 1
        for content in cluster:
            assert signature.matches(normalize_for_scan(content))

    def test_does_not_match_benign(self, kits):
        cluster = kit_cluster(kits, "nuclear")
        signature = MultiWindowCompiler().compile_cluster(cluster, "nuclear", D)
        benign = BenignGenerator()
        for seed in range(8):
            sample = benign.generate(D, random.Random(seed))
            assert not signature.matches(normalize_for_scan(sample.content))

    def test_degenerate_cluster(self):
        compiler = MultiWindowCompiler()
        assert compiler.compile_cluster([], "x", D) is None
        assert compiler.compile_cluster(["var a;", "function b() {}"],
                                        "x", D) is None

    def test_junk_insertion_defeats_clean_signature_multiwindow_recovers(
            self, kits):
        """The Section V evasion scenario end to end.

        The attacker starts shipping junk-padded variants: the signature
        compiled from yesterday's clean cluster stops matching.  Kizzle
        recompiles from today's (evaded) cluster; the single-window compiler
        is left with a much shorter common window, while the multi-window
        compiler recovers several windows whose combined specificity is
        higher and which keep matching fresh evaded variants without benign
        false positives.
        """
        clean_cluster = kit_cluster(kits, "nuclear", count=6)
        clean_signature = SignatureCompiler().compile_cluster(
            clean_cluster, "nuclear", D)

        inserter = JunkStatementInserter(density=0.8, max_junk_per_site=2,
                                         seed=5)
        evaded_cluster = [
            inserter.rewrite(
                kits["nuclear"].generate(D, random.Random(900 + i)).content,
                seed=i)
            for i in range(6)
        ]
        fresh_evaded = inserter.rewrite(
            kits["nuclear"].generate(D, random.Random(990)).content, seed=99)

        # The clean signature no longer matches the evaded variants.
        assert not clean_signature.matches(normalize_for_scan(fresh_evaded))

        single_after = SignatureCompiler().compile_cluster(
            evaded_cluster, "nuclear", D)
        multi_after = MultiWindowCompiler(MultiWindowConfig(
            max_windows=6, max_tokens_per_window=40)).compile_cluster(
                evaded_cluster, "nuclear", D)

        assert multi_after is not None
        single_tokens = single_after.token_length if single_after else 0
        # Junk insertion caps how long any single common window can be, while
        # the multi-window signature accumulates several of them and ends up
        # more specific.
        assert single_tokens < clean_signature.token_length
        assert sum(multi_after.token_lengths) > single_tokens
        assert multi_after.window_count >= 2
        assert multi_after.matches(normalize_for_scan(fresh_evaded))
        benign = BenignGenerator().generate(D, random.Random(1))
        assert not multi_after.matches(normalize_for_scan(benign.content))


class TestJunkStatementInserter:
    def test_rewrite_changes_text_but_keeps_payload_decodable(self, kits):
        sample = kits["rig"].generate(D, random.Random(42))
        inserter = JunkStatementInserter(density=0.6, seed=1)
        evaded = inserter.rewrite(sample.content)
        assert evaded != sample.content
        # The RIG unpacker still recovers the same payload: the junk only sits
        # between statements, it does not disturb the collect() data.
        payload, applied = default_registry().unpack(evaded)
        assert applied == ["rig"]
        assert payload.strip() == sample.unpacked.strip()

    def test_raw_javascript_input(self):
        inserter = JunkStatementInserter(density=1.0, max_junk_per_site=1,
                                         seed=3)
        rewritten = inserter.rewrite("var a = 1; var b = 2; var c = 3;")
        assert rewritten.count(";") > 3

    def test_determinism_per_seed(self, kits):
        sample = kits["angler"].generate(D, random.Random(4)).content
        inserter = JunkStatementInserter(seed=9)
        assert inserter.rewrite(sample) == inserter.rewrite(sample)
        assert inserter.rewrite(sample, seed=1) != inserter.rewrite(sample, seed=2)


class TestSignatureOracleAttacker:
    def test_attacker_beats_static_signature_eventually(self, kits):
        cluster = kit_cluster(kits, "nuclear")
        signature = SignatureCompiler().compile_cluster(cluster, "nuclear", D)
        inserter = JunkStatementInserter(density=0.5, seed=0)

        attacker = SignatureOracleAttacker(
            generate_variant=lambda attempt: kits["nuclear"].generate(
                D, random.Random(5000 + attempt)).content,
            is_detected=lambda content: signature.matches(
                normalize_for_scan(content)),
            mutator=inserter,
            max_attempts=10)
        evaded, attempts = attacker.evade()
        assert evaded is not None
        assert attempts <= 10
        assert len(attacker.attempts_log) == attempts

    def test_attacker_fails_against_hidden_signatures(self, kits,
                                                      small_generator):
        """Hidden signatures match the inner layer, which the junk-insertion
        mutation does not touch, so the oracle loop runs out of attempts."""
        compiler = HiddenSignatureCompiler()
        cores = [small_generator.reference_core("nuclear", D)]
        hidden = compiler.compile_family("nuclear", cores, D)
        scanner = ServerSideScanner()
        scanner.add(hidden)

        attacker = SignatureOracleAttacker(
            generate_variant=lambda attempt: kits["nuclear"].generate(
                D, random.Random(7000 + attempt)).content,
            is_detected=lambda content: scanner.scan(content)["detected"],
            mutator=JunkStatementInserter(density=0.6, seed=1),
            max_attempts=8)
        evaded, attempts = attacker.evade()
        assert evaded is None
        assert attempts == 8


class TestHiddenSignatures:
    def test_compile_family_and_match(self, small_generator, kits):
        compiler = HiddenSignatureCompiler()
        compiler.add_benign_reference(
            [BenignGenerator().generate(D, random.Random(i)).unpacked
             for i in range(6)])
        cores = [small_generator.reference_core("angler", D),
                 small_generator.reference_core(
                     "angler", D + datetime.timedelta(days=1))]
        signature = compiler.compile_family("angler", cores, D)
        assert signature is not None
        assert signature.min_hits <= len(signature.indicators)
        sample = kits["angler"].generate(D, random.Random(11))
        assert signature.matches(sample.unpacked)

    def test_empty_family(self):
        assert HiddenSignatureCompiler().compile_family("x", [], D) is None

    def test_benign_reference_filters_shared_code(self, small_generator):
        """Indicators drawn from code that also appears in benign libraries
        (the PluginDetect block) must be filtered out."""
        benign = BenignGenerator().generate(D, random.Random(1),
                                            family="plugindetect")
        compiler = HiddenSignatureCompiler()
        compiler.add_benign_reference([benign.unpacked])
        signature = compiler.compile_family(
            "nuclear", [small_generator.reference_core("nuclear", D)], D)
        assert signature is not None
        for indicator in signature.indicators:
            assert indicator not in benign.unpacked

    def test_server_side_scanner_end_to_end(self, small_generator, kits):
        compiler = HiddenSignatureCompiler()
        scanner = ServerSideScanner()
        for kit in ("nuclear", "angler", "rig", "sweetorange"):
            signature = compiler.compile_family(
                kit, [small_generator.reference_core(kit, D)], D)
            assert signature is not None
            scanner.add(signature)
        assert scanner.signature_count() == 4

        for kit in ("nuclear", "angler", "rig", "sweetorange"):
            sample = kits[kit].generate(D, random.Random(13))
            verdict = scanner.scan(sample.content)
            assert verdict["detected"], kit
            assert kit in verdict["kits"]
            assert verdict["layers"] == 1

        benign = BenignGenerator().generate(D, random.Random(2))
        assert not scanner.scan(benign.content)["detected"]

    def test_hidden_signature_hit_counting(self):
        signature = HiddenSignature(kit="x", indicators=["alpha", "beta",
                                                         "gamma"],
                                    created=D, min_hits=2)
        assert signature.hits("alpha ... beta") == 2
        assert signature.matches("alpha ... beta")
        assert not signature.matches("only alpha here")
