"""Tests for the evaluation harness (metrics, ground truth, experiment)."""

from __future__ import annotations

import datetime

import pytest

from repro.core.config import KizzleConfig
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.ekgen.base import GeneratedSample
from repro.evalharness import (
    ConfusionCounts,
    ExperimentConfig,
    GroundTruth,
    KitCounts,
    MonthExperiment,
    format_absolute_counts,
    format_day_series,
    format_table,
    similarity_over_time,
)
from repro.evalharness.metrics import score_day
from repro.evalharness.reporting import sparkline
from repro.evalharness.similarity import similarity_all_kits

D = datetime.date


def sample(sample_id, kit=None):
    return GeneratedSample(sample_id=sample_id, content="", kit=kit,
                           date=D(2014, 8, 1))


class TestGroundTruth:
    def test_from_samples(self):
        truth = GroundTruth.from_samples([sample("a", "rig"), sample("b")])
        assert truth.is_malicious("a")
        assert not truth.is_malicious("b")
        assert truth.kit_of("a") == "rig"
        assert len(truth) == 2

    def test_unknown_sample(self):
        with pytest.raises(KeyError):
            GroundTruth().kit_of("missing")

    def test_id_listings(self):
        truth = GroundTruth.from_samples(
            [sample("a", "rig"), sample("b", "angler"), sample("c")])
        assert truth.malicious_ids() == ["a", "b"]
        assert truth.malicious_ids(kit="rig") == ["a"]
        assert truth.benign_ids() == ["c"]
        assert truth.kit_totals() == {"rig": 1, "angler": 1}


class TestMetrics:
    def test_confusion_rates(self):
        counts = ConfusionCounts(true_positives=90, false_negatives=10,
                                 false_positives=2, true_negatives=998)
        assert counts.false_negative_rate == pytest.approx(0.10)
        assert counts.false_positive_rate == pytest.approx(0.002)

    def test_confusion_rates_empty(self):
        counts = ConfusionCounts()
        assert counts.false_negative_rate == 0.0
        assert counts.false_positive_rate == 0.0

    def test_confusion_merge(self):
        merged = ConfusionCounts(true_positives=1).merge(
            ConfusionCounts(true_positives=2, false_negatives=3))
        assert merged.true_positives == 3
        assert merged.false_negatives == 3

    def test_kit_counts_merge_and_totals(self):
        a = KitCounts()
        a.add_ground_truth("rig", 5)
        a.add_false_negative("rig", 2)
        b = KitCounts()
        b.add_ground_truth("rig", 3)
        b.add_false_positive("angler", 1)
        merged = a.merge(b)
        assert merged.ground_truth["rig"] == 8
        assert merged.totals() == {"ground_truth": 8, "false_positives": 1,
                                   "false_negatives": 2}

    def test_score_day(self):
        truth = {"m1": "rig", "m2": "rig", "m3": "angler", "b1": None,
                 "b2": None}
        detections = {"m1": {"rig"}, "m2": set(), "m3": {"angler"},
                      "b1": {"nuclear"}, "b2": set()}
        metrics = score_day(truth, detections)
        assert metrics.confusion.true_positives == 2
        assert metrics.confusion.false_negatives == 1
        assert metrics.confusion.false_positives == 1
        assert metrics.confusion.true_negatives == 1
        assert metrics.per_kit.false_negatives == {"rig": 1}
        assert metrics.per_kit.false_positives == {"nuclear": 1}
        assert metrics.per_kit_fn_rate["rig"] == pytest.approx(0.5)
        assert metrics.per_kit_fn_rate["angler"] == 0.0

    def test_score_day_missing_detection_entry(self):
        metrics = score_day({"m1": "rig"}, {})
        assert metrics.confusion.false_negatives == 1


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert "T" in text and "a" in text and "3" in text

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_day_series(self):
        text = format_day_series([D(2014, 8, 1)], {"kizzle": [0.05],
                                                   "av": [0.2]})
        assert "5.00%" in text and "20.00%" in text

    def test_format_absolute_counts(self):
        av, kizzle = KitCounts(), KitCounts()
        av.add_false_negative("rig", 3)
        kizzle.add_false_positive("rig", 1)
        text = format_absolute_counts({"rig": 10}, av, kizzle)
        assert "rig" in text and "Sum" in text

    def test_sparkline(self):
        assert sparkline([]) == ""
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3


class TestSimilarityExperiment:
    def test_stable_kits_have_high_similarity(self, small_generator):
        series = similarity_over_time(small_generator, "nuclear",
                                      D(2014, 8, 2), D(2014, 8, 8))
        assert len(series.similarity) == 7
        assert series.minimum() > 0.9

    def test_rig_is_the_outlier(self, small_generator):
        """Figure 11(d): RIG's day-over-day similarity is far below the other
        kits because of its URL churn."""
        nuclear = similarity_over_time(small_generator, "nuclear",
                                       D(2014, 8, 2), D(2014, 8, 8))
        rig = similarity_over_time(small_generator, "rig",
                                   D(2014, 8, 2), D(2014, 8, 8))
        assert rig.mean() < nuclear.mean() - 0.1

    def test_all_kits_helper(self, small_generator):
        series = similarity_all_kits(small_generator, D(2014, 8, 2),
                                     D(2014, 8, 3))
        assert set(series) == {"angler", "nuclear", "rig", "sweetorange"}


class TestMonthExperiment:
    @pytest.fixture(scope="class")
    def short_report(self):
        config = ExperimentConfig(
            start=D(2014, 8, 1), end=D(2014, 8, 4), seed_days=2,
            stream=StreamConfig(benign_per_day=14,
                                kit_daily_counts={"angler": 7, "nuclear": 4,
                                                  "sweetorange": 4, "rig": 3},
                                seed=11),
            kizzle=KizzleConfig(machines=6, min_points=3))
        return MonthExperiment(config).run()

    def test_one_record_per_day(self, short_report):
        assert len(short_report.days) == 4
        assert [day.date for day in short_report.days] == [
            D(2014, 8, 1), D(2014, 8, 2), D(2014, 8, 3), D(2014, 8, 4)]

    def test_ground_truth_collected(self, short_report):
        totals = short_report.ground_truth.kit_totals()
        assert set(totals) == {"angler", "nuclear", "sweetorange", "rig"}

    def test_kizzle_beats_av_is_not_required_but_rates_are_sane(self,
                                                                short_report):
        rates = short_report.overall_rates()
        assert 0.0 <= rates["kizzle_fn_rate"] <= 0.35
        assert 0.0 <= rates["kizzle_fp_rate"] <= 0.05
        assert 0.0 <= rates["av_fn_rate"] <= 0.6

    def test_series_lengths(self, short_report):
        fn = short_report.fn_series()
        fp = short_report.fp_series()
        assert len(fn["kizzle"]) == len(fn["av"]) == 4
        assert len(fp["kizzle"]) == 4

    def test_signature_length_series(self, short_report):
        series = short_report.signature_length_series()
        assert "dates" in series
        assert any(kit in series for kit in ("angler", "nuclear",
                                             "sweetorange", "rig"))

    def test_cluster_count_range(self, short_report):
        counts = short_report.cluster_count_range()
        assert counts["min"] >= 1
        assert counts["max"] >= counts["min"]

    def test_counts_tables(self, short_report):
        kizzle_counts = short_report.kizzle_counts()
        av_counts = short_report.av_counts()
        assert sum(kizzle_counts.ground_truth.values()) == \
            sum(av_counts.ground_truth.values())
