"""Tests for the per-kit unpackers and the registry."""

from __future__ import annotations

import random

import pytest

from repro.unpack import (
    AnglerUnpacker,
    NuclearUnpacker,
    RigUnpacker,
    SweetOrangeUnpacker,
    UnpackError,
    UnpackerRegistry,
    default_registry,
    unpack_sample,
)

UNPACKERS = {
    "rig": RigUnpacker,
    "nuclear": NuclearUnpacker,
    "angler": AnglerUnpacker,
    "sweetorange": SweetOrangeUnpacker,
}


class TestPerKitRoundTrip:
    @pytest.mark.parametrize("name", sorted(UNPACKERS))
    def test_recognize_and_unpack_own_kit(self, kits, august_day, name):
        sample = kits[name].generate(august_day, random.Random(11))
        unpacker = UNPACKERS[name]()
        assert unpacker.recognizes(sample.content)
        assert unpacker.unpack(sample.content).strip() == sample.unpacked.strip()

    @pytest.mark.parametrize("name", sorted(UNPACKERS))
    def test_does_not_recognize_other_kits(self, kits, august_day, name):
        unpacker = UNPACKERS[name]()
        for other_name, kit in kits.items():
            if other_name == name:
                continue
            sample = kit.generate(august_day, random.Random(12))
            assert not unpacker.recognizes(sample.content), \
                f"{name} unpacker wrongly recognizes {other_name}"

    @pytest.mark.parametrize("name", sorted(UNPACKERS))
    def test_does_not_recognize_benign(self, august_day, rng, name):
        from repro.ekgen import BenignGenerator

        sample = BenignGenerator().generate(august_day, rng)
        assert not UNPACKERS[name]().recognizes(sample.content)

    @pytest.mark.parametrize("name", sorted(UNPACKERS))
    def test_roundtrip_across_versions(self, kits, name):
        """Unpackers keep working as packers rotate through the month."""
        import datetime

        for day in (datetime.date(2014, 8, 2), datetime.date(2014, 8, 15),
                    datetime.date(2014, 8, 29)):
            sample = kits[name].generate(day, random.Random(13))
            payload = UNPACKERS[name]().unpack(sample.content)
            assert payload.strip() == sample.unpacked.strip()


class TestUnpackErrors:
    def test_rig_without_collect(self):
        unpacker = RigUnpacker()
        with pytest.raises(UnpackError):
            unpacker.unpack("var x = 'nothing to see';")

    def test_nuclear_without_payload(self):
        unpacker = NuclearUnpacker()
        with pytest.raises(UnpackError):
            unpacker.unpack("var a = 'abc'; a.charCodeAt(0);")

    def test_angler_without_hex(self):
        unpacker = AnglerUnpacker()
        with pytest.raises(UnpackError):
            unpacker.unpack('window["ev" + "al"](x);')

    def test_sweetorange_without_junk_table(self):
        unpacker = SweetOrangeUnpacker()
        with pytest.raises(UnpackError):
            unpacker.unpack('var xx = ["a"]; xx.join("");')

    def test_try_unpack_returns_none_when_unrecognized(self):
        assert RigUnpacker().try_unpack("var benign = true;") is None

    def test_rig_corrupted_charcodes(self, kits, august_day):
        sample = kits["rig"].generate(august_day, random.Random(3))
        corrupted = sample.content.replace("String.fromCharCode",
                                           "String.fromCharCode")  # no-op
        # Corrupt the buffer so a non-numeric piece shows up.
        corrupted = corrupted.replace('("4', '("x4', 1)
        unpacker = RigUnpacker()
        if unpacker.recognizes(corrupted):
            with pytest.raises(UnpackError):
                unpacker.unpack(corrupted)


class TestRegistry:
    def test_default_registry_has_four_unpackers(self):
        registry = default_registry()
        assert {unpacker.kit for unpacker in registry.unpackers} == \
            {"rig", "nuclear", "angler", "sweetorange"}

    @pytest.mark.parametrize("name", sorted(UNPACKERS))
    def test_registry_unpacks_every_kit(self, kits, august_day, name):
        registry = default_registry()
        sample = kits[name].generate(august_day, random.Random(21))
        payload, applied = registry.unpack(sample.content)
        assert applied == [name]
        assert payload.strip() == sample.unpacked.strip()

    def test_registry_passes_through_unpacked_content(self):
        registry = default_registry()
        payload, applied = registry.unpack("var perfectly = 'benign';")
        assert applied == []
        assert payload == "var perfectly = 'benign';"

    def test_unpack_sample_convenience(self, kits, august_day):
        sample = kits["nuclear"].generate(august_day, random.Random(5))
        assert unpack_sample(sample.content).strip() == sample.unpacked.strip()

    def test_max_layers_respected(self):
        class Endless(RigUnpacker):
            kit = "endless"

            def recognizes(self, content):
                return True

            def unpack(self, content):
                return content + "x"

        registry = UnpackerRegistry(max_layers=3)
        registry.register(Endless())
        payload, applied = registry.unpack("seed")
        assert len(applied) == 3
        assert payload == "seedxxx"

    def test_registration_order_respected(self, kits, august_day):
        registry = UnpackerRegistry()
        registry.register(NuclearUnpacker())
        registry.register(RigUnpacker())
        sample = kits["rig"].generate(august_day, random.Random(2))
        _payload, applied = registry.unpack(sample.content)
        assert applied == ["rig"]
