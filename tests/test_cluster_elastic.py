"""Elastic membership and warmth tests for the cluster coordinator.

The fleet contract under test: workers may join mid-map (a late
registration folds into the lease pool immediately), leave gracefully
(SIGTERM drains the in-flight lease, returns its result exactly once,
says goodbye — no re-dispatch), and reconnect on a bounded, jittered
exponential schedule (unit-tested as pure numbers, no sleeps).  Warmth:
repeat partitions re-lease to the worker that served them before and ship
*slim* (token-stripped), with the worker's epoch-keyed caches re-deriving
the tokens byte-identically.

Where the fault-injection suite drives real worker subprocesses, most
tests here emulate workers over raw authenticated sockets so lease-level
interleavings (who holds what when a peer joins or leaves) are
deterministic rather than raced for.
"""

from __future__ import annotations

import logging
import os
import random
import socket
import threading
import time

import pytest

from repro.clustering.partition import ClusteredSample, PartitionMapTask
from repro.distance.engine import DistanceEngineConfig
from repro.exec import wire
from repro.exec.cluster import ClusterCoordinator, SECRET_ENV, \
    spawn_local_worker
from repro.exec.worker import ReconnectPolicy, Worker, WorkerCaches, \
    execute_task

#: Secret this run operates under (CI exports it; spawned worker
#: subprocesses inherit it from the environment, so directly constructed
#: coordinators and emulated peers must register under the same one).
TEST_SECRET = os.environ.get(SECRET_ENV)


def _coordinator(**overrides):
    settings = dict(task_deadline_s=30.0, heartbeat_timeout_s=30.0,
                    max_task_retries=2, min_workers=1, worker_wait_s=10.0,
                    secret=TEST_SECRET)
    settings.update(overrides)
    coordinator = ClusterCoordinator("127.0.0.1", 0, **settings)
    coordinator.start()
    return coordinator


def _task(index, samples=()):
    return PartitionMapTask(index=index, samples=list(samples), epsilon=0.1,
                            min_points=3,
                            engine_config=DistanceEngineConfig())


class EmulatedWorker:
    """A protocol-faithful worker the test drives step by step."""

    def __init__(self, address, secret=TEST_SECRET):
        self.sock = socket.create_connection(address, timeout=5.0)
        self.sock.settimeout(15.0)
        self.codec = wire.FrameCodec(secret)
        self.codec.send(self.sock, ("hello", {"version": wire.WIRE_VERSION,
                                              "pid": 0}))
        kind, body = self.codec.recv(self.sock)
        assert kind == "welcome"
        self.worker_id = body["worker_id"]
        self.epoch = body["epoch"]

    def request(self):
        self.codec.send(self.sock, ("request", {}))
        return self.codec.recv(self.sock)

    def finish(self, body):
        result = execute_task(body["kind"], body["payload"])
        self.codec.send(self.sock, ("result", {"task_id": body["task_id"],
                                               "payload": result}))
        return result

    def drain_loop(self):
        """Serve requests until the queue runs dry (idle)."""
        while True:
            kind, body = self.request()
            if kind != "task":
                return
            self.finish(body)

    def goodbye(self):
        self.codec.send(self.sock, ("goodbye", {}))

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def _submit_async(coordinator, kind, payloads, timeout=30.0):
    """Run submit() on a thread; returns (thread, outcome-box)."""
    box = {}

    def runner():
        try:
            box["result"] = coordinator.submit(kind, payloads,
                                               timeout=timeout)
        except Exception as exc:  # pragma: no cover - surfaced by asserts
            box["error"] = exc

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    return thread, box


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.01)


# ----------------------------------------------------------------------
# elastic membership
# ----------------------------------------------------------------------
class TestMidMapJoin:
    def test_late_joiner_contributes_leases_immediately(self):
        """A worker registering while a batch is in flight starts pulling
        leases on its first request — no waiting for the next batch."""
        coordinator = _coordinator()
        first = second = None
        try:
            first = EmulatedWorker(coordinator.address)
            thread, box = _submit_async(
                coordinator, "partition_map", [_task(i) for i in range(3)])
            # The first worker takes a lease and sits on it (mid-map).
            # (Retry: the submit thread may not have enqueued yet.)
            _wait_until(lambda: coordinator.worker_count == 1)
            kind, held = first.request()
            while kind != "task":
                time.sleep(0.01)
                kind, held = first.request()
            # Mid-map join: the second worker registers and immediately
            # receives one of the remaining leases.
            second = EmulatedWorker(coordinator.address)
            kind, body = second.request()
            assert kind == "task", \
                "late joiner was idled despite pending leases"
            second.finish(body)
            first.finish(held)
            for worker in (first, second):
                worker.drain_loop()
            thread.join(timeout=10.0)
            assert "result" in box, box.get("error")
            assert coordinator.tasks_by_worker.get(second.worker_id, 0) >= 1
            assert coordinator.redispatch_count == 0
        finally:
            for worker in (first, second):
                if worker is not None:
                    worker.close()
            coordinator.close()


class TestMidMapJoinByteIdentity:
    def test_late_join_day_is_byte_identical_to_serial(self):
        """Full clustering stage: a second real worker joining while the
        map is in flight changes placement only — the day's clusters are
        byte-identical to the serial run."""
        import datetime

        from repro.clustering.partition import DistributedClusterer
        from repro.ekgen import StreamConfig, TelemetryGenerator
        from repro.exec.backend import BackendConfig, create_backend

        # A lexing-heavy day: big enough that the single starting worker
        # is still mid-map when the late joiner's subprocess finishes
        # starting up and registers.
        generator = TelemetryGenerator(StreamConfig(
            benign_per_day=30,
            kit_daily_counts={"angler": 20, "rig": 15, "nuclear": 15},
            seed=20140801))
        batch = generator.generate_day(datetime.date(2014, 8, 1))
        samples = [ClusteredSample(sample_id=s.sample_id, content=s.content)
                   for s in batch.samples]

        def cluster_key(clusters):
            return [(c.cluster_id,
                     sorted(s.sample_id for s in c.samples))
                    for c in clusters]

        serial = create_backend(BackendConfig(kind="serial"))
        try:
            reference, _ = DistributedClusterer(
                epsilon=0.10, min_points=3, seed=0, backend=serial,
                machines=8).run(samples, partitions=8)
        finally:
            serial.close()

        backend = create_backend(BackendConfig(kind="cluster",
                                               spawn_workers=1))
        joiner = None
        joined = {}

        def join_mid_map():
            _wait_until(lambda: backend.coordinator.remote_results >= 1
                        or backend.coordinator._leased, timeout=30.0,
                        message="the map to start")
            joined["proc"] = spawn_local_worker(backend.address,
                                                heartbeat_interval=0.25)

        thread = threading.Thread(target=join_mid_map, daemon=True)
        try:
            clusterer = DistributedClusterer(
                epsilon=0.10, min_points=3, seed=0, backend=backend,
                machines=8)
            thread.start()
            clusters, _ = clusterer.run(samples, partitions=8)
            thread.join(timeout=30.0)
            joiner = joined.get("proc")
            assert cluster_key(clusters) == cluster_key(reference), \
                "mid-map join changed the clustering output"
            assert backend.coordinator.workers_seen >= 2, \
                "the second worker never registered"
        finally:
            backend.close()
            if joiner is not None and joiner.poll() is None:
                joiner.terminate()
            if joiner is not None:
                joiner.wait(timeout=10.0)


class TestGracefulLeave:
    def test_goodbye_removes_worker_without_redispatch(self):
        coordinator = _coordinator()
        worker = None
        try:
            worker = EmulatedWorker(coordinator.address)
            _wait_until(lambda: coordinator.worker_count == 1)
            worker.goodbye()
            _wait_until(lambda: coordinator.worker_count == 0,
                        message="departure to be processed")
            assert coordinator.graceful_departures == 1
            assert coordinator.redispatch_count == 0
        finally:
            if worker is not None:
                worker.close()
            coordinator.close()

    def test_shrinking_below_min_workers_warns_but_keeps_running(
            self, caplog):
        """min_workers gates only initial assembly: a fleet that shrinks
        below it keeps serving, loudly."""
        coordinator = _coordinator(min_workers=2)
        workers = []
        try:
            workers = [EmulatedWorker(coordinator.address)
                       for _ in range(2)]
            _wait_until(lambda: coordinator.worker_count == 2)
            with caplog.at_level(logging.WARNING,
                                 logger="repro.exec.cluster"):
                workers[1].goodbye()
                _wait_until(lambda: coordinator.worker_count == 1,
                            message="departure to be processed")
            assert any("degraded" in record.message
                       for record in caplog.records), \
                "no degradation warning when the fleet shrank below " \
                "min_workers"
            # The shrunken fleet still serves a whole batch.
            thread, box = _submit_async(coordinator, "partition_map",
                                        [_task(0), _task(1)])
            workers[0].drain_loop()
            thread.join(timeout=10.0)
            assert "result" in box, box.get("error")
        finally:
            for worker in workers:
                worker.close()
            coordinator.close()

    def test_sigterm_drains_real_worker_to_exit_zero(self):
        """Integration: SIGTERM on a live worker subprocess ends in a
        goodbye and exit code 0, with nothing re-dispatched."""
        coordinator = _coordinator()
        proc = spawn_local_worker(coordinator.address,
                                  heartbeat_interval=0.25)
        try:
            coordinator.wait_for_workers(1, timeout=15.0)
            outcomes = coordinator.submit("partition_map", [_task(0)],
                                          timeout=30.0)
            assert len(outcomes) == 1
            proc.terminate()  # SIGTERM: drain, goodbye, exit 0
            assert proc.wait(timeout=15.0) == 0
            _wait_until(lambda: coordinator.graceful_departures == 1,
                        message="goodbye to be processed")
            assert coordinator.redispatch_count == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
            coordinator.close()


class TestReconnectPolicy:
    def test_schedule_is_bounded_and_jittered_without_sleeping(self):
        policy = ReconnectPolicy(base_s=0.5, cap_s=30.0, max_attempts=8,
                                 rng=random.Random(7))
        delays = [policy.delay(attempt) for attempt in range(32)]
        for attempt, delay in enumerate(delays):
            bound = min(30.0, 0.5 * 2.0 ** attempt)
            assert 0.5 * bound <= delay <= bound, \
                f"attempt {attempt}: {delay} outside [{0.5 * bound}, {bound}]"
        assert max(delays) <= 30.0
        # Jitter: the late (cap-bounded) delays must not all collapse to
        # one value — lockstep reconnect storms are the failure mode.
        capped = delays[10:]
        assert len({round(delay, 6) for delay in capped}) > 1

    def test_schedule_is_deterministic_under_a_seeded_rng(self):
        one = ReconnectPolicy(rng=random.Random(3))
        two = ReconnectPolicy(rng=random.Random(3))
        assert [one.delay(a) for a in range(10)] == \
            [two.delay(a) for a in range(10)]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReconnectPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            ReconnectPolicy(base_s=2.0, cap_s=1.0)
        with pytest.raises(ValueError):
            ReconnectPolicy(max_attempts=-1)

    def test_real_worker_reconnects_after_a_dropped_connection(self):
        """Integration: severing a worker's connection coordinator-side
        makes the worker re-register (a second registration of the same
        process), not die."""
        coordinator = _coordinator()
        proc = spawn_local_worker(coordinator.address,
                                  heartbeat_interval=0.25)
        try:
            coordinator.wait_for_workers(1, timeout=15.0)
            with coordinator._state:
                victim = next(iter(coordinator._workers.values()))
            victim.kill_connection()
            _wait_until(lambda: coordinator.workers_seen >= 2, timeout=15.0,
                        message="the worker to reconnect")
            assert proc.poll() is None, "worker died instead of reconnecting"
        finally:
            coordinator.close()
            if proc.poll() is None:
                proc.terminate()
            proc.wait(timeout=10.0)


# ----------------------------------------------------------------------
# warmth: affinity, slim shipping, epoch-keyed caches
# ----------------------------------------------------------------------
def _tokenized_samples():
    return [ClusteredSample.from_content(f"s{i}",
                                         f"var x{i} = {i} + {i};")
            for i in range(4)]


class TestWarmAffinity:
    def _serve_one(self, coordinator, worker, payloads):
        thread, box = _submit_async(coordinator, "partition_map", payloads)
        bodies = []
        while True:
            kind, body = worker.request()
            if kind != "task":
                if "result" in box or "error" in box:
                    break
                time.sleep(0.01)
                continue
            bodies.append(body)
            worker.finish(body)
        thread.join(timeout=10.0)
        assert "result" in box, box.get("error")
        return bodies

    def test_repeat_partition_ships_slim_to_its_previous_worker(self):
        coordinator = _coordinator(affinity=True)
        worker = None
        try:
            worker = EmulatedWorker(coordinator.address)
            samples = _tokenized_samples()
            first = self._serve_one(coordinator, worker,
                                    [_task(0, samples)])
            assert all(sample.tokens
                       for sample in first[0]["payload"].samples), \
                "cold lease must ship full tokens"
            second = self._serve_one(coordinator, worker,
                                     [_task(0, samples)])
            assert all(not sample.tokens
                       for sample in second[0]["payload"].samples), \
                "warm repeat lease to the same worker must ship slim"
            assert coordinator.slim_leases == 1
            assert coordinator.tokens_stripped_chars > 0
            assert coordinator.task_bytes_sent > 0
        finally:
            if worker is not None:
                worker.close()
            coordinator.close()

    def test_affinity_off_always_ships_full(self):
        coordinator = _coordinator(affinity=False)
        worker = None
        try:
            worker = EmulatedWorker(coordinator.address)
            samples = _tokenized_samples()
            for _ in range(2):
                bodies = self._serve_one(coordinator, worker,
                                         [_task(0, samples)])
                assert all(sample.tokens
                           for sample in bodies[0]["payload"].samples)
            assert coordinator.slim_leases == 0
        finally:
            if worker is not None:
                worker.close()
            coordinator.close()

    def test_slim_task_runs_byte_identical_to_full(self):
        """The correctness core of slim shipping: a token-stripped task,
        executed against a prepared cache, equals the full task."""
        from dataclasses import replace

        samples = _tokenized_samples()
        full = _task(0, samples)
        slim = replace(full, samples=[replace(s, tokens=())
                                      for s in samples])
        caches = WorkerCaches()
        cold = full.run()
        warm = execute_task("partition_map", slim, caches)
        assert warm.clusters == cold.clusters
        assert warm.comparisons == cold.comparisons
        assert warm.cost == cold.cost


class TestWorkerCaches:
    def test_epoch_change_wipes_both_caches(self):
        caches = WorkerCaches()
        caches.ensure_epoch(1)
        caches.prepared.abstract_tokens("var x = 1;")
        caches.distances.put(("a",), ("b",), 1)
        caches.ensure_epoch(1)  # same epoch: warm state survives
        assert len(caches.distances) == 1
        assert caches.wipes == 0
        caches.ensure_epoch(2)  # new epoch: everything goes
        assert len(caches.distances) == 0
        assert caches.wipes == 1

    def test_prepared_hits_reported_in_result_stats(self):
        """A slim re-lease resolves its tokens from the prepared cache and
        says so through the stats channel."""
        from dataclasses import replace

        samples = _tokenized_samples()
        caches = WorkerCaches()
        caches.ensure_epoch(1)
        execute_task("partition_map", _task(0, samples), caches)
        slim = replace(_task(0, samples),
                       samples=[replace(s, tokens=()) for s in samples])
        warm = execute_task("partition_map", slim, caches)
        assert warm.stats["prepared_hits"] == len(samples)
        assert warm.stats["prepared_misses"] == 0

    def test_bump_cache_epoch_invalidates_fleet_caches(self):
        coordinator = _coordinator()
        try:
            first = coordinator.cache_epoch
            assert coordinator.bump_cache_epoch() == first + 1
        finally:
            coordinator.close()


class TestCleanShutdown:
    def test_close_joins_every_service_thread(self):
        coordinator = _coordinator()
        worker = EmulatedWorker(coordinator.address)
        try:
            _wait_until(lambda: coordinator.worker_count == 1)
        finally:
            worker.close()
            coordinator.close()
        assert coordinator.leaked_threads() == [], \
            "coordinator close() left service threads running"

    def test_fault_armed_worker_never_reconnects(self):
        """Fault scenarios are one-shot: a worker armed with a fault must
        not rejoin the fleet after its connection is torn down."""
        import signal

        worker = Worker(("127.0.0.1", 1), fault="bad-hmac",
                        reconnect=ReconnectPolicy(max_attempts=5))
        # No coordinator is listening: the dial fails, and because a fault
        # is armed the worker gives up instead of running its backoff
        # schedule (total wait would otherwise be seconds).
        previous = signal.getsignal(signal.SIGTERM)
        started = time.monotonic()
        try:
            assert worker.run() == 1
        finally:
            signal.signal(signal.SIGTERM, previous)
        assert time.monotonic() - started < 2.0
