"""Tests for the exploit-kit corpus simulator."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.ekgen import (
    AnglerKit,
    BenignGenerator,
    CVE_INVENTORY,
    NuclearKit,
    RigKit,
    StreamConfig,
    SweetOrangeKit,
    TelemetryGenerator,
    cve_list_for_kit,
    default_timeline,
    exploit_snippet,
)
from repro.ekgen.angler import ANGLER_JAVA_MARKER, hex_decode, hex_encode
from repro.ekgen.cves import AV_CHECK_CODE, components_for_kit
from repro.ekgen.evolution import KitEvent
from repro.ekgen.identifiers import (
    random_crypt_key,
    random_delimiter,
    random_identifier,
    random_identifiers,
    random_url,
)
from repro.ekgen.nuclear import decrypt_payload, delimit_word, encrypt_payload
from repro.ekgen.sweetorange import insert_junk, remove_junk

D = datetime.date


class TestCves:
    def test_inventory_matches_figure_2(self):
        assert "CVE-2014-0515" in cve_list_for_kit("sweetorange")
        assert "CVE-2013-0074" in cve_list_for_kit("angler")
        assert "CVE-2010-0188" in cve_list_for_kit("nuclear")
        assert "CVE-2013-2551" in cve_list_for_kit("rig")

    def test_ie_cve_shared_by_all_kits(self):
        """CVE-2013-2551 appears in every kit of Figure 2."""
        for kit in CVE_INVENTORY:
            assert "CVE-2013-2551" in cve_list_for_kit(kit)

    def test_unknown_kit_raises(self):
        with pytest.raises(KeyError):
            cve_list_for_kit("blackhole")

    def test_components_for_kit(self):
        assert "flash" in components_for_kit("nuclear")
        assert "reader" in components_for_kit("nuclear")

    def test_exploit_snippet_deterministic(self):
        a = exploit_snippet("CVE-2013-2551", "ie")
        b = exploit_snippet("CVE-2013-2551", "ie")
        assert a == b

    def test_exploit_snippet_mentions_cve(self):
        snippet = exploit_snippet("CVE-2014-0515", "flash")
        assert "CVE-2014-0515" in snippet
        assert "function run_cve_2014_0515" in snippet

    def test_exploit_snippet_unknown_component(self):
        with pytest.raises(ValueError):
            exploit_snippet("CVE-1-1", "toaster")

    @pytest.mark.parametrize("component", ["flash", "silverlight", "java",
                                           "reader", "ie"])
    def test_all_components_have_snippets(self, component):
        assert len(exploit_snippet("CVE-2013-0000", component)) > 100


class TestIdentifiers:
    def test_identifier_charset(self, rng):
        for _ in range(50):
            name = random_identifier(rng)
            assert name[0].isalpha() or name[0] in "_$"
            assert 4 <= len(name) <= 8

    def test_identifiers_distinct(self, rng):
        names = random_identifiers(rng, 30)
        assert len(set(names)) == 30

    def test_delimiter_length(self, rng):
        for _ in range(20):
            assert 2 <= len(random_delimiter(rng)) <= 4

    def test_crypt_key_has_no_repeats(self, rng):
        key = random_crypt_key(rng)
        assert len(set(key)) == len(key)
        assert '"' not in key and "\\" not in key

    def test_url_shape(self, rng):
        url = random_url(rng, "rig")
        assert url.startswith("http://")
        assert ".php?" in url


class TestNuclearEncryption:
    def test_roundtrip(self, rng):
        key = random_crypt_key(rng)
        core = "function f() { return 'payload'; }\nvar x = 1;"
        assert decrypt_payload(encrypt_payload(core, key), key) == core

    def test_payload_is_digits(self, rng):
        payload = encrypt_payload("abc", random_crypt_key(rng))
        assert payload.isdigit()
        assert len(payload) == 9

    def test_different_keys_different_payloads(self):
        core = "var x = 'same core';"
        key_a = random_crypt_key(random.Random(1))
        key_b = random_crypt_key(random.Random(2))
        assert encrypt_payload(core, key_a) != encrypt_payload(core, key_b)

    def test_bad_payload_length(self):
        with pytest.raises(ValueError):
            decrypt_payload("1234", "key")

    def test_delimit_word(self):
        assert delimit_word("substr", "UluN") == "sUluNuUluNbUluNsUluNtUluNr"


class TestAnglerHex:
    def test_roundtrip(self):
        text = "if (a < b) { document.write('x'); }"
        assert hex_decode(hex_encode(text)) == text

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            hex_decode("abc")


class TestSweetOrangeJunk:
    def test_roundtrip(self):
        core = "var a = 1; function f() { return a; }"
        polluted = insert_junk(core, "JUNKTOKEN", 7)
        assert remove_junk(polluted, "JUNKTOKEN") == core
        assert "JUNKTOKEN" in polluted

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            insert_junk("abc", "J", 0)


class TestKitGeneration:
    @pytest.mark.parametrize("name", ["rig", "nuclear", "angler", "sweetorange"])
    def test_generate_produces_html_sample(self, kits, august_day, name):
        sample = kits[name].generate(august_day, random.Random(0))
        assert sample.kit == name
        assert sample.content.startswith("<html>")
        assert "<script" in sample.content
        assert sample.unpacked and sample.unpacked != sample.content

    @pytest.mark.parametrize("name", ["rig", "nuclear", "angler", "sweetorange"])
    def test_core_is_deterministic_per_day(self, kits, august_day, name):
        kit = kits[name]
        version = kit.version_for(august_day)
        assert kit.core_source(version) == kit.core_source(version)

    @pytest.mark.parametrize("name", ["rig", "nuclear", "angler", "sweetorange"])
    def test_packed_differs_per_sample(self, kits, august_day, name):
        kit = kits[name]
        a = kit.generate(august_day, random.Random(1)).content
        b = kit.generate(august_day, random.Random(2)).content
        assert a != b

    def test_core_contains_cve_payloads(self, kits, august_day):
        core = kits["nuclear"].core_source(
            kits["nuclear"].version_for(august_day))
        assert "run_cve_2010_0188" in core
        assert "detectPlugins" in core

    def test_av_check_borrowed_code_is_identical(self, kits, august_day):
        """The AV-check block Nuclear borrowed from RIG is byte-identical
        (Section II-B, code borrowing)."""
        nuclear_core = kits["nuclear"].core_source(
            kits["nuclear"].version_for(august_day))
        rig_core = kits["rig"].core_source(kits["rig"].version_for(august_day))
        assert AV_CHECK_CODE.strip() in nuclear_core
        assert AV_CHECK_CODE.strip() in rig_core

    def test_nuclear_had_no_av_check_in_june(self, kits):
        core = kits["nuclear"].core_source(
            kits["nuclear"].version_for(D(2014, 6, 15)))
        assert "detectSecuritySuites" not in core

    def test_nuclear_silverlight_cve_appended_in_late_august(self, kits):
        before = kits["nuclear"].core_source(
            kits["nuclear"].version_for(D(2014, 8, 20)))
        after = kits["nuclear"].core_source(
            kits["nuclear"].version_for(D(2014, 8, 28)))
        assert "cve_2013_0074" not in before
        assert "run_cve_2013_0074" in after

    def test_rig_urls_rotate_daily(self, kits):
        core_a = kits["rig"].core_source(kits["rig"].version_for(D(2014, 8, 5)))
        core_b = kits["rig"].core_source(kits["rig"].version_for(D(2014, 8, 6)))
        assert core_a != core_b

    def test_angler_marker_in_html_before_change(self, kits):
        sample = kits["angler"].generate(D(2014, 8, 10), random.Random(0))
        script_free_html = sample.content.split("<script")[0]
        assert ANGLER_JAVA_MARKER in script_free_html

    def test_angler_marker_hidden_after_change(self, kits):
        sample = kits["angler"].generate(D(2014, 8, 15), random.Random(0))
        assert ANGLER_JAVA_MARKER not in sample.content
        assert ANGLER_JAVA_MARKER in __import__(
            "repro.unpack.registry", fromlist=["unpack_sample"]
        ).unpack_sample(sample.content)

    def test_nuclear_packer_changes_change_packed_text(self, kits):
        """The eval-obfuscation rotation (Figure 5) shows up in the packed
        sample text."""
        before = kits["nuclear"].generate(D(2014, 8, 16), random.Random(3))
        after = kits["nuclear"].generate(D(2014, 8, 18), random.Random(3))
        assert "esa1asv" not in before.content
        assert "esa1asv" in after.content

    def test_unknown_kit_name_rejected(self, timeline):
        class Bogus(NuclearKit):
            name = "bogus"

        with pytest.raises(ValueError):
            Bogus(timeline)


class TestEvolutionTimeline:
    def test_nuclear_has_13_packer_changes(self, timeline):
        changes = timeline.packer_change_dates("nuclear")
        assert len(changes) == 13  # 12 superficial + 1 semantic (Figure 5)

    def test_version_tag_advances(self, timeline):
        early = timeline.version_for("nuclear", D(2014, 6, 1))
        late = timeline.version_for("nuclear", D(2014, 8, 30))
        assert early.version_tag == "v0"
        assert late.version_tag != early.version_tag

    def test_events_for_until_filter(self, timeline):
        events = timeline.events_for("nuclear", until=D(2014, 7, 1))
        assert all(event.date <= D(2014, 7, 1) for event in events)

    def test_unknown_kit(self, timeline):
        with pytest.raises(KeyError):
            timeline.version_for("blackhole", D(2014, 8, 1))
        with pytest.raises(KeyError):
            timeline.events_for("blackhole")

    def test_av_check_event_applies(self, timeline):
        assert not timeline.version_for("nuclear", D(2014, 7, 28)).av_check
        assert timeline.version_for("nuclear", D(2014, 7, 30)).av_check

    def test_custom_event_kind_rejected(self, timeline):
        timeline_copy = default_timeline()
        timeline_copy.add_event("rig", KitEvent(
            date=D(2014, 8, 2), kind="mystery"))
        with pytest.raises(ValueError):
            timeline_copy.version_for("rig", D(2014, 8, 3))

    def test_add_event_unknown_kit(self, timeline):
        with pytest.raises(KeyError):
            default_timeline().add_event("unknown", KitEvent(
                date=D(2014, 8, 1), kind="packer"))

    def test_angler_html_flag_flips_august_13(self, timeline):
        before = timeline.version_for("angler", D(2014, 8, 12))
        after = timeline.version_for("angler", D(2014, 8, 13))
        assert before.packer_params["exploit_string_in_html"] is True
        assert after.packer_params["exploit_string_in_html"] is False

    def test_rig_delimiter_rotation(self, timeline):
        first = timeline.version_for("rig", D(2014, 8, 2))
        second = timeline.version_for("rig", D(2014, 8, 6))
        assert first.packer_params["delimiter"] != \
            second.packer_params["delimiter"]


class TestBenignGenerator:
    def test_families_available(self):
        generator = BenignGenerator()
        assert "plugindetect" in generator.family_names()
        assert len(generator.family_names()) >= 6

    def test_family_subset(self):
        generator = BenignGenerator(families=["analytics", "ad_rotator"])
        assert generator.family_names() == ["ad_rotator", "analytics"]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            BenignGenerator(families=["adware"])

    def test_generate_is_benign(self, august_day, rng):
        sample = BenignGenerator().generate(august_day, rng)
        assert sample.kit is None
        assert not sample.is_malicious
        assert sample.benign_family is not None

    def test_specific_family(self, august_day, rng):
        sample = BenignGenerator().generate(august_day, rng,
                                            family="plugindetect")
        assert sample.benign_family == "plugindetect"
        assert "detectPlugins" in sample.content

    def test_samples_of_same_family_share_structure(self, august_day):
        from repro.jstoken import abstract_token_string

        generator = BenignGenerator()
        a = generator.generate(august_day, random.Random(1), family="analytics")
        b = generator.generate(august_day, random.Random(2), family="analytics")
        tokens_a = abstract_token_string(a.content)
        tokens_b = abstract_token_string(b.content)
        assert tokens_a == tokens_b


class TestTelemetryGenerator:
    def test_day_batch_composition(self, small_generator, august_day):
        batch = small_generator.generate_day(august_day)
        assert len(batch.benign) >= 10
        kits_seen = set(batch.by_kit())
        assert kits_seen == {"angler", "nuclear", "rig", "sweetorange"}

    def test_batch_is_deterministic(self, august_day):
        config = StreamConfig(benign_per_day=5,
                              kit_daily_counts={"rig": 2}, seed=9)
        a = TelemetryGenerator(config).generate_day(august_day)
        b = TelemetryGenerator(config).generate_day(august_day)
        assert [s.sample_id for s in a.samples] == [s.sample_id for s in b.samples]
        assert [s.content for s in a.samples] == [s.content for s in b.samples]

    def test_generate_range(self, small_generator):
        batches = list(small_generator.generate_range(D(2014, 8, 1),
                                                      D(2014, 8, 3)))
        assert [batch.date for batch in batches] == [
            D(2014, 8, 1), D(2014, 8, 2), D(2014, 8, 3)]

    def test_generate_range_invalid(self, small_generator):
        with pytest.raises(ValueError):
            list(small_generator.generate_range(D(2014, 8, 2), D(2014, 8, 1)))

    def test_unknown_kit_in_config(self, august_day):
        generator = TelemetryGenerator(StreamConfig(
            benign_per_day=1, kit_daily_counts={"blackhole": 3}))
        with pytest.raises(KeyError):
            generator.generate_day(august_day)

    def test_reference_core(self, small_generator, august_day):
        core = small_generator.reference_core("nuclear", august_day)
        assert "launchExploits" in core

    def test_scaled_config(self):
        config = StreamConfig(benign_per_day=60,
                              kit_daily_counts={"rig": 10}).scaled(0.5)
        assert config.benign_per_day == 30
        assert config.kit_daily_counts["rig"] == 5

    def test_rollout_mixes_versions_on_change_day(self):
        """On the day of a packer change some samples still use the previous
        configuration (the gradual roll-out behind the paper's same-day FN
        bumps)."""
        generator = TelemetryGenerator(StreamConfig(
            benign_per_day=0, kit_daily_counts={"nuclear": 40},
            count_jitter=0.0, transition_fraction=0.5, seed=7))
        batch = generator.generate_day(D(2014, 8, 17))
        with_new = sum(1 for s in batch.samples if "esa1asv" in s.content)
        assert 0 < with_new < len(batch.samples)
