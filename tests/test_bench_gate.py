"""Unit tests for the benchmark-regression gate (benchmarks/check_regression)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "check_regression.py")
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)

compare_runs = check_regression.compare_runs


class TestCompareRuns:
    def test_no_change_passes(self):
        regressions, notes = compare_runs({"a": 1.0}, {"a": 1.0})
        assert regressions == [] and notes == []

    def test_slowdown_over_threshold_fails(self):
        regressions, _ = compare_runs({"a": 1.0}, {"a": 1.3})
        assert len(regressions) == 1
        assert "a" in regressions[0]

    def test_slowdown_under_threshold_passes(self):
        regressions, _ = compare_runs({"a": 1.0}, {"a": 1.2})
        assert regressions == []

    def test_speedup_passes(self):
        regressions, _ = compare_runs({"a": 2.0}, {"a": 0.5})
        assert regressions == []

    def test_tiny_means_ignored(self):
        # 1ms -> 10ms is a 10x slowdown but far below the noise floor.
        regressions, _ = compare_runs({"a": 0.001}, {"a": 0.010})
        assert regressions == []

    def test_new_and_removed_benchmarks_are_notes_not_failures(self):
        regressions, notes = compare_runs({"old": 1.0}, {"new": 1.0})
        assert regressions == []
        assert any("new benchmark" in note for note in notes)
        assert any("disappeared" in note for note in notes)

    def test_custom_threshold(self):
        regressions, _ = compare_runs({"a": 1.0}, {"a": 1.1},
                                      threshold=0.05)
        assert len(regressions) == 1


class TestPerStageSeries:
    def _artifact(self, tmp_path, name, mean, extra_info):
        payload = {"date": name, "benchmarks": [
            {"name": "paper_day", "fullname": "paper_day", "rounds": 1,
             "mean_s": mean, "stddev_s": 0.0, "min_s": mean, "max_s": mean,
             "extra_info": extra_info}]}
        path = tmp_path / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_stage_walls_become_named_series(self, tmp_path):
        path = self._artifact(tmp_path, "2026-01-01", 10.0,
                              {"wall_cluster_s": 4.0, "wall_shed_s": 1.0,
                               "samples": 20000, "shed_fraction": 0.6})
        series = check_regression.load_benchmarks(path)
        assert series["paper_day"] == 10.0
        assert series["paper_day[cluster]"] == 4.0
        assert series["paper_day[shed]"] == 1.0
        # Non-wall extra info must not be gated.
        assert "paper_day[samples]" not in series
        assert not any("shed_fraction" in name for name in series)

    def test_stage_regression_fails_even_when_total_flat(self, tmp_path):
        """A stage that doubles while another shrinks must fail the gate
        even though the end-to-end mean is unchanged."""
        self._artifact(tmp_path, "2026-01-01", 10.0,
                       {"wall_cluster_s": 4.0, "wall_compile_s": 4.0})
        self._artifact(tmp_path, "2026-01-02", 10.0,
                       {"wall_cluster_s": 0.5, "wall_compile_s": 8.0})
        assert check_regression.main([str(tmp_path)]) == 1

    def test_tiny_stage_walls_not_gated(self, tmp_path):
        self._artifact(tmp_path, "2026-01-01", 10.0, {"wall_shed_s": 0.01})
        self._artifact(tmp_path, "2026-01-02", 10.0, {"wall_shed_s": 0.04})
        assert check_regression.main([str(tmp_path)]) == 0

    def test_component_walls_and_counts_become_series(self, tmp_path):
        """The cluster benchmark's extra metrics gate alongside the stage
        walls: ``*_wall_s`` component clocks and ``*_count`` behavioural
        counters each get their own named series."""
        path = self._artifact(tmp_path, "2026-01-01", 10.0,
                              {"cluster_map_wall_s": 2.5,
                               "cluster_redispatch_count": 1,
                               "workers": 2, "is_cold": True})
        series = check_regression.load_benchmarks(path)
        assert series["paper_day[cluster_map_wall_s]"] == 2.5
        assert series["paper_day[cluster_redispatch_count]"] == 1.0
        # Plain numeric extra info and booleans still are not gated.
        assert "paper_day[workers]" not in series
        assert "paper_day[is_cold]" not in series

    def test_redispatch_count_regression_fails_gate(self, tmp_path):
        """Workers being declared dead far more often than the baseline is
        a regression even when the wall clock hides it."""
        self._artifact(tmp_path, "2026-01-01", 10.0,
                       {"cluster_redispatch_count": 8})
        self._artifact(tmp_path, "2026-01-02", 10.0,
                       {"cluster_redispatch_count": 16})
        assert check_regression.main([str(tmp_path)]) == 1

    def test_single_digit_count_flutter_not_gated(self, tmp_path):
        """A timing-dependent counter fluttering 1 -> 2 (+100%) on a loaded
        runner is noise, not a regression: counters use the
        MIN_GATED_COUNT floor, not the seconds floor."""
        self._artifact(tmp_path, "2026-01-01", 10.0,
                       {"cluster_redispatch_count": 1})
        self._artifact(tmp_path, "2026-01-02", 10.0,
                       {"cluster_redispatch_count": 2})
        assert check_regression.main([str(tmp_path)]) == 0


class TestArtifactSelection:
    """Naming and recency of BENCH artifacts (the same-day baseline-loss
    bugfix): a rerun must get a fresh monotonic run suffix, and selection
    must order runs numerically, never lexicographically."""

    def _touch(self, root, name):
        (root / name).write_text("{}", encoding="utf-8")

    def test_key_parses_suffixless_as_run_one(self):
        key = check_regression.artifact_key(
            pathlib.Path("BENCH_2026-01-01.json"))
        assert key == ("2026-01-01", 1)

    def test_key_parses_run_suffix(self):
        key = check_regression.artifact_key(
            pathlib.Path("BENCH_2026-01-01_7.json"))
        assert key == ("2026-01-01", 7)

    def test_run_ten_is_newer_than_run_nine(self):
        nine = check_regression.artifact_key(
            pathlib.Path("BENCH_2026-01-01_9.json"))
        ten = check_regression.artifact_key(
            pathlib.Path("BENCH_2026-01-01_10.json"))
        assert nine < ten  # lexicographic name order would say otherwise

    def test_select_orders_across_dates_and_runs(self, tmp_path):
        names = ["BENCH_2026-01-02.json", "BENCH_2026-01-01_2.json",
                 "BENCH_2026-01-01.json", "BENCH_2026-01-02_10.json",
                 "BENCH_2026-01-02_9.json"]
        for name in names:
            self._touch(tmp_path, name)
        ordered = [p.name for p in check_regression.select_artifacts(tmp_path)]
        assert ordered == ["BENCH_2026-01-01.json", "BENCH_2026-01-01_2.json",
                           "BENCH_2026-01-02.json", "BENCH_2026-01-02_9.json",
                           "BENCH_2026-01-02_10.json"]

    def test_first_run_of_a_day_is_suffixless(self, tmp_path):
        assert check_regression.next_artifact_name(tmp_path, "2026-01-01") \
            == "BENCH_2026-01-01.json"

    def test_rerun_gets_monotonic_suffix_and_never_overwrites(self, tmp_path):
        self._touch(tmp_path, "BENCH_2026-01-01.json")
        assert check_regression.next_artifact_name(tmp_path, "2026-01-01") \
            == "BENCH_2026-01-01_2.json"
        self._touch(tmp_path, "BENCH_2026-01-01_2.json")
        assert check_regression.next_artifact_name(tmp_path, "2026-01-01") \
            == "BENCH_2026-01-01_3.json"
        # Other days don't perturb the numbering.
        self._touch(tmp_path, "BENCH_2026-01-02.json")
        assert check_regression.next_artifact_name(tmp_path, "2026-01-01") \
            == "BENCH_2026-01-01_3.json"

    def test_prune_keeps_newest(self, tmp_path):
        for name in ["BENCH_2026-01-01.json", "BENCH_2026-01-01_2.json",
                     "BENCH_2026-01-02.json", "BENCH_2026-01-03.json"]:
            self._touch(tmp_path, name)
        deleted = check_regression.prune_history(tmp_path, keep=2)
        assert [p.name for p in deleted] == ["BENCH_2026-01-01.json",
                                             "BENCH_2026-01-01_2.json"]
        remaining = sorted(p.name for p in tmp_path.glob("BENCH_*.json"))
        assert remaining == ["BENCH_2026-01-02.json", "BENCH_2026-01-03.json"]

    def test_prune_noop_within_bound(self, tmp_path):
        self._touch(tmp_path, "BENCH_2026-01-01.json")
        assert check_regression.prune_history(tmp_path, keep=5) == []
        assert (tmp_path / "BENCH_2026-01-01.json").exists()

    def test_prune_rejects_nonpositive_keep(self, tmp_path):
        with pytest.raises(ValueError):
            check_regression.prune_history(tmp_path, keep=0)


class TestMain:
    def _write_artifact(self, root, name, benchmarks):
        payload = {"date": name, "benchmarks": [
            {"name": bench_name, "fullname": bench_name, "rounds": 1,
             "mean_s": mean, "stddev_s": 0.0, "min_s": mean, "max_s": mean,
             "extra_info": {}}
            for bench_name, mean in benchmarks.items()]}
        (root / f"BENCH_{name}.json").write_text(json.dumps(payload),
                                                 encoding="utf-8")

    def test_passes_with_fewer_than_two_artifacts(self, tmp_path):
        assert check_regression.main([str(tmp_path)]) == 0
        self._write_artifact(tmp_path, "2026-01-01", {"a": 1.0})
        assert check_regression.main([str(tmp_path)]) == 0

    def test_compares_newest_two(self, tmp_path):
        self._write_artifact(tmp_path, "2026-01-01", {"a": 5.0})
        self._write_artifact(tmp_path, "2026-01-02", {"a": 1.0})
        self._write_artifact(tmp_path, "2026-01-03", {"a": 1.1})
        assert check_regression.main([str(tmp_path)]) == 0

    def test_fails_on_regression(self, tmp_path):
        self._write_artifact(tmp_path, "2026-01-01", {"a": 1.0})
        self._write_artifact(tmp_path, "2026-01-02", {"a": 2.0})
        assert check_regression.main([str(tmp_path)]) == 1

    def test_threshold_flag(self, tmp_path):
        self._write_artifact(tmp_path, "2026-01-01", {"a": 1.0})
        self._write_artifact(tmp_path, "2026-01-02", {"a": 1.2})
        assert check_regression.main([str(tmp_path)]) == 0
        assert check_regression.main(
            [str(tmp_path), "--threshold", "0.1"]) == 1

    def test_same_day_rerun_gates_against_first_run(self, tmp_path):
        """The PR 3 failure mode: a same-day rerun must compare against the
        day's earlier artifact (run suffix), not overwrite it and
        auto-pass."""
        self._write_artifact(tmp_path, "2026-01-01", {"a": 1.0})
        self._write_artifact(tmp_path, "2026-01-01_2", {"a": 2.0})
        assert check_regression.main([str(tmp_path)]) == 1

    def test_double_digit_rerun_compares_newest_two(self, tmp_path):
        """Run 10 vs run 9, not the lexicographic order (10 < 9)."""
        self._write_artifact(tmp_path, "2026-01-01_9", {"a": 5.0})
        self._write_artifact(tmp_path, "2026-01-01_10", {"a": 1.0})
        assert check_regression.main([str(tmp_path)]) == 0
        self._write_artifact(tmp_path, "2026-01-01_11", {"a": 3.0})
        assert check_regression.main([str(tmp_path)]) == 1


class TestHistoryDirectory:
    """Artifacts live in a managed ``bench_history/`` directory, not loose
    at the repo root."""

    def _write_artifact(self, root, name, benchmarks):
        TestMain._write_artifact(self, root, name, benchmarks)

    def test_history_root_creates_on_demand(self, tmp_path):
        history = check_regression.history_root(tmp_path)
        assert history == tmp_path / "bench_history"
        assert not history.exists()
        assert check_regression.history_root(tmp_path, create=True).is_dir()

    def test_main_descends_into_bench_history(self, tmp_path):
        """Given a repo root whose artifacts sit in bench_history/, the
        gate compares those — a regression there must fail."""
        history = check_regression.history_root(tmp_path, create=True)
        self._write_artifact(history, "2026-01-01", {"a": 1.0})
        self._write_artifact(history, "2026-01-02", {"a": 2.0})
        assert check_regression.main([str(tmp_path)]) == 1

    def test_direct_artifact_dir_wins_over_subdirectory(self, tmp_path):
        """A directory holding BENCH files directly (CI's staged history)
        is used as-is, even if it happens to contain a bench_history/."""
        (tmp_path / "bench_history").mkdir()
        self._write_artifact(tmp_path / "bench_history", "2026-01-01",
                             {"a": 1.0})
        self._write_artifact(tmp_path, "2026-01-01", {"a": 1.0})
        self._write_artifact(tmp_path, "2026-01-02", {"a": 5.0})
        assert check_regression.resolve_artifact_dir(tmp_path) == tmp_path
        assert check_regression.main([str(tmp_path)]) == 1

    def test_legacy_root_layout_still_compares(self, tmp_path):
        """Pre-migration layouts (artifacts loose at the root, no
        bench_history/) keep gating."""
        self._write_artifact(tmp_path, "2026-01-01", {"a": 1.0})
        self._write_artifact(tmp_path, "2026-01-02", {"a": 2.0})
        assert check_regression.main([str(tmp_path)]) == 1

    def test_empty_root_without_history_passes(self, tmp_path):
        assert check_regression.main([str(tmp_path)]) == 0
