"""Ablation: the distance-engine pruning layers.

The epsilon ablation went from ~56 s to well under a second when the
clustering stack moved onto the pruned bit-parallel engine.  This bench
attributes that speedup layer by layer: the same all-pairs neighbourhood
query runs with every pruning layer enabled, with each layer disabled in
turn, and with the sequential banded metric as the baseline — asserting
along the way that every configuration produces the identical neighbourhood
graph (pruning must never change results, only cost).
"""

from __future__ import annotations

import datetime
import time

from repro.clustering import ClusteredSample
from repro.distance import DistanceEngine, DistanceEngineConfig, \
    TokenEditDistance
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.evalharness import format_table

DAY = datetime.date(2014, 8, 5)
EPSILON = 0.10

CONFIGS = (
    ("full engine", {}),
    ("no length filter", {"length_filter": False}),
    ("no bag filter", {"bag_filter": False}),
    ("no q-gram filter", {"qgram_filter": False}),
    ("no prefilters", {"length_filter": False, "bag_filter": False,
                       "qgram_filter": False}),
    ("no cache", {"cache_size": 0}),
)


def build_points():
    generator = TelemetryGenerator(StreamConfig(
        benign_per_day=40,
        kit_daily_counts={"angler": 12, "sweetorange": 7, "nuclear": 5,
                          "rig": 4},
        seed=4242))
    batch = generator.generate_day(DAY)
    points = [ClusteredSample.from_content(s.sample_id, s.content).tokens
              for s in batch.samples]
    # Deduplicate the way DBSCAN does, so the all-pairs query matches the
    # clustering workload.
    return list(dict.fromkeys(points))


def run_ablation(points):
    results = []
    for label, overrides in CONFIGS:
        config = DistanceEngineConfig(shared_cache=False, **overrides)
        engine = DistanceEngine(config)
        started = time.perf_counter()
        adjacency, comparisons = engine.neighbourhoods(points, EPSILON)
        elapsed = time.perf_counter() - started
        results.append({
            "label": label,
            "seconds": elapsed,
            "adjacency": adjacency,
            "comparisons": comparisons,
            "stats": engine.stats.as_dict(),
        })

    # Sequential banded-metric baseline: the pre-engine code path.
    metric = TokenEditDistance(epsilon=EPSILON)
    started = time.perf_counter()
    baseline_adjacency = [
        [other for other in range(len(points))
         if other != index and metric.within(points[index], points[other],
                                             EPSILON)]
        for index in range(len(points))
    ]
    elapsed = time.perf_counter() - started
    results.append({
        "label": "sequential banded metric",
        "seconds": elapsed,
        "adjacency": baseline_adjacency,
        "comparisons": len(points) * (len(points) - 1),
        "stats": {},
    })
    return results


def test_ablation_distance_engine(benchmark):
    points = build_points()
    results = benchmark.pedantic(run_ablation, args=(points,), rounds=1,
                                 iterations=1)

    rows = []
    for outcome in results:
        stats = outcome["stats"]
        pruned = stats.get("length_pruned", 0) + stats.get("bag_pruned", 0) \
            + stats.get("qgram_pruned", 0)
        rows.append([
            outcome["label"],
            f"{outcome['seconds'] * 1000:.1f}",
            outcome["comparisons"],
            pruned,
            stats.get("kernel_calls", ""),
        ])
    print()
    print(format_table(
        ["configuration", "ms", "pairs", "pruned", "kernel calls"],
        rows, title=f"Ablation: distance-engine layers (epsilon={EPSILON})"))

    # Pruning must never change the neighbourhood graph.
    reference = results[0]["adjacency"]
    for outcome in results[1:]:
        assert outcome["adjacency"] == reference, outcome["label"]

    # The full engine must beat the sequential banded baseline comfortably.
    full = results[0]["seconds"]
    sequential = results[-1]["seconds"]
    assert full < sequential, (full, sequential)

    # With all filters on, most pairs never reach the kernel.
    stats = results[0]["stats"]
    assert stats["kernel_calls"] < stats["pairs"] / 2
