"""Ablation: winnowing fingerprint parameters (k-gram size and window).

The labeler's precision depends on the fingerprint granularity: small k-grams
inflate the overlap between unrelated code (pushing the benign PluginDetect
library over the labeling threshold — the Figure 15 risk), very large k-grams
make the day-over-day kit similarity brittle.  The ablation sweeps (k, w) and
reports both quantities.
"""

from __future__ import annotations

import datetime

from repro.ekgen import BenignGenerator, TelemetryGenerator
from repro.evalharness import format_table
from repro.winnowing.fingerprint import Fingerprint

import random

DAY = datetime.date(2014, 8, 20)
PREVIOUS = datetime.date(2014, 8, 19)
PARAMS = ((4, 6), (8, 12), (16, 24), (32, 48))


def measure(generator: TelemetryGenerator):
    nuclear_today = generator.reference_core("nuclear", DAY)
    nuclear_yesterday = generator.reference_core("nuclear", PREVIOUS)
    plugindetect = BenignGenerator().generate(
        DAY, random.Random(3), family="plugindetect").unpacked
    analytics = BenignGenerator().generate(
        DAY, random.Random(3), family="analytics").unpacked

    results = []
    for k, window in PARAMS:
        def contains(query, reference):
            fp_query = Fingerprint.of(query, k=k, window=window)
            fp_reference = Fingerprint.of(reference, k=k, window=window)
            if fp_query.size == 0:
                return 0.0
            return fp_query.intersection_size(fp_reference) / fp_query.size

        results.append((
            k, window,
            contains(nuclear_today, nuclear_yesterday),
            contains(plugindetect, nuclear_today),
            contains(analytics, nuclear_today),
        ))
    return results


def test_ablation_winnow_parameters(benchmark, generator: TelemetryGenerator):
    results = benchmark.pedantic(measure, args=(generator,), rounds=1,
                                 iterations=1)
    rows = [[k, window, f"{self_similarity:.0%}", f"{plug:.0%}", f"{plain:.0%}"]
            for k, window, self_similarity, plug, plain in results]
    print()
    print(format_table(
        ["k", "window", "nuclear day-over-day", "PluginDetect vs nuclear",
         "analytics vs nuclear"],
        rows,
        title="Ablation: winnowing parameters (library default k=8, w=12)"))

    by_params = {(k, window): (self_similarity, plug, plain)
                 for k, window, self_similarity, plug, plain in results}
    default = by_params[(8, 12)]
    # With the default parameters: the kit tracks itself day over day, the
    # plugin prober overlaps substantially (the Figure 15 situation), and
    # unrelated benign code does not.
    assert default[0] > 0.95
    assert 0.4 < default[1] < 0.9
    assert default[2] < 0.2
    # Coarser fingerprints (large k) make unrelated-code overlap drop.
    assert by_params[(32, 48)][2] <= default[2] + 0.02
    # Finer fingerprints (small k) inflate the benign/kit overlap — the
    # false-positive risk the thresholds have to absorb.
    assert by_params[(4, 6)][1] >= default[1] - 0.02
