"""Cluster-based processing performance (paper, Section IV).

The paper runs the clustering stage on 50 machines, consistently finishing a
daily batch in about 90 minutes, and identifies the single-machine reduce
(cluster reconciliation) step as the bottleneck.  This bench runs the real
distributed-clustering code on the simulated cluster across machine counts
and checks the scaling shape: the map phase parallelizes, the reduce phase
does not, so the reduce fraction grows with the machine count.
"""

from __future__ import annotations

import datetime
import random

from repro.clustering import ClusteredSample, DistributedClusterer
from repro.distsim import SimCluster
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.evalharness import format_table

DAY = datetime.date(2014, 8, 5)
MACHINE_COUNTS = (1, 5, 10, 25, 50)


def build_batch():
    generator = TelemetryGenerator(StreamConfig(
        benign_per_day=120,
        kit_daily_counts={"angler": 40, "sweetorange": 15, "nuclear": 10,
                          "rig": 6},
        seed=999))
    batch = generator.generate_day(DAY)
    return [ClusteredSample.from_content(sample.sample_id, sample.content)
            for sample in batch.samples]


def run_sweep(samples):
    results = []
    for machines in MACHINE_COUNTS:
        clusterer = DistributedClusterer(
            epsilon=0.10, min_points=3,
            sim_cluster=SimCluster(machine_count=machines))
        partitions = min(machines, max(1, len(samples) // 40))
        clusters, report = clusterer.run(samples, partitions=partitions)
        results.append((machines, partitions, len(clusters), report))
    return results


def test_perf_cluster_scaling(benchmark):
    samples = build_batch()
    results = benchmark.pedantic(run_sweep, args=(samples,), rounds=1,
                                 iterations=1)

    rows = []
    for machines, partitions, cluster_count, report in results:
        summary = report.summary()
        rows.append([machines, partitions, cluster_count,
                     f"{summary['map_s']:.1f}",
                     f"{summary['reduce_s'] + summary['gather_s']:.1f}",
                     f"{summary['total_minutes']:.2f}",
                     f"{summary['reduce_fraction']:.0%}"])
    print()
    print(format_table(
        ["machines", "partitions", "clusters", "map (s)", "reduce (s)",
         "total (min)", "reduce share"],
        rows,
        title="Cluster-based processing performance "
              f"({len(samples)} samples, simulated time)"))

    by_machines = {machines: report
                   for machines, _p, _c, report in results}
    # The map phase parallelizes: more machines, less simulated map time.
    assert by_machines[50].map_time < by_machines[1].map_time
    # The reduce step does not parallelize (it reconciles all per-partition
    # clusters on one machine), so its share of the total grows with the
    # machine count — the bottleneck the paper calls out.  At this batch size
    # the reduce can even dominate the savings of the map phase, which is why
    # the paper flags it as the place to spend further engineering effort.
    assert by_machines[50].reduce_fraction > by_machines[1].reduce_fraction
    # Clustering quality does not degrade with the machine count: the merged
    # cluster count stays in the same range (partitioning can push a few
    # borderline groups below the density threshold, nothing more).
    cluster_counts = [cluster_count for _m, _p, cluster_count, _r in results]
    assert max(cluster_counts) - min(cluster_counts) <= 8
