"""Figure 8: tokenization in action.

Reproduces the token table of Figure 8 for the paper's example line (a
Nuclear-style obfuscated eval lookup) and benchmarks the tokenizer on a full
packed sample, since tokenization is the first stage of the per-day pipeline.
"""

from __future__ import annotations

import datetime
import random

from repro.ekgen import TelemetryGenerator
from repro.evalharness import format_table
from repro.jstoken import TokenClass, tokenize

FIGURE_8_SOURCE = 'var Euur1V = this["l9D"]("ev#333399al");'

EXPECTED = [
    ("var", "Keyword"),
    ("Euur1V", "Identifier"),
    ("=", "Punctuation"),
    ("this", "Keyword"),
    ("[", "Punctuation"),
    ('"l9D"', "String"),
    ("]", "Punctuation"),
    ("(", "Punctuation"),
    ('"ev#333399al"', "String"),
    (")", "Punctuation"),
    (";", "Punctuation"),
]


def test_fig08_tokenization(benchmark, generator: TelemetryGenerator):
    sample = generator.kits["nuclear"].generate(datetime.date(2014, 8, 5),
                                                random.Random(8))
    tokens = benchmark(tokenize, sample.content)
    assert len(tokens) > 100

    figure_tokens = tokenize(FIGURE_8_SOURCE)
    rows = [[token.value, token.cls.value] for token in figure_tokens]
    print()
    print(format_table(["Token", "Class"], rows,
                       title="Figure 8: tokenization in action"))

    observed = [(token.value, token.cls.value) for token in figure_tokens]
    # ``this`` is a reserved word, so unlike the paper's simplified table we
    # class it as Keyword; everything else matches Figure 8 exactly.
    assert observed == EXPECTED
    assert all(token.cls is not TokenClass.COMMENT for token in figure_tokens)
