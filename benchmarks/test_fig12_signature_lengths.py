"""Figure 12: Kizzle signature lengths over time, with AV release call-outs.

Every bump in a kit's line marks a day Kizzle decided to compile a new
signature; those bumps line up with the kit's packer changes.  The simulated
AV's hand-written signature releases (the red call-outs of the paper figure)
trail the same changes by the analyst lag.
"""

from __future__ import annotations

import datetime

from repro.ekgen.evolution import default_timeline
from repro.evalharness import format_table


def build_rows(month_report):
    series = month_report.signature_length_series()
    dates = series["dates"]
    kits = [kit for kit in series if kit != "dates"]
    rows = []
    for index, date in enumerate(dates):
        row = [date.isoformat()]
        for kit in ("rig", "angler", "sweetorange", "nuclear"):
            row.append(series.get(kit, [0] * len(dates))[index]
                       if kit in kits else 0)
        rows.append(row)
    return rows, series


def test_fig12_signature_lengths(benchmark, month_report):
    rows, series = benchmark(build_rows, month_report)
    print()
    print(format_table(
        ["date", "RIG", "Angler", "Sweet orange", "Nuclear"], rows,
        title="Figure 12: newest deployed Kizzle signature length "
              "(characters) per kit"))
    print("AV signature releases:",
          ", ".join(str(date) for date in month_report.av_release_dates))

    dates = series["dates"]
    new_signature_days = {day.date: day.new_signatures
                          for day in month_report.days}

    # The high-volume kits have deployed signatures by the end of the month,
    # long and specific (the paper's Figure 12 range is roughly 200-1,800
    # characters; ours run longer because the synthetic packers embed larger
    # constant literals).
    assert "angler" in series and "nuclear" in series
    for kit in ("angler", "nuclear"):
        assert series[kit][-1] > 200
    covered_kits = [kit for kit in ("rig", "angler", "sweetorange", "nuclear")
                    if kit in series and series[kit][-1] > 0]
    assert len(covered_kits) >= 3

    # Kizzle responds to packer changes: around the documented Nuclear packer
    # changes of August a new signature appears within two days (a low-volume
    # day can delay a response past that window, so we require it for most
    # changes rather than every single one).
    timeline = default_timeline()
    nuclear_changes = timeline.packer_change_dates(
        "nuclear", datetime.date(2014, 8, 2), datetime.date(2014, 8, 28))
    responded = 0
    for change in nuclear_changes:
        window = [new_signature_days.get(change + datetime.timedelta(days=off), 0)
                  for off in range(0, 3)]
        if sum(window) > 0:
            responded += 1
    assert responded >= max(1, len(nuclear_changes) - 1), \
        f"Kizzle responded to only {responded}/{len(nuclear_changes)} changes"

    # Angler gets a replacement signature after the August 13 body change.
    index_before = dates.index(datetime.date(2014, 8, 12))
    later = [series["angler"][dates.index(datetime.date(2014, 8, 13)
                                          + datetime.timedelta(days=off))]
             for off in range(0, 5)]
    assert any(value != series["angler"][index_before] for value in later)

    # AV releases trail kit changes by the analyst lag: every release in the
    # study window is at or after the corresponding change date.
    study_releases = [date for date in month_report.av_release_dates
                      if date > datetime.date(2014, 8, 1)]
    assert study_releases, "the AV analysts never shipped an update"
    all_changes = []
    for kit in ("rig", "angler", "sweetorange", "nuclear"):
        all_changes.extend(timeline.packer_change_dates(kit))
    assert all(any(release >= change for change in all_changes)
               for release in study_releases)
