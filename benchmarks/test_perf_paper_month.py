"""Paper-scale *month* benchmark (nightly).

The paper's pipeline runs nightly for a month over 80k-500k samples/day;
this benchmark runs the full August 2014 window at a downscaled paper-shape
volume (``StreamConfig.paper_scale``, ~1k samples/day — same kit prevalence
ratios, ~17x the default test stream) through the warm stage-graph
pipeline.  Per-stage wall clocks are *aggregated over the month* and
serialized as ``wall_<stage>_s`` extra info, so the nightly regression gate
(``benchmarks/check_regression.py``) catches a slowdown confined to one
stage — shed, prepare, cluster, label, compile or finalize — even when the
end-to-end mean hides it.

Contracts asserted:

* steady-state days shed the bulk of the stream (the paper's "most of the
  stream is the same grayware every day");
* the Angler August 13 packer change still produces a new signature
  mid-month (shedding/carry-forward never freeze the signature set);
* every sample is accounted for: shed, clustered or noise, every day.
"""

from __future__ import annotations

import datetime

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.ekgen import StreamConfig, TelemetryGenerator

AUGUST_START = datetime.date(2014, 8, 1)
DAYS = 31

#: Downscaled paper-shape daily volume (ratios preserved, jitter applies).
PAPER_MONTH_SAMPLES_PER_DAY = 1_000

KITS = ("nuclear", "angler", "rig", "sweetorange")


def test_paper_scale_month_end_to_end(benchmark):
    seed_stream = TelemetryGenerator(StreamConfig(seed=20140801))
    stream = TelemetryGenerator(
        StreamConfig.paper_scale(samples_per_day=PAPER_MONTH_SAMPLES_PER_DAY))

    def run_month():
        kizzle = Kizzle(KizzleConfig(
            machines=50, min_points=3,
            incremental=IncrementalConfig(enabled=True)))
        for kit in KITS:
            kizzle.seed_known_kit(kit, [seed_stream.reference_core(
                kit, AUGUST_START - datetime.timedelta(days=1))])
        results = []
        for offset in range(DAYS):
            date = AUGUST_START + datetime.timedelta(days=offset)
            batch = stream.generate_day(date)
            result = kizzle.process_day(
                [(s.sample_id, s.content) for s in batch.samples], date)
            # Accounting: every sample is shed, clustered or noise.
            clustered = sum(
                1 for report in result.clusters
                for sample in report.cluster.samples
                if not sample.sample_id.startswith("sentinel-"))
            assert result.shed_count + clustered + result.noise_count \
                == result.sample_count, date
            results.append(result)
        return kizzle, results

    kizzle, results = benchmark.pedantic(run_month, rounds=1, iterations=1)

    sample_total = sum(result.sample_count for result in results)
    shed_total = sum(result.shed_count for result in results)
    # Day one is all-novel by construction; the steady state must shed the
    # bulk of the stream.
    steady = results[1:]
    steady_shed = sum(result.shed_count for result in steady)
    steady_samples = sum(result.sample_count for result in steady)
    assert steady_shed >= 0.3 * steady_samples

    # The Angler August 13 update still yields a new signature mid-month.
    angler = kizzle.database.signatures_for(kit="angler")
    assert any(signature.created >= datetime.date(2014, 8, 13)
               for signature in angler), \
        "packer change did not produce a new signature on the warm path"

    benchmark.extra_info["samples"] = sample_total
    benchmark.extra_info["days"] = len(results)
    benchmark.extra_info["backend"] = results[-1].backend
    benchmark.extra_info["shed_fraction"] = round(shed_total / sample_total, 3)
    benchmark.extra_info["signatures"] = len(list(kizzle.database))
    benchmark.extra_info["carried_clusters"] = sum(
        result.carried_cluster_count for result in results)
    benchmark.extra_info["prepared_lexer_runs"] = sum(
        result.prepared_stats.get("raw_misses", 0) for result in results)
    # Month-aggregated per-stage walls, gated stage by stage nightly.
    stage_totals = {}
    for result in results:
        for stage, seconds in result.stage_walls.items():
            stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
    for stage, seconds in sorted(stage_totals.items()):
        benchmark.extra_info[f"wall_{stage}_s"] = round(seconds, 3)
