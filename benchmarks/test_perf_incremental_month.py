"""Warm-versus-cold month benchmark (PR 2 headline number).

Runs the default-scale month experiment twice — once cold (every day from
scratch, the seed behaviour) and once warm (shedding + carry-forward + fast
scanning) — and asserts the two contracts of the incremental pipeline:

* identical per-day FP/FN metrics for both engines, every day;
* the warm run is at least 5x faster end to end.

The per-run timings are recorded as benchmark extra info so the nightly
``BENCH_<date>.json`` artifact tracks the speedup PR over PR.

A second test re-runs the warm month on each execution backend (serial /
process / distsim) and asserts byte-identical per-day FP/FN and deployed
signatures — the month-scale version of ``tests/test_backends.py``.
"""

from __future__ import annotations

import datetime
import time

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.ekgen import StreamConfig
from repro.evalharness import ExperimentConfig, MonthExperiment
from repro.exec import BackendConfig

AUGUST_START = datetime.date(2014, 8, 1)
AUGUST_END = datetime.date(2014, 8, 31)

#: Required end-to-end speedup of the warm path over the cold path.
MIN_SPEEDUP = 5.0


def _month_config(incremental: bool,
                  backend: str = "distsim") -> ExperimentConfig:
    return ExperimentConfig(
        start=AUGUST_START, end=AUGUST_END, seed_days=3,
        stream=StreamConfig(
            benign_per_day=30,
            kit_daily_counts={"angler": 14, "sweetorange": 6, "nuclear": 5,
                              "rig": 3},
            seed=20140801),
        kizzle=KizzleConfig(
            machines=10, min_points=3,
            incremental=IncrementalConfig(enabled=incremental),
            backend=BackendConfig(kind=backend)))


def _day_metrics(day) -> tuple:
    return (day.kizzle.confusion.false_positives,
            day.kizzle.confusion.false_negatives,
            day.av.confusion.false_positives,
            day.av.confusion.false_negatives)


def test_incremental_month_speedup_and_equivalence(benchmark):
    started = time.perf_counter()
    cold_report = MonthExperiment(_month_config(False)).run()
    cold_seconds = time.perf_counter() - started

    def run_warm():
        return MonthExperiment(_month_config(True)).run()

    warm_report = benchmark.pedantic(run_warm, rounds=1, iterations=1)
    warm_seconds = benchmark.stats.stats.mean

    assert len(cold_report.days) == len(warm_report.days) == 31
    for cold_day, warm_day in zip(cold_report.days, warm_report.days):
        assert _day_metrics(cold_day) == _day_metrics(warm_day), \
            f"metrics diverged on {cold_day.date}"
    assert cold_report.overall_rates() == warm_report.overall_rates()

    speedup = cold_seconds / warm_seconds
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    shed_total = sum(day.shed_count for day in warm_report.days)
    sample_total = sum(day.sample_count for day in warm_report.days)
    benchmark.extra_info["shed_total"] = shed_total
    benchmark.extra_info["shed_fraction"] = round(
        shed_total / sample_total, 3)
    # The warm path must actually be shedding the known bulk of the
    # stream, not just winning on caching.
    assert shed_total > 0.3 * sample_total
    assert speedup >= MIN_SPEEDUP, \
        f"warm path only {speedup:.2f}x faster (cold {cold_seconds:.1f}s, " \
        f"warm {warm_seconds:.1f}s); need >= {MIN_SPEEDUP}x"


def test_backend_equivalence_on_seeded_month(benchmark):
    """The warm seeded month is byte-identical on every execution backend:
    per-day FP/FN, overall rates, and the deployed signature database."""

    def run(backend):
        experiment = MonthExperiment(_month_config(True, backend=backend))
        report = experiment.run()
        signatures = [(s.kit, s.created, s.pattern)
                      for s in experiment.kizzle.database]
        return report, signatures

    reference_report, reference_signatures = benchmark.pedantic(
        lambda: run("serial"), rounds=1, iterations=1)
    for backend in ("process", "distsim"):
        report, signatures = run(backend)
        assert signatures == reference_signatures, \
            f"{backend} signatures diverged from serial"
        for serial_day, other_day in zip(reference_report.days, report.days):
            assert _day_metrics(serial_day) == _day_metrics(other_day), \
                f"{backend} metrics diverged on {serial_day.date}"
        assert report.overall_rates() == reference_report.overall_rates()
    benchmark.extra_info["backends"] = "serial,process,distsim"
    benchmark.extra_info["days"] = len(reference_report.days)
