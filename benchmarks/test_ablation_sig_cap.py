"""Ablation: the common-window token cap (paper: 200 tokens, Section III-C).

The cap bounds signature size and generation cost.  The ablation compiles
Nuclear signatures at several caps and measures signature length, whether the
signature still detects unseen same-version samples, and whether it still
rejects benign content and other kits.
"""

from __future__ import annotations

import datetime
import random

from repro.ekgen import BenignGenerator, TelemetryGenerator
from repro.evalharness import format_table
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures import SignatureCompiler, SignatureConfig

DAY = datetime.date(2014, 8, 5)
CAPS = (25, 50, 100, 200, 400)


def build_materials(generator: TelemetryGenerator):
    cluster = [generator.kits["nuclear"].generate(DAY, random.Random(seed)).content
               for seed in range(8)]
    unseen = [normalize_for_scan(
        generator.kits["nuclear"].generate(DAY, random.Random(900 + i)).content)
        for i in range(6)]
    other_kit = normalize_for_scan(
        generator.kits["sweetorange"].generate(DAY, random.Random(7)).content)
    benign = [normalize_for_scan(
        BenignGenerator().generate(DAY, random.Random(i)).content)
        for i in range(8)]
    return cluster, unseen, other_kit, benign


def sweep(materials):
    cluster, unseen, other_kit, benign = materials
    results = []
    for cap in CAPS:
        compiler = SignatureCompiler(SignatureConfig(max_window_tokens=cap))
        signature = compiler.compile_cluster(cluster, "nuclear", DAY)
        detected = sum(1 for text in unseen if signature.matches(text))
        fp = sum(1 for text in benign if signature.matches(text))
        cross = signature.matches(other_kit)
        results.append((cap, signature.token_length, signature.length,
                        detected, len(unseen), fp, cross))
    return results


def test_ablation_signature_cap(benchmark, generator: TelemetryGenerator):
    materials = build_materials(generator)
    results = benchmark.pedantic(sweep, args=(materials,), rounds=1,
                                 iterations=1)
    rows = [[cap, tokens, chars, f"{detected}/{total}", fp, cross]
            for cap, tokens, chars, detected, total, fp, cross in results]
    print()
    print(format_table(
        ["cap (tokens)", "window", "chars", "unseen detected",
         "benign FP", "matches other kit"],
        rows,
        title="Ablation: common-window token cap (paper uses 200)"))

    by_cap = {cap: row for cap, *row in results}
    # Longer caps produce longer signatures.
    assert by_cap[200][1] > by_cap[25][1]
    # At the paper's cap the signature detects unseen same-version samples
    # and produces no benign false positives or cross-kit matches.
    assert by_cap[200][2] == by_cap[200][3]
    assert by_cap[200][4] == 0
    assert not by_cap[200][5]
    # Even the shortest cap stays free of false positives here — the cost of
    # a small cap is specificity over time, not instant FPs.
    assert by_cap[25][4] == 0
