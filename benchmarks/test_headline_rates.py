"""The headline result (abstract, Sections I and VII).

"When evaluated over a four-week period, false-positive rates for Kizzle are
under 0.03%, while the false-negative rates are under 5%", rivalling the
manually-maintained AV signatures.  At our (three orders of magnitude
smaller) stream volume, the shape to preserve is: Kizzle FP at or below the
AV's and in the sub-percent range, Kizzle FN in the single digits and below
the AV's.
"""

from __future__ import annotations

from repro.evalharness import format_table


def test_headline_rates(benchmark, month_report):
    rates = benchmark(month_report.overall_rates)
    counts = month_report.cluster_count_range()

    print()
    print(format_table(
        ["metric", "Kizzle", "AV", "paper (Kizzle)"],
        [["false-positive rate", f"{rates['kizzle_fp_rate']:.3%}",
          f"{rates['av_fp_rate']:.3%}", "< 0.03%"],
         ["false-negative rate", f"{rates['kizzle_fn_rate']:.3%}",
          f"{rates['av_fn_rate']:.3%}", "< 5%"]],
        title="Headline accuracy over the four-week window"))
    print(f"Clusters per day: {counts['min']}-{counts['max']} "
          "(paper: 280-1,200 at full telemetry volume)")
    malicious_clusters = [day.malicious_cluster_count
                          for day in month_report.days]
    print(f"Malicious clusters per day: {min(malicious_clusters)}-"
          f"{max(malicious_clusters)} (paper: 'only a handful')")

    # Kizzle's false negatives are in the single digits and below the AV's.
    assert rates["kizzle_fn_rate"] < 0.10
    assert rates["kizzle_fn_rate"] < rates["av_fn_rate"]
    # Kizzle's false positives are tiny and not worse than the AV's by more
    # than a rounding error at this scale.
    assert rates["kizzle_fp_rate"] < 0.02
    assert rates["kizzle_fp_rate"] <= rates["av_fp_rate"] + 0.005
    # Most clusters are benign; only a handful per day are malicious.
    assert max(malicious_clusters) <= 12
    assert counts["max"] > max(malicious_clusters)
