"""Figure 14: absolute false-positive / false-negative counts per kit.

The paper's table (at telemetry scale): ground truth 58,856 malicious samples
dominated by Angler, AV FN 7,587 vs Kizzle FN 349, AV FP 647 vs Kizzle FP
266, with RIG the hardest kit for Kizzle relative to its tiny volume.  Our
synthetic stream is roughly three orders of magnitude smaller; the shape to
preserve is the prevalence ordering and Kizzle's FN advantage.
"""

from __future__ import annotations

from repro.evalharness import format_absolute_counts

KIT_ORDER = ["nuclear", "sweetorange", "angler", "rig"]


def test_fig14_absolute_counts(benchmark, month_report):
    def build():
        return (month_report.ground_truth.kit_totals(),
                month_report.av_counts(), month_report.kizzle_counts())

    ground_truth, av_counts, kizzle_counts = benchmark(build)
    print()
    print(format_absolute_counts(ground_truth, av_counts, kizzle_counts,
                                 kits=KIT_ORDER))

    # Prevalence ordering matches the paper: Angler >> Sweet Orange >
    # Nuclear > RIG.
    assert ground_truth["angler"] > ground_truth["sweetorange"] \
        > ground_truth["nuclear"] > ground_truth["rig"]

    av_fn_total = sum(av_counts.false_negatives.values())
    kizzle_fn_total = sum(kizzle_counts.false_negatives.values())
    av_fp_total = sum(av_counts.false_positives.values())
    kizzle_fp_total = sum(kizzle_counts.false_positives.values())
    malicious_total = sum(ground_truth.values())

    # Kizzle misses far fewer malicious samples than the AV (paper: 349 vs
    # 7,587), and its FP count is no worse than the same order of magnitude.
    assert kizzle_fn_total < av_fn_total
    assert kizzle_fn_total <= 0.12 * malicious_total
    assert kizzle_fp_total <= max(10, 2 * av_fp_total)

    # The AV's biggest miss is Angler (the window of vulnerability); for
    # Kizzle the hardest kit relative to volume is RIG.
    assert max(av_counts.false_negatives,
               key=av_counts.false_negatives.get) == "angler"
    kizzle_relative_fn = {
        kit: kizzle_counts.false_negatives.get(kit, 0) / ground_truth[kit]
        for kit in KIT_ORDER}
    assert max(kizzle_relative_fn, key=kizzle_relative_fn.get) == "rig"
