"""Partition-parallel cluster-stage benchmark (PR 4).

The paper's argument for daily web-scale clustering is that the map stage —
tokenize + DBSCAN per partition — is embarrassingly parallel across the
cluster.  This benchmark runs exactly that stage (``DistributedClusterer``
over a cold paper-shape day, raw samples in, merged clusters out) once
inline (``workers=1``) and once on the partition pool at
:data:`PARALLEL_WORKERS` workers, asserts the merged clusters are
byte-identical, and serializes both walls plus the speedup into
``BENCH_<date>.json``.

The *benchmark mean* (the gated series) times only the inline run —
serial, stable, tracking the map code's real cost PR over PR.  The pooled
wall and the speedup are recorded under non-gated extra-info keys
(``cluster_4w_seconds`` / ``cluster_speedup_4w`` — deliberately *not* the
gate's ``*_wall_s`` suffix), because an oversubscribed pool's wall clock
on a small host swings far beyond the gate's 25% threshold run to run.
The ≥1.5× speedup contract is asserted when the host actually has
``PARALLEL_WORKERS`` cores (the nightly CI runner does);
on smaller boxes the measurement is still recorded — a 1-core container
cannot exhibit parallel speedup, and pretending otherwise would just make
the suite flaky.
"""

from __future__ import annotations

import datetime
import os
import time

from repro.clustering import ClusteredSample, DistributedClusterer
from repro.distance.engine import DistanceEngineConfig
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.exec.backend import BackendConfig, create_backend

DAY = datetime.date(2014, 8, 2)
#: Paper-shape day, scaled to keep two cold cluster-stage runs tractable on
#: the nightly runner (the shape — duplicate-heavy grayware — is what
#: matters for the workload, not the absolute count).
SAMPLES_PER_DAY = 3_000
PARTITIONS = 8
PARALLEL_WORKERS = 4
SPEEDUP_FLOOR = 1.5


def _raw_batch():
    generator = TelemetryGenerator(
        StreamConfig.paper_scale(samples_per_day=SAMPLES_PER_DAY))
    batch = generator.generate_day(DAY)
    # Raw samples: tokenization happens inside the per-partition map, which
    # is precisely the work the pool parallelizes.
    return [ClusteredSample(sample_id=sample.sample_id,
                            content=sample.content)
            for sample in batch.samples]


def _run_cluster_stage(samples, workers):
    backend = create_backend(BackendConfig(
        kind="process", workers=workers,
        partition_parallel=workers > 1))
    clusterer = DistributedClusterer(
        epsilon=0.10, min_points=3, seed=0,
        engine_config=DistanceEngineConfig(workers=workers,
                                           shared_cache=False),
        backend=backend, machines=PARTITIONS)
    started = time.perf_counter()
    clusters, report = clusterer.run(samples, partitions=PARTITIONS)
    wall = time.perf_counter() - started
    backend.close()
    key = [(cluster.cluster_id,
            sorted(sample.sample_id for sample in cluster.samples))
           for cluster in clusters]
    return key, report, wall


def test_partition_parallel_cluster_stage(benchmark):
    samples = _raw_batch()

    inline_key, inline_report, inline_wall = benchmark.pedantic(
        _run_cluster_stage, args=(samples, 1), rounds=1, iterations=1)
    pooled_key, pooled_report, pooled_wall = _run_cluster_stage(
        samples, workers=PARALLEL_WORKERS)

    # Where the map ran must never leak into what came out.
    assert pooled_key == inline_key
    assert inline_report.map_workers == 1
    assert pooled_report.map_workers == PARALLEL_WORKERS
    assert pooled_report.map_wall_seconds > 0.0

    speedup = inline_wall / max(pooled_wall, 1e-9)
    benchmark.extra_info["samples"] = len(samples)
    benchmark.extra_info["partitions"] = PARTITIONS
    benchmark.extra_info["clusters"] = len(inline_key)
    benchmark.extra_info["cpu_cores"] = os.cpu_count()
    benchmark.extra_info["cluster_1w_seconds"] = round(inline_wall, 3)
    benchmark.extra_info[f"cluster_{PARALLEL_WORKERS}w_seconds"] = \
        round(pooled_wall, 3)
    benchmark.extra_info[f"cluster_speedup_{PARALLEL_WORKERS}w"] = \
        round(speedup, 3)

    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"cluster stage at {PARALLEL_WORKERS} workers: {speedup:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x; inline {inline_wall:.1f}s, "
            f"pooled {pooled_wall:.1f}s)")
