"""Cluster-backend benchmark: the socket-distributed map, gated nightly.

Runs the clustering stage of a cold paper-shape day on the true
multi-machine backend — a TCP coordinator leasing whole partition map
tasks to two real localhost worker subprocesses — and serializes the
distributed map's cost and failure telemetry into the nightly
``BENCH_<date>.json``:

* ``cluster_map_wall_s`` — wall clock of the socket-distributed map
  (lease + remote tokenize/DBSCAN + result collection), gated by
  ``check_regression.py`` via its ``*_wall_s`` series rule so a transport
  or scheduling regression fails the night even if other work masks it;
* ``cluster_redispatch_count`` — re-dispatches observed in the
  fault-recovery pass below, gated via the ``*_count`` rule so workers
  being declared dead more often than the baseline is itself a regression;
* ``cluster_warm_map_wall_s`` — wall clock of a *repeat* (warm) map on the
  same fleet with partition affinity on: the workers' persistent caches
  and the coordinator's slim (token-stripped) re-leases make this the
  day-over-day steady state, so its regression gate guards the warmth
  machinery itself;
* ``cluster_warm_reship_bytes_count`` — encoded task bytes shipped during
  that warm repeat map (the ``_count`` suffix opts it into the counter
  gate): affinity re-leases partitions slim, so this growing back toward
  the affinity-off baseline means the re-shipping optimisation quietly
  stopped working.  The affinity-off baseline itself, and the
  handshake/HMAC costs of the authenticated wire, ride along ungated in
  ``extra_info`` (informational: they reflect payload shape and crypto
  throughput, not scheduling behaviour).

Two contracts are asserted on every run, not just recorded:

1. the clusters coming back from the socket workers are byte-identical to
   the inline serial run of the very same buckets, and
2. a rerun with one of the two workers SIGKILLed mid-map recovers through
   the re-dispatch path (``cluster_redispatch_count >= 1``) and is *still*
   byte-identical.
"""

from __future__ import annotations

import datetime
import os
import time

from repro.clustering import ClusteredSample, DistributedClusterer
from repro.distance.engine import DistanceEngineConfig
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.exec.backend import BackendConfig, create_backend
from repro.exec.cluster import spawn_local_worker

DAY = datetime.date(2014, 8, 2)
#: Paper-shape day scaled so the three cluster-stage runs (serial
#: reference, clean cluster, faulted cluster) stay tractable nightly.
SAMPLES_PER_DAY = 1_500
PARTITIONS = 8
WORKERS = 2


def _raw_batch():
    generator = TelemetryGenerator(
        StreamConfig.paper_scale(samples_per_day=SAMPLES_PER_DAY))
    batch = generator.generate_day(DAY)
    # Raw samples: tokenization rides the distributed map, exactly the
    # work the paper ships to its cluster machines.
    return [ClusteredSample(sample_id=sample.sample_id,
                            content=sample.content)
            for sample in batch.samples]


def _cluster_key(clusters):
    return [(cluster.cluster_id,
             sorted(sample.sample_id for sample in cluster.samples))
            for cluster in clusters]


def _run_serial(samples):
    backend = create_backend(BackendConfig(kind="serial"))
    try:
        clusterer = DistributedClusterer(
            epsilon=0.10, min_points=3, seed=0,
            engine_config=DistanceEngineConfig(workers=1,
                                               shared_cache=False),
            backend=backend, machines=PARTITIONS)
        clusters, _report = clusterer.run(samples, partitions=PARTITIONS)
        return _cluster_key(clusters)
    finally:
        backend.close()


def _run_on_cluster(samples, fault=None):
    """One cluster-stage run on a 2-worker localhost cluster.

    With ``fault``, the second worker is spawned faulty (and the
    coordinator is told to wait for both, so the faulty one is guaranteed
    a lease before it dies — see the coordinator's first-lease fairness).
    """
    # Generous heartbeat margin: SIGKILL detection rides the dropped
    # socket, not the heartbeat, so a wide window costs nothing here while
    # keeping a busy runner from spuriously declaring the survivor dead
    # (which would flutter the recorded redispatch count).
    backend = create_backend(BackendConfig(
        kind="cluster", spawn_workers=0 if fault else WORKERS,
        heartbeat_timeout_s=10.0, task_deadline_s=120.0))
    procs = []
    if fault:
        backend.coordinator.min_workers = WORKERS
        procs = [spawn_local_worker(backend.address,
                                    heartbeat_interval=0.5),
                 spawn_local_worker(backend.address,
                                    heartbeat_interval=0.5, fault=fault)]
    try:
        clusterer = DistributedClusterer(
            epsilon=0.10, min_points=3, seed=0,
            engine_config=DistanceEngineConfig(workers=1,
                                               shared_cache=False),
            backend=backend, machines=PARTITIONS)
        started = time.perf_counter()
        clusters, report = clusterer.run(samples, partitions=PARTITIONS)
        wall = time.perf_counter() - started
        return (_cluster_key(clusters), report, wall,
                backend.redispatch_count, backend.remote_task_count)
    finally:
        backend.close()
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10.0)


def test_cluster_backend_map(benchmark):
    samples = _raw_batch()
    serial_key = _run_serial(samples)

    key, report, _wall, redispatched, remote = benchmark.pedantic(
        _run_on_cluster, args=(samples,), rounds=1, iterations=1)
    assert key == serial_key, "socket-distributed map diverged from serial"
    assert remote >= PARTITIONS, \
        "partition tasks did not actually run on the workers"
    assert redispatched == 0, "clean run should not re-dispatch"
    assert report.map_wall_seconds > 0.0

    fault_key, _fault_report, _fault_wall, fault_redispatched, _ = \
        _run_on_cluster(samples, fault="sigkill-mid-task")
    assert fault_key == serial_key, \
        "map diverged after losing a worker mid-map"
    assert fault_redispatched >= 1, \
        "worker loss did not exercise the re-dispatch path"

    benchmark.extra_info["samples"] = len(samples)
    benchmark.extra_info["partitions"] = PARTITIONS
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cpu_cores"] = os.cpu_count()
    benchmark.extra_info["cluster_map_wall_s"] = \
        round(report.map_wall_seconds, 3)
    benchmark.extra_info["cluster_redispatch_count"] = fault_redispatched


# ----------------------------------------------------------------------
# warm repeat map: partition affinity + slim re-leases
# ----------------------------------------------------------------------
def _tokenized_batch():
    """The warm pipeline's shape: samples arrive already tokenized (the
    prepare stage ran), so the only thing a full lease ships that a slim
    one does not is the token strings themselves."""
    generator = TelemetryGenerator(
        StreamConfig.paper_scale(samples_per_day=SAMPLES_PER_DAY))
    batch = generator.generate_day(DAY)
    return [ClusteredSample.from_content(sample.sample_id, sample.content)
            for sample in batch.samples]


def _run_warm_on_cluster(samples, affinity):
    """Two maps of the same day on one 2-worker fleet; measure the second.

    The first (cold) map seeds the workers' persistent caches and the
    coordinator's partition->worker affinity; the second is the warm
    steady state this benchmark records: with affinity on, repeat
    partitions re-lease to their previous worker with tokens stripped.
    """
    backend = create_backend(BackendConfig(
        kind="cluster", spawn_workers=WORKERS,
        heartbeat_timeout_s=10.0, task_deadline_s=120.0,
        affinity=affinity))
    try:
        clusterer = DistributedClusterer(
            epsilon=0.10, min_points=3, seed=0,
            engine_config=DistanceEngineConfig(workers=1,
                                               shared_cache=False),
            backend=backend, machines=PARTITIONS)
        # Pre-tokenized partitions are below the fan-out worth threshold
        # at this scale; force the map onto the workers either way.
        clusterer.pooled_partition_min = 1
        clusterer.run(samples, partitions=PARTITIONS)
        coordinator = backend.coordinator
        cold_bytes = coordinator.task_bytes_sent
        started = time.perf_counter()
        clusters, report = clusterer.run(samples, partitions=PARTITIONS)
        warm_wall = time.perf_counter() - started
        return (_cluster_key(clusters), report, warm_wall,
                coordinator.task_bytes_sent - cold_bytes,
                coordinator.slim_leases, coordinator.tokens_stripped_chars)
    finally:
        backend.close()


def _measure_wire_overhead():
    """Per-frame HMAC/codec cost and a live handshake round trip, both
    informational (ungated): they track crypto and payload throughput,
    not cluster scheduling."""
    from repro.exec import wire
    from repro.exec.cluster import ClusterCoordinator
    import socket

    body = wire.dumps_payload(("task", {"task_id": 1, "kind": "noop",
                                        "payload": list(range(512))}))
    key = wire.derive_key("nightly-bench")
    rounds = 2_000
    started = time.perf_counter()
    for seq in range(1, rounds + 1):
        frame = wire.encode_frame_raw(body, key=key, seq=seq)
        wire.decode_frame_ex(frame, key=key, last_seq=seq - 1)
    frame_us = (time.perf_counter() - started) / rounds * 1e6

    coordinator = ClusterCoordinator("127.0.0.1", 0, secret="nightly-bench")
    coordinator.start()
    try:
        started = time.perf_counter()
        sock = socket.create_connection(coordinator.address, timeout=5.0)
        codec = wire.FrameCodec("nightly-bench")
        codec.send(sock, ("hello", {"version": wire.WIRE_VERSION, "pid": 0}))
        kind, _body = codec.recv(sock)
        handshake_s = time.perf_counter() - started
        assert kind == "welcome"
        sock.close()
    finally:
        coordinator.close()
    return frame_us, handshake_s


def test_cluster_warm_affinity_map(benchmark):
    samples = _tokenized_batch()
    serial_key = _run_serial(samples)

    warm_key, report, _warm_wall, reship_bytes, slim_leases, stripped = \
        benchmark.pedantic(_run_warm_on_cluster, args=(samples, True),
                           rounds=1, iterations=1)
    assert warm_key == serial_key, \
        "warm affinity map diverged from serial"
    assert slim_leases >= 1, \
        "no repeat partition was re-leased slim to its previous worker"
    assert stripped > 0

    off_key, _off_report, _off_wall, off_bytes, off_slim, _ = \
        _run_warm_on_cluster(samples, affinity=False)
    assert off_key == serial_key, \
        "affinity-off map diverged from serial"
    assert off_slim == 0, "affinity off must never strip a lease"
    assert reship_bytes < off_bytes, \
        "affinity did not reduce warm-map task shipping " \
        f"({reship_bytes} vs {off_bytes} bytes)"

    frame_us, handshake_s = _measure_wire_overhead()

    benchmark.extra_info["samples"] = len(samples)
    benchmark.extra_info["partitions"] = PARTITIONS
    benchmark.extra_info["workers"] = WORKERS
    # Gated series: the warm steady state is the product being protected.
    benchmark.extra_info["cluster_warm_map_wall_s"] = \
        round(report.map_wall_seconds, 3)
    benchmark.extra_info["cluster_warm_reship_bytes_count"] = reship_bytes
    # Informational (ungated): baselines and wire costs.
    benchmark.extra_info["warm_task_bytes_affinity_off"] = off_bytes
    benchmark.extra_info["warm_slim_leases"] = slim_leases
    benchmark.extra_info["warm_tokens_stripped_chars"] = stripped
    benchmark.extra_info["wire_frame_roundtrip_us"] = round(frame_us, 2)
    benchmark.extra_info["wire_handshake_seconds"] = round(handshake_s, 4)
