"""Ablation: the DBSCAN epsilon threshold (paper: 0.10, Section III-A).

The paper chose 0.10 "to generate a reasonably small number of clusters,
while not generating clusters that are too generic".  The ablation clusters
one mixed day at several epsilons and measures cluster count and purity
(fraction of clusters whose members all share one ground-truth family).
"""

from __future__ import annotations

import datetime

from repro.clustering import ClusteredSample, DistributedClusterer
from repro.distsim import SimCluster
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.evalharness import format_table

DAY = datetime.date(2014, 8, 5)
EPSILONS = (0.02, 0.10, 0.30, 0.60)


def build_labeled_batch():
    generator = TelemetryGenerator(StreamConfig(
        benign_per_day=40,
        kit_daily_counts={"angler": 12, "sweetorange": 7, "nuclear": 5,
                          "rig": 4},
        seed=4242))
    batch = generator.generate_day(DAY)
    labels = {}
    samples = []
    for sample in batch.samples:
        family = sample.kit or f"benign:{sample.benign_family}"
        labels[sample.sample_id] = family
        samples.append(ClusteredSample.from_content(sample.sample_id,
                                                    sample.content))
    return samples, labels


def sweep(samples, labels):
    results = []
    for epsilon in EPSILONS:
        clusterer = DistributedClusterer(
            epsilon=epsilon, min_points=3,
            sim_cluster=SimCluster(machine_count=4))
        clusters, _report = clusterer.run(samples, partitions=2)
        pure = 0
        clustered_samples = 0
        for cluster in clusters:
            families = {labels[sample.sample_id] for sample in cluster.samples}
            clustered_samples += cluster.size
            if len(families) == 1:
                pure += 1
        purity = pure / len(clusters) if clusters else 0.0
        coverage = clustered_samples / len(samples)
        results.append((epsilon, len(clusters), purity, coverage))
    return results


def test_ablation_dbscan_epsilon(benchmark):
    samples, labels = build_labeled_batch()
    results = benchmark.pedantic(sweep, args=(samples, labels), rounds=1,
                                 iterations=1)
    rows = [[epsilon, count, f"{purity:.0%}", f"{coverage:.0%}"]
            for epsilon, count, purity, coverage in results]
    print()
    print(format_table(["epsilon", "clusters", "cluster purity", "coverage"],
                       rows,
                       title="Ablation: DBSCAN epsilon (paper uses 0.10)"))

    by_epsilon = {epsilon: (count, purity, coverage)
                  for epsilon, count, purity, coverage in results}
    # At the paper's threshold every cluster is family-pure.
    assert by_epsilon[0.10][1] == 1.0
    # A very loose threshold produces fewer, more generic clusters.
    assert by_epsilon[0.60][0] <= by_epsilon[0.10][0]
    assert by_epsilon[0.60][1] <= by_epsilon[0.10][1]
    # A very tight threshold cannot cover more samples than the paper's
    # setting (identical structure still clusters, near-misses drop out).
    assert by_epsilon[0.02][2] <= by_epsilon[0.10][2] + 1e-9
