"""Paper-scale daily batch benchmark (PR 2).

The paper's pipeline digests 80k-500k samples per day on a 50-machine
cluster.  This benchmark proves the incremental pipeline makes a >=20k-sample
synthetic day tractable on one process: a small warm-up day deploys
signatures and anchors, then one paper-scale day runs end to end through the
warm path.  Per-stage wall-clock timings (shed / cluster / label+compile)
and the shed fraction are serialized into ``BENCH_<date>.json`` via the
benchmark's extra info, so stage-level regressions are visible PR over PR.
"""

from __future__ import annotations

import datetime

from repro.core.config import IncrementalConfig, KizzleConfig
from repro.core.pipeline import Kizzle
from repro.ekgen import StreamConfig, TelemetryGenerator

#: Mean configured volume; the seeded draw for August 2 lands at ~21.8k.
PAPER_SAMPLES_PER_DAY = 20_800
MIN_SAMPLES = 20_000


def test_paper_scale_day_end_to_end(benchmark):
    warmup_stream = TelemetryGenerator(StreamConfig(seed=20140801))
    paper_stream = TelemetryGenerator(
        StreamConfig.paper_scale(samples_per_day=PAPER_SAMPLES_PER_DAY))

    kizzle = Kizzle(KizzleConfig(
        machines=50, min_points=3,
        incremental=IncrementalConfig(enabled=True)))
    for kit in ("nuclear", "angler", "rig", "sweetorange"):
        kizzle.seed_known_kit(kit, [warmup_stream.reference_core(
            kit, datetime.date(2014, 7, 31))])

    warmup_day = datetime.date(2014, 8, 1)
    warmup_batch = warmup_stream.generate_day(warmup_day)
    kizzle.process_day(
        [(s.sample_id, s.content) for s in warmup_batch.samples], warmup_day)

    paper_day = datetime.date(2014, 8, 2)
    paper_batch = paper_stream.generate_day(paper_day)
    samples = [(s.sample_id, s.content) for s in paper_batch.samples]
    assert len(samples) >= MIN_SAMPLES

    result = benchmark.pedantic(
        lambda: kizzle.process_day(samples, paper_day),
        rounds=1, iterations=1)

    # End-to-end accounting: every sample is shed, clustered or noise.
    clustered = sum(
        1 for report in result.clusters for sample in report.cluster.samples
        if not sample.sample_id.startswith("sentinel-"))
    assert result.shed_count + clustered + result.noise_count \
        == len(samples)
    # The warm path sheds the bulk of the stream (the paper's "most of the
    # stream is the same grayware every day").
    assert result.shed_count >= 0.4 * len(samples)
    assert result.cluster_count >= 4

    benchmark.extra_info["samples"] = len(samples)
    benchmark.extra_info["shed"] = result.shed_count
    benchmark.extra_info["shed_fraction"] = round(
        result.shed_count / len(samples), 3)
    benchmark.extra_info["clusters"] = result.cluster_count
    benchmark.extra_info["carried_clusters"] = result.carried_cluster_count
    benchmark.extra_info["noise"] = result.noise_count
    benchmark.extra_info["virtual_minutes"] = round(
        result.timing.total_time / 60.0, 2)
    benchmark.extra_info["backend"] = result.backend
    # Preparation-cache telemetry: lexer runs are the day's real cost.
    benchmark.extra_info["prepared_lexer_runs"] = \
        result.prepared_stats.get("raw_misses", 0)
    benchmark.extra_info["prepared_hits"] = sum(
        count for name, count in result.prepared_stats.items()
        if name.endswith("_hits"))
    for stage, seconds in sorted(result.stage_walls.items()):
        benchmark.extra_info[f"wall_{stage}_s"] = round(seconds, 3)
