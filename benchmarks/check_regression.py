"""Benchmark-regression gate: compare the newest two ``BENCH_<date>.json``.

Usage (CI runs this right after the benchmark suite)::

    python benchmarks/check_regression.py [--threshold 0.25] [repo_root]

The script finds the two most recent ``BENCH_*.json`` artifacts at the repo
root, compares the mean runtime of every *named* benchmark present in both,
and exits non-zero if any slowed down by more than the threshold (default
25%).  Benchmarks present in only one artifact are reported but never fail
the gate (new benchmarks appear, old ones are retired), and sub-50ms means
are ignored — at that scale the signal is noise.

Per-stage walls are gated too: a benchmark whose ``extra_info`` carries
``wall_<stage>_s`` entries (the paper-scale day and month runs serialize
the pipeline's stage-graph timings) contributes one additional named series
per stage, ``<name>[<stage>]``, so a regression confined to one stage
(say, ``compile``) fails the gate even if faster stages mask it in the
end-to-end mean.

Kept dependency-free and importable: the comparison logic
(:func:`compare_runs`) is unit-tested in ``tests/test_bench_gate.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Tuple

#: Means below this are treated as noise and never gated.
MIN_GATED_SECONDS = 0.05


def load_benchmarks(path: pathlib.Path) -> Dict[str, float]:
    """Map benchmark name -> mean seconds from one artifact.

    Besides the end-to-end mean of every benchmark, each numeric
    ``wall_<stage>_s`` entry in a benchmark's ``extra_info`` becomes its own
    named series (``name[stage]``), so per-stage regressions gate alongside
    the totals.
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    series: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        series[bench["name"]] = float(bench["mean_s"])
        for key, value in (bench.get("extra_info") or {}).items():
            if key.startswith("wall_") and key.endswith("_s") \
                    and isinstance(value, (int, float)):
                stage = key[len("wall_"):-len("_s")]
                series[f"{bench['name']}[{stage}]"] = float(value)
    return series


def compare_runs(previous: Dict[str, float], current: Dict[str, float],
                 threshold: float = 0.25
                 ) -> Tuple[List[str], List[str]]:
    """``(regressions, notes)`` between two name->mean mappings.

    A regression is a benchmark in both runs whose mean grew by more than
    ``threshold`` (fractional) and whose previous mean was large enough to
    be meaningful.  Notes record benchmarks that appeared or disappeared.
    """
    regressions: List[str] = []
    notes: List[str] = []
    for name in sorted(set(previous) | set(current)):
        if name not in previous:
            notes.append(f"new benchmark: {name} "
                         f"({current[name]:.3f}s)")
            continue
        if name not in current:
            notes.append(f"benchmark disappeared: {name}")
            continue
        before, after = previous[name], current[name]
        if before < MIN_GATED_SECONDS:
            continue
        growth = (after - before) / before
        if growth > threshold:
            regressions.append(
                f"{name}: {before:.3f}s -> {after:.3f}s "
                f"(+{growth:.0%}, threshold {threshold:.0%})")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root holding BENCH_*.json artifacts")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown that fails the gate")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root)
    artifacts = sorted(root.glob("BENCH_*.json"))
    if len(artifacts) < 2:
        print(f"benchmark gate: {len(artifacts)} artifact(s) under "
              f"{root} - nothing to compare, passing")
        return 0
    previous_path, current_path = artifacts[-2], artifacts[-1]
    previous = load_benchmarks(previous_path)
    current = load_benchmarks(current_path)
    regressions, notes = compare_runs(previous, current,
                                      threshold=args.threshold)
    print(f"benchmark gate: {previous_path.name} -> {current_path.name}")
    for note in notes:
        print(f"  note: {note}")
    if regressions:
        for regression in regressions:
            print(f"  REGRESSION {regression}")
        return 1
    print(f"  {len(set(previous) & set(current))} shared benchmark(s) "
          f"within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
